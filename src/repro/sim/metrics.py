"""Measurement primitives used by the workload harness and the tracer.

All statistics are computed over *virtual* time. The latency recorder keeps
raw samples (experiments here are small enough that exact percentiles beat
sketches) and supports a measurement window so warmup is excluded, matching
how the paper reports steady-state YCSB numbers.
"""

from __future__ import annotations

import math
from bisect import insort
from typing import Dict, List, Optional, Tuple


class Counter:
    """Monotonic event count, with per-window deltas via :meth:`mark`."""

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0
        self._marked = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only increase")
        self.value += n

    def mark(self) -> None:
        """Snapshot the current value; :meth:`since_mark` counts from here."""
        self._marked = self.value

    def since_mark(self) -> int:
        return self.value - self._marked


class Gauge:
    """An instantaneous value (queue depth, buffer bytes) with peak tracking."""

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0.0
        self.peak = 0.0

    def set(self, value: float) -> None:
        self.value = value
        self.peak = max(self.peak, value)

    def add(self, delta: float) -> None:
        self.set(self.value + delta)


class TimeWeightedValue:
    """Time-integral of a step function, for averages like mean queue depth."""

    def __init__(self, now: float = 0.0, value: float = 0.0):
        self.value = value
        self._last_time = now
        self._area = 0.0
        self._start = now

    def update(self, now: float, value: float) -> None:
        if now < self._last_time:
            raise ValueError("time went backwards")
        self._area += self.value * (now - self._last_time)
        self._last_time = now
        self.value = value

    def average(self, now: float) -> float:
        elapsed = now - self._start
        if elapsed <= 0:
            return self.value
        area = self._area + self.value * (now - self._last_time)
        return area / elapsed


class LatencyRecorder:
    """Raw-sample latency statistics with a warmup-aware window.

    Samples are (completion_time, latency) pairs; :meth:`summary` restricts
    to completions inside [window_start, window_end] so that only
    steady-state operations are reported.

    Recording is O(1): exact count/sum/min/max are maintained as running
    aggregates. ``sample_stride=n`` keeps only every n-th
    raw sample (deterministically — no RNG involved), bounding memory for
    long runs; count/mean/min/max stay exact over *all* recorded samples,
    while percentiles (and any explicitly windowed statistics) are then
    computed over the retained subsample. The default stride of 1 retains
    everything and is bit-for-bit identical to the pre-sampling recorder.

    Recording is *batched*: :meth:`record` only appends to a pending
    buffer (one list append on the hot path — this recorder sits behind
    per-RPC trace points), and the aggregate fold (count/sum/min/max,
    stride retention) runs lazily at the first read. The fold preserves
    arrival order, so every statistic is bit-for-bit identical to the
    eager per-record update.
    """

    def __init__(self, name: str = "", sample_stride: int = 1):
        if sample_stride < 1:
            raise ValueError(f"sample_stride must be >= 1, got {sample_stride}")
        self.name = name
        self._stride = sample_stride
        self._pending: List[Tuple[float, float]] = []
        self._samples: List[Tuple[float, float]] = []
        self._n = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = 0.0

    @property
    def sample_stride(self) -> int:
        return self._stride

    @sample_stride.setter
    def sample_stride(self, stride: int) -> None:
        if stride < 1:
            raise ValueError(f"sample_stride must be >= 1, got {stride}")
        # Flush under the old stride first: already-recorded samples keep
        # the retention pattern that was in force when they arrived.
        self._flush()
        self._stride = stride

    def record(self, completed_at: float, latency_ms: float) -> None:
        if latency_ms < 0:
            raise ValueError(f"negative latency {latency_ms}")
        self._pending.append((completed_at, latency_ms))

    def _flush(self) -> None:
        """Fold the pending batch into the running aggregates, in order."""
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        n, total, minimum, maximum = self._n, self._sum, self._min, self._max
        stride = self._stride
        samples = self._samples
        for item in pending:
            latency = item[1]
            n += 1
            total += latency
            if latency < minimum:
                minimum = latency
            if latency > maximum:
                maximum = latency
            if stride == 1 or n % stride == 1:
                samples.append(item)
        self._n, self._sum, self._min, self._max = n, total, minimum, maximum

    def count(self) -> int:
        """Exact number of recorded samples (including ones not retained)."""
        self._flush()
        return self._n

    def in_window(
        self, window_start: float = 0.0, window_end: float = math.inf
    ) -> List[float]:
        self._flush()
        return [
            latency
            for completed_at, latency in self._samples
            if window_start <= completed_at <= window_end
        ]

    def percentile(self, p: float, window_start: float = 0.0, window_end: float = math.inf) -> float:
        """Exact percentile (nearest-rank) of windowed samples; p in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        values = sorted(self.in_window(window_start, window_end))
        if not values:
            return 0.0
        rank = max(1, math.ceil(p / 100.0 * len(values)))
        return values[rank - 1]

    def summary(
        self, window_start: float = 0.0, window_end: float = math.inf
    ) -> "LatencySummary":
        values = self.in_window(window_start, window_end)  # flushes pending
        if not values:
            return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        ordered = sorted(values)

        def pct(p: float) -> float:
            rank = max(1, math.ceil(p / 100.0 * len(ordered)))
            return ordered[rank - 1]

        stride = self.sample_stride
        full_window = window_start <= 0.0 and window_end == math.inf
        if stride > 1 and full_window:
            # Exact aggregates over everything recorded; only the
            # percentiles come from the retained subsample.
            count = self._n
            minimum, maximum = self._min, self._max
            mean = min(max(self._sum / self._n, minimum), maximum)
        else:
            count = len(ordered) if stride == 1 else len(ordered) * stride
            minimum, maximum = ordered[0], ordered[-1]
            # Clamp the mean into [min, max]: naive summation can land 1 ulp
            # outside the sample range (e.g. three identical samples).
            mean = min(max(math.fsum(ordered) / len(ordered), minimum), maximum)
        return LatencySummary(
            count=count,
            mean=mean,
            p50=pct(50),
            p99=pct(99),
            minimum=minimum,
            maximum=maximum,
        )


class LatencySummary:
    """Aggregate latency stats for one measurement window."""

    __slots__ = ("count", "mean", "p50", "p99", "minimum", "maximum")

    def __init__(
        self, count: int, mean: float, p50: float, p99: float, minimum: float, maximum: float
    ):
        self.count = count
        self.mean = mean
        self.p50 = p50
        self.p99 = p99
        self.minimum = minimum
        self.maximum = maximum

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LatencySummary n={self.count} mean={self.mean:.2f}ms "
            f"p50={self.p50:.2f}ms p99={self.p99:.2f}ms>"
        )


class P2Quantile:
    """Streaming quantile estimate: the P² algorithm (Jain & Chlamtac '85).

    Tracks one quantile ``p`` in (0, 1) with five markers in O(1) space
    and O(1) per observation — no stored samples, no sorting, no RNG —
    so it is cheap enough to key one estimator per network link and feed
    it from the per-RPC trace points, and deterministic enough to live
    inside the seeded simulation (hedge delays derived from it replay
    bit-for-bit).

    Until five observations arrive the exact nearest-rank quantile of
    the observed values is returned; after that the marker invariants
    take over and :meth:`value` is the P² estimate.
    """

    __slots__ = ("p", "count", "_q", "_n", "_np", "_dn")

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {p}")
        self.p = p
        self.count = 0
        self._q: List[float] = []  # marker heights (sorted)
        self._n = [0, 1, 2, 3, 4]  # actual marker positions
        self._np = [0.0, 2.0 * p, 4.0 * p, 2.0 + 2.0 * p, 4.0]  # desired
        self._dn = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]  # increments

    def observe(self, x: float) -> None:
        self.count += 1
        q = self._q
        if self.count <= 5:
            insort(q, x)
            return
        n, np_, dn = self._n, self._np, self._dn
        # Locate the cell containing x, updating the extremes in place.
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = 3
            for i in range(1, 5):
                if x < q[i]:
                    k = i - 1
                    break
        for i in range(k + 1, 5):
            n[i] += 1
        for i in range(5):
            np_[i] += dn[i]
        # Nudge the three interior markers toward their desired positions.
        for i in (1, 2, 3):
            delta = np_[i] - n[i]
            if (delta >= 1.0 and n[i + 1] - n[i] > 1) or (
                delta <= -1.0 and n[i - 1] - n[i] < -1
            ):
                step = 1 if delta >= 0.0 else -1
                candidate = self._parabolic(i, step)
                if not q[i - 1] < candidate < q[i + 1]:
                    candidate = self._linear(i, step)
                q[i] = candidate
                n[i] += step

    def _parabolic(self, i: int, step: int) -> float:
        q, n = self._q, self._n
        return q[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step)
            * (q[i + 1] - q[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step)
            * (q[i] - q[i - 1])
            / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: int) -> float:
        q, n = self._q, self._n
        return q[i] + step * (q[i + step] - q[i]) / (n[i + step] - n[i])

    def value(self) -> float:
        """Current quantile estimate (0.0 before any observation)."""
        if self.count == 0:
            return 0.0
        if self.count <= 5:
            rank = max(1, math.ceil(self.p * len(self._q)))
            return self._q[rank - 1]
        return self._q[2]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<P2Quantile p={self.p} n={self.count} est={self.value():.3f}>"


class MetricsRegistry:
    """Namespaced metric store; one per node plus one per experiment.

    ``latency_stride`` sets the default :class:`LatencyRecorder` sampling
    stride for recorders created by this registry (1 = keep every raw
    sample, the exact-percentile default the paper artifacts use).
    """

    def __init__(self, prefix: str = "", latency_stride: int = 1):
        self.prefix = prefix
        self.latency_stride = latency_stride
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._latencies: Dict[str, LatencyRecorder] = {}

    def set_latency_stride(self, stride: int) -> None:
        """Change the sampling stride for existing and future recorders."""
        if stride < 1:
            raise ValueError(f"sample_stride must be >= 1, got {stride}")
        self.latency_stride = stride
        for recorder in self._latencies.values():
            recorder.sample_stride = stride

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(self._qualify(name))
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._gauges[name] = Gauge(self._qualify(name))
        return self._gauges[name]

    def latency(self, name: str) -> LatencyRecorder:
        if name not in self._latencies:
            self._latencies[name] = LatencyRecorder(
                self._qualify(name), sample_stride=self.latency_stride
            )
        return self._latencies[name]

    def snapshot(self) -> Dict[str, float]:
        """Flat name→value view of counters and gauges (for reports/tests)."""
        values: Dict[str, float] = {}
        for name, counter in self._counters.items():
            values[self._qualify(name)] = float(counter.value)
        for name, gauge in self._gauges.items():
            values[self._qualify(name)] = gauge.value
        return values

    def _qualify(self, name: str) -> str:
        return f"{self.prefix}.{name}" if self.prefix else name
