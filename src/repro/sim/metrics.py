"""Measurement primitives used by the workload harness and the tracer.

All statistics are computed over *virtual* time. The latency recorder keeps
raw samples (experiments here are small enough that exact percentiles beat
sketches) and supports a measurement window so warmup is excluded, matching
how the paper reports steady-state YCSB numbers.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple


class Counter:
    """Monotonic event count, with per-window deltas via :meth:`mark`."""

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0
        self._marked = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only increase")
        self.value += n

    def mark(self) -> None:
        """Snapshot the current value; :meth:`since_mark` counts from here."""
        self._marked = self.value

    def since_mark(self) -> int:
        return self.value - self._marked


class Gauge:
    """An instantaneous value (queue depth, buffer bytes) with peak tracking."""

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0.0
        self.peak = 0.0

    def set(self, value: float) -> None:
        self.value = value
        self.peak = max(self.peak, value)

    def add(self, delta: float) -> None:
        self.set(self.value + delta)


class TimeWeightedValue:
    """Time-integral of a step function, for averages like mean queue depth."""

    def __init__(self, now: float = 0.0, value: float = 0.0):
        self.value = value
        self._last_time = now
        self._area = 0.0
        self._start = now

    def update(self, now: float, value: float) -> None:
        if now < self._last_time:
            raise ValueError("time went backwards")
        self._area += self.value * (now - self._last_time)
        self._last_time = now
        self.value = value

    def average(self, now: float) -> float:
        elapsed = now - self._start
        if elapsed <= 0:
            return self.value
        area = self._area + self.value * (now - self._last_time)
        return area / elapsed


class LatencyRecorder:
    """Raw-sample latency statistics with a warmup-aware window.

    Samples are (completion_time, latency) pairs; :meth:`summary` restricts
    to completions inside [window_start, window_end] so that only
    steady-state operations are reported.

    Recording is O(1): exact count/sum/min/max are maintained as running
    aggregates on every call. ``sample_stride=n`` keeps only every n-th
    raw sample (deterministically — no RNG involved), bounding memory for
    long runs; count/mean/min/max stay exact over *all* recorded samples,
    while percentiles (and any explicitly windowed statistics) are then
    computed over the retained subsample. The default stride of 1 retains
    everything and is bit-for-bit identical to the pre-sampling recorder.
    """

    def __init__(self, name: str = "", sample_stride: int = 1):
        if sample_stride < 1:
            raise ValueError(f"sample_stride must be >= 1, got {sample_stride}")
        self.name = name
        self.sample_stride = sample_stride
        self._samples: List[Tuple[float, float]] = []
        self._n = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = 0.0

    def record(self, completed_at: float, latency_ms: float) -> None:
        if latency_ms < 0:
            raise ValueError(f"negative latency {latency_ms}")
        self._n += 1
        self._sum += latency_ms
        if latency_ms < self._min:
            self._min = latency_ms
        if latency_ms > self._max:
            self._max = latency_ms
        if self.sample_stride == 1 or self._n % self.sample_stride == 1:
            self._samples.append((completed_at, latency_ms))

    def count(self) -> int:
        """Exact number of recorded samples (including ones not retained)."""
        return self._n

    def in_window(
        self, window_start: float = 0.0, window_end: float = math.inf
    ) -> List[float]:
        return [
            latency
            for completed_at, latency in self._samples
            if window_start <= completed_at <= window_end
        ]

    def percentile(self, p: float, window_start: float = 0.0, window_end: float = math.inf) -> float:
        """Exact percentile (nearest-rank) of windowed samples; p in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        values = sorted(self.in_window(window_start, window_end))
        if not values:
            return 0.0
        rank = max(1, math.ceil(p / 100.0 * len(values)))
        return values[rank - 1]

    def summary(
        self, window_start: float = 0.0, window_end: float = math.inf
    ) -> "LatencySummary":
        values = self.in_window(window_start, window_end)
        if not values:
            return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        ordered = sorted(values)

        def pct(p: float) -> float:
            rank = max(1, math.ceil(p / 100.0 * len(ordered)))
            return ordered[rank - 1]

        stride = self.sample_stride
        full_window = window_start <= 0.0 and window_end == math.inf
        if stride > 1 and full_window:
            # Exact aggregates over everything recorded; only the
            # percentiles come from the retained subsample.
            count = self._n
            minimum, maximum = self._min, self._max
            mean = min(max(self._sum / self._n, minimum), maximum)
        else:
            count = len(ordered) if stride == 1 else len(ordered) * stride
            minimum, maximum = ordered[0], ordered[-1]
            # Clamp the mean into [min, max]: naive summation can land 1 ulp
            # outside the sample range (e.g. three identical samples).
            mean = min(max(math.fsum(ordered) / len(ordered), minimum), maximum)
        return LatencySummary(
            count=count,
            mean=mean,
            p50=pct(50),
            p99=pct(99),
            minimum=minimum,
            maximum=maximum,
        )


class LatencySummary:
    """Aggregate latency stats for one measurement window."""

    __slots__ = ("count", "mean", "p50", "p99", "minimum", "maximum")

    def __init__(
        self, count: int, mean: float, p50: float, p99: float, minimum: float, maximum: float
    ):
        self.count = count
        self.mean = mean
        self.p50 = p50
        self.p99 = p99
        self.minimum = minimum
        self.maximum = maximum

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LatencySummary n={self.count} mean={self.mean:.2f}ms "
            f"p50={self.p50:.2f}ms p99={self.p99:.2f}ms>"
        )


class MetricsRegistry:
    """Namespaced metric store; one per node plus one per experiment.

    ``latency_stride`` sets the default :class:`LatencyRecorder` sampling
    stride for recorders created by this registry (1 = keep every raw
    sample, the exact-percentile default the paper artifacts use).
    """

    def __init__(self, prefix: str = "", latency_stride: int = 1):
        self.prefix = prefix
        self.latency_stride = latency_stride
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._latencies: Dict[str, LatencyRecorder] = {}

    def set_latency_stride(self, stride: int) -> None:
        """Change the sampling stride for existing and future recorders."""
        if stride < 1:
            raise ValueError(f"sample_stride must be >= 1, got {stride}")
        self.latency_stride = stride
        for recorder in self._latencies.values():
            recorder.sample_stride = stride

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(self._qualify(name))
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._gauges[name] = Gauge(self._qualify(name))
        return self._gauges[name]

    def latency(self, name: str) -> LatencyRecorder:
        if name not in self._latencies:
            self._latencies[name] = LatencyRecorder(
                self._qualify(name), sample_stride=self.latency_stride
            )
        return self._latencies[name]

    def snapshot(self) -> Dict[str, float]:
        """Flat name→value view of counters and gauges (for reports/tests)."""
        values: Dict[str, float] = {}
        for name, counter in self._counters.items():
            values[self._qualify(name)] = float(counter.value)
        for name, gauge in self._gauges.items():
            values[self._qualify(name)] = gauge.value
        return values

    def _qualify(self, name: str) -> str:
        return f"{self.prefix}.{name}" if self.prefix else name
