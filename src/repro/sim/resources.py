"""Simulated node resources: CPU, disk, memory and NIC.

These are the substitution for the paper's Azure ``Standard_D4s_v3`` VMs.
Each resource exposes the knob that the corresponding Table 1 fault
injection throttles:

* :class:`CpuResource` — a FIFO service queue with an effective rate shaped
  by a cgroup-style *quota* (CPU slow: 5%) and CFS-style *shares* against a
  contending process (CPU contention: contender share 16×).
* :class:`DiskResource` — a FIFO I/O queue whose bandwidth is shaped by a
  blkio-style cap (disk slow) and by share contention from a heavy
  background writer (disk contention).
* :class:`MemoryResource` — byte accounting against a cap (memory
  contention); crossing a soft threshold models swap thrash as a CPU
  penalty, crossing the hard cap can OOM the process.
* :class:`NicResource` — per-node extra packet delay (network slow:
  ``tc netem delay 400ms``).

Resources are callback-based (this is the sim layer); the DepFast event
layer wraps completions into waitable events.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional

from repro.sim.kernel import Kernel, ScheduledCall


class OutOfMemoryError(RuntimeError):
    """Hard memory cap exceeded; the owning process is expected to die."""


class ResourceJob:
    """A unit of work queued on a FIFO resource."""

    __slots__ = ("cost", "on_done", "started_at", "remaining", "done", "cancelled", "label")

    def __init__(self, cost: float, on_done: Optional[Callable[[], None]], label: str = ""):
        self.cost = cost           # abstract work units (CPU-ms or bytes)
        self.remaining = cost
        self.on_done = on_done
        self.started_at: Optional[float] = None
        self.done = False
        self.cancelled = False
        self.label = label

    def cancel(self) -> None:
        """Drop the job if it has not completed; its callback never fires."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ResourceJob {self.label!r} cost={self.cost:.3f} done={self.done}>"


class _FifoResource:
    """Shared machinery: FIFO service queue with a mutable service rate.

    Subclasses define :meth:`effective_rate` (work units per virtual ms) and
    optionally a fixed per-job setup latency. When the rate changes while a
    job is in service (a fault was injected or cleared), the in-flight job
    is re-timed based on the work it has already completed.
    """

    def __init__(self, kernel: Kernel, name: str = ""):
        self.kernel = kernel
        self.name = name
        self._queue: Deque[ResourceJob] = deque()
        self._current: Optional[ResourceJob] = None
        self._completion: Optional[ScheduledCall] = None
        self._rate_at_start = 0.0
        self._busy_ms = 0.0
        self._busy_since: Optional[float] = None

    # -- subclass interface -------------------------------------------
    def effective_rate(self) -> float:
        raise NotImplementedError

    def setup_latency(self, job: ResourceJob) -> float:
        """Fixed latency paid before service begins (e.g. disk seek)."""
        return 0.0

    # -- public API ----------------------------------------------------
    def submit(
        self, cost: float, on_done: Optional[Callable[[], None]] = None, label: str = ""
    ) -> ResourceJob:
        """Queue ``cost`` units of work; ``on_done`` fires at completion."""
        if cost < 0:
            raise ValueError(f"negative job cost {cost}")
        job = ResourceJob(cost, on_done, label=label)
        self._queue.append(job)
        if self._current is None:
            self._start_next()
        return job

    def queue_depth(self) -> int:
        """Jobs waiting or in service (cancelled jobs excluded)."""
        depth = sum(1 for job in self._queue if not job.cancelled)
        if self._current is not None and not self._current.cancelled:
            depth += 1
        return depth

    def busy_fraction(self, window_start: float = 0.0) -> float:
        """Fraction of [window_start, now] this resource was serving jobs."""
        elapsed = self.kernel.now - window_start
        if elapsed <= 0:
            return 0.0
        busy = self._busy_ms
        if self._busy_since is not None:
            busy += self.kernel.now - self._busy_since
        return min(1.0, busy / elapsed)

    def reconfigure(self) -> None:
        """Re-time the in-flight job after a rate change (fault toggled)."""
        if self._current is None or self._completion is None:
            return
        job = self._current
        started = job.started_at if job.started_at is not None else self.kernel.now
        elapsed = self.kernel.now - started
        work_done = max(0.0, elapsed) * self._rate_at_start
        job.remaining = max(0.0, job.remaining - work_done)
        self._completion.cancel()
        self._begin_service(job)

    # -- internals -------------------------------------------------------
    def _start_next(self) -> None:
        while self._queue:
            job = self._queue.popleft()
            if job.cancelled:
                continue
            if self._busy_since is None:
                self._busy_since = self.kernel.now
            self._current = job
            setup = self.setup_latency(job)
            if setup > 0:
                # Setup time is rate-independent; model it as a delay before
                # service starts so bandwidth faults do not inflate it.
                job.started_at = self.kernel.now + setup
                self._rate_at_start = 0.0
                self._completion = self.kernel.schedule(setup, self._begin_service, job)
            else:
                self._begin_service(job)
            return
        self._current = None
        self._completion = None
        if self._busy_since is not None:
            self._busy_ms += self.kernel.now - self._busy_since
            self._busy_since = None

    def _begin_service(self, job: ResourceJob) -> None:
        if job.cancelled:
            self._current = None
            self._start_next()
            return
        rate = self.effective_rate()
        if rate <= 0:
            raise ValueError(f"resource {self.name!r} has non-positive rate {rate}")
        job.started_at = self.kernel.now
        self._rate_at_start = rate
        duration = job.remaining / rate
        self._completion = self.kernel.schedule(duration, self._finish, job)

    def _finish(self, job: ResourceJob) -> None:
        self._current = None
        self._completion = None
        job.remaining = 0.0
        job.done = True
        self._start_next()
        if not job.cancelled and job.on_done is not None:
            job.on_done()


class CpuResource(_FifoResource):
    """CPU time for one server process, in CPU-ms of work per virtual ms.

    ``base_rate`` is the unthrottled service rate. The two fault knobs map
    onto Table 1:

    * ``quota`` — cgroup ``cpu.cfs_quota``: CPU slow sets it to 0.05.
    * ``contender_share`` — a contending process's CFS share relative to
      ``own_share``: CPU contention sets it to 16 × own_share.

    ``penalty`` multiplies job costs (used for swap-thrash under memory
    pressure); wired by the node, not by this class.
    """

    def __init__(self, kernel: Kernel, base_rate: float = 1.0, name: str = "cpu"):
        super().__init__(kernel, name=name)
        self.base_rate = base_rate
        self.quota = 1.0
        self.own_share = 1.0
        self.contender_share = 0.0
        self.penalty = 1.0
        # Multiplicative transient factor in (0, 1]; models short-lived
        # cloud noise independently of injected faults so both compose.
        self.jitter_factor = 1.0

    def effective_rate(self) -> float:
        share_frac = self.own_share / (self.own_share + self.contender_share)
        rate = self.base_rate * self.quota * share_frac * self.jitter_factor
        return rate / max(self.penalty, 1e-9)

    def set_quota(self, quota: float) -> None:
        """cgroup-style CPU quota in [0, 1]; 1.0 means unthrottled."""
        if not 0 < quota <= 1.0:
            raise ValueError(f"quota must be in (0, 1], got {quota}")
        self.quota = quota
        self.reconfigure()

    def set_contender_share(self, share: float) -> None:
        """CFS share of a co-located contending process (0 = none)."""
        if share < 0:
            raise ValueError(f"contender share must be >= 0, got {share}")
        self.contender_share = share
        self.reconfigure()

    def set_penalty(self, penalty: float) -> None:
        """Cost multiplier >= 1 (swap thrash under memory pressure)."""
        if penalty < 1.0:
            raise ValueError(f"penalty must be >= 1, got {penalty}")
        self.penalty = penalty
        self.reconfigure()

    def set_jitter(self, factor: float) -> None:
        """Transient slowdown factor in (0, 1]; 1.0 clears the jitter."""
        if not 0 < factor <= 1.0:
            raise ValueError(f"jitter factor must be in (0, 1], got {factor}")
        self.jitter_factor = factor
        self.reconfigure()


class DiskResource(_FifoResource):
    """A disk with FIFO I/O queue, per-op latency and shaped bandwidth.

    ``bandwidth_mbps`` is the device's unthrottled throughput. Fault knobs:

    * ``cap_fraction`` — blkio bandwidth cap (disk slow).
    * ``contender_load`` — fraction of device bandwidth consumed by a heavy
      co-located writer (disk contention); the process gets the remainder.
    """

    def __init__(
        self,
        kernel: Kernel,
        bandwidth_mbps: float = 200.0,
        op_latency_ms: float = 0.1,
        name: str = "disk",
    ):
        super().__init__(kernel, name=name)
        self.bandwidth_mbps = bandwidth_mbps
        self.op_latency_ms = op_latency_ms
        self.cap_fraction = 1.0
        self.contender_load = 0.0

    def effective_rate(self) -> float:
        # bytes per ms: MB/s * 1e6 bytes / 1e3 ms.
        bytes_per_ms = self.bandwidth_mbps * 1000.0
        return bytes_per_ms * self.cap_fraction * (1.0 - self.contender_load)

    def setup_latency(self, job: ResourceJob) -> float:
        return self.op_latency_ms

    def set_cap_fraction(self, fraction: float) -> None:
        """blkio-style bandwidth cap in (0, 1]."""
        if not 0 < fraction <= 1.0:
            raise ValueError(f"cap fraction must be in (0, 1], got {fraction}")
        self.cap_fraction = fraction
        self.reconfigure()

    def set_contender_load(self, load: float) -> None:
        """Fraction of bandwidth eaten by a contending writer, in [0, 1)."""
        if not 0 <= load < 1.0:
            raise ValueError(f"contender load must be in [0, 1), got {load}")
        self.contender_load = load
        self.reconfigure()


class MemoryResource:
    """Byte accounting for one server process against a (faultable) cap.

    Crossing ``swap_threshold`` of the cap reports a swap penalty (the node
    applies it to its CPU resource); crossing the cap itself triggers the
    ``on_oom`` callback exactly once per excursion — the owner decides
    whether that kills the process (the RethinkDB-like baseline does).
    """

    def __init__(
        self,
        capacity_bytes: int = 16 * 1024**3,
        swap_threshold: float = 0.85,
        max_swap_penalty: float = 8.0,
    ):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.limit_bytes = capacity_bytes
        self.swap_threshold = swap_threshold
        self.max_swap_penalty = max_swap_penalty
        self.used = 0
        self.peak = 0
        self.on_oom: Optional[Callable[[], None]] = None
        self.on_pressure_change: Optional[Callable[[], None]] = None
        self._oom_fired = False
        self._by_owner: Dict[str, int] = {}

    def set_limit(self, limit_bytes: int) -> None:
        """Apply/clear a memory cap (the memory-contention fault)."""
        if limit_bytes <= 0:
            raise ValueError("limit must be positive")
        self.limit_bytes = min(limit_bytes, self.capacity_bytes)
        self._check_pressure()

    def reset_process(self) -> None:
        """Forget all allocations: the owning process died and restarted.

        The *limit* is left untouched — a cgroup cap (memory-contention
        fault) outlives the process it throttles.
        """
        self.used = 0
        self._by_owner.clear()
        self._oom_fired = False
        self._check_pressure()

    def allocate(self, n_bytes: int, owner: str = "anon") -> None:
        if n_bytes < 0:
            raise ValueError("cannot allocate a negative size")
        self.used += n_bytes
        self.peak = max(self.peak, self.used)
        self._by_owner[owner] = self._by_owner.get(owner, 0) + n_bytes
        self._check_pressure()

    def free(self, n_bytes: int, owner: str = "anon") -> None:
        if n_bytes < 0:
            raise ValueError("cannot free a negative size")
        owned = self._by_owner.get(owner, 0)
        if n_bytes > owned:
            raise ValueError(f"{owner!r} freeing {n_bytes} but owns {owned}")
        self.used -= n_bytes
        self._by_owner[owner] = owned - n_bytes
        self._check_pressure()

    def usage_of(self, owner: str) -> int:
        return self._by_owner.get(owner, 0)

    def pressure(self) -> float:
        """Used fraction of the current limit (can exceed 1.0)."""
        return self.used / self.limit_bytes

    def swap_penalty(self) -> float:
        """CPU cost multiplier modelling swap thrash; 1.0 when healthy.

        Ramps linearly from 1.0 at ``swap_threshold`` to
        ``max_swap_penalty`` at 100% of the limit.
        """
        pressure = self.pressure()
        if pressure <= self.swap_threshold:
            return 1.0
        span = 1.0 - self.swap_threshold
        excess = min(pressure, 1.0) - self.swap_threshold
        return 1.0 + (self.max_swap_penalty - 1.0) * (excess / span)

    def _check_pressure(self) -> None:
        if self.on_pressure_change is not None:
            self.on_pressure_change()
        if self.used > self.limit_bytes:
            if not self._oom_fired and self.on_oom is not None:
                self._oom_fired = True
                self.on_oom()
        else:
            self._oom_fired = False


class NicResource:
    """Per-node network-interface delay (``tc netem``-style).

    ``extra_delay_ms`` is the network-slow fault knob: Table 1 adds 400 ms.
    It applies to every packet leaving or entering the node, on top of link
    propagation delay.
    """

    def __init__(self, base_delay_ms: float = 0.0):
        if base_delay_ms < 0:
            raise ValueError("NIC delay must be >= 0")
        self.base_delay_ms = base_delay_ms
        self.extra_delay_ms = 0.0

    def delay_ms(self) -> float:
        return self.base_delay_ms + self.extra_delay_ms

    def set_extra_delay(self, delay_ms: float) -> None:
        if delay_ms < 0:
            raise ValueError("extra delay must be >= 0")
        self.extra_delay_ms = delay_ms
