"""The discrete-event simulation kernel.

A :class:`Kernel` owns the virtual clock and an indexed priority queue of
scheduled callbacks. Time is a float in *milliseconds*; nothing in the
repository ever reads the wall clock. Ties are broken by insertion order,
which — together with seeded RNG streams (:mod:`repro.sim.rng`) — makes
every simulation run bit-for-bit deterministic.

Queue design (the PR-5 hot-path overhaul, guarded by
``tests/test_determinism.py``):

* the heap holds **distinct timestamps only**; an index (dict) maps each
  timestamp to a FIFO deque of the calls due then. A burst of same-time
  events — ``call_soon`` cascades, quorum broadcasts, batched deliveries —
  costs one heap operation total instead of one per event, and drains as
  a *run batch* without re-heapifying;
* cancellation stays **lazy** (a flag checked at pop time), but the kernel
  now tracks the live count, so :meth:`pending` is O(1) and the queue
  compacts itself when cancelled entries (mostly expired wait-timeout
  timers) outnumber live ones — lazy deletion with a bounded footprint;
* an optional profiler counts executed callbacks per owning module at a
  cost of one branch per event when disabled (see ``python -m repro
  profile``).

The execution order is exactly the classic ``(time, seq)`` heap order:
within one timestamp bucket, append order *is* sequence order.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Dict, Optional

# Compact the queue only once it holds this many entries (and more than
# half of them are cancelled); below this, dead entries are cheaper than
# rebuilds.
_COMPACT_MIN_SIZE = 64


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. scheduling into the past)."""


class ScheduledCall:
    """A handle to a pending callback; supports cancellation.

    Instances are ordered by (time, sequence number), the order in which
    the kernel executes them.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "executed", "_kernel")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        kernel: Optional["Kernel"] = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.executed = False
        self._kernel = kernel

    def cancel(self) -> None:
        """Prevent the callback from running; safe to call repeatedly.

        Cancelling a call that already ran (or is running right now) is a
        no-op — in particular it must not disturb the kernel's live-count
        accounting.
        """
        if self.cancelled or self.executed:
            return
        self.cancelled = True
        if self._kernel is not None:
            self._kernel._on_cancel()

    def __lt__(self, other: "ScheduledCall") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledCall t={self.time:.3f} seq={self.seq} {state}>"


class Kernel:
    """Single-threaded virtual-time event loop.

    The kernel is shared by every simulated node in a cluster: one run of a
    distributed experiment is one kernel. Components schedule callbacks with
    :meth:`schedule` (relative delay) or :meth:`schedule_at` (absolute time)
    and the driver advances time with :meth:`run` / :meth:`run_until_idle`.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        # Indexed lazy-deletion queue: heap of distinct due-times plus a
        # time -> FIFO-deque index. Invariant: _times holds exactly the
        # keys of _buckets, each once; every bucket is non-empty except
        # (transiently) the one currently being drained.
        self._buckets: Dict[float, deque] = {}
        self._times: list = []
        self._seq = 0
        self._live = 0  # scheduled, not cancelled, not yet executed
        self._size = 0  # total queued entries, cancelled included
        self._running = False
        self._stopped = False
        self._compact_pending = False
        # Profiling: None when off (one branch per event); when on, a
        # module-name -> executed-count dict.
        self._profile: Optional[Dict[str, int]] = None
        self.events_executed = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay_ms: float, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        """Run ``fn(*args)`` after ``delay_ms`` simulated milliseconds."""
        if delay_ms < 0:
            raise SimulationError(f"cannot schedule {delay_ms}ms into the past")
        time_ms = self.now + delay_ms
        self._seq += 1
        call = ScheduledCall(time_ms, self._seq, fn, args, self)
        bucket = self._buckets.get(time_ms)
        if bucket is None:
            self._buckets[time_ms] = bucket = deque()
            heapq.heappush(self._times, time_ms)
        bucket.append(call)
        self._live += 1
        self._size += 1
        return call

    def schedule_at(self, time_ms: float, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        """Run ``fn(*args)`` at absolute virtual time ``time_ms``."""
        if time_ms < self.now:
            raise SimulationError(
                f"cannot schedule at t={time_ms} (now is t={self.now})"
            )
        self._seq += 1
        call = ScheduledCall(time_ms, self._seq, fn, args, self)
        bucket = self._buckets.get(time_ms)
        if bucket is None:
            self._buckets[time_ms] = bucket = deque()
            heapq.heappush(self._times, time_ms)
        bucket.append(call)
        self._live += 1
        self._size += 1
        return call

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        """Run ``fn(*args)`` at the current time, after already-queued work."""
        return self.schedule_at(self.now, fn, *args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending callback. Returns False if none remain."""
        call = self._pop_next_live()
        if call is None:
            return False
        if call.time < self.now:  # pragma: no cover - defensive
            raise SimulationError("queue produced an event from the past")
        self.now = call.time
        self._live -= 1
        self.events_executed += 1
        call.executed = True
        if self._profile is not None:
            self._profile_note(call)
        call.fn(*call.args)
        return True

    def run(self, until_ms: float) -> None:
        """Advance virtual time to ``until_ms``, executing everything due.

        The clock always lands exactly on ``until_ms`` even if the queue
        drains earlier, so measurement windows have exact lengths.
        """
        if until_ms < self.now:
            raise SimulationError(f"cannot run backwards to t={until_ms}")
        self._enter_run()
        times, buckets = self._times, self._buckets
        try:
            while times and not self._stopped:
                if self._compact_pending:
                    self._compact()
                    if not times:
                        break
                due = times[0]
                if due > until_ms:
                    break
                self._drain_bucket(due, buckets.get(due))
        finally:
            self._running = False
        if not self._stopped:
            self.now = max(self.now, until_ms)

    def run_until_idle(self, max_time_ms: float = 1e12) -> None:
        """Run until the queue drains (or the safety bound is hit)."""
        self._enter_run()
        times, buckets = self._times, self._buckets
        try:
            while self._live and not self._stopped:
                if self._compact_pending:
                    self._compact()
                    if not times:
                        break
                due = times[0]
                bucket = buckets.get(due)
                if due > max_time_ms:
                    # Only live work counts toward the safety bound;
                    # cancelled leftovers beyond it are just garbage.
                    if bucket is not None and any(not c.cancelled for c in bucket):
                        raise SimulationError(
                            f"simulation still busy past safety bound t={max_time_ms}"
                        )
                    self._retire_bucket(due, bucket)
                    continue
                self._drain_bucket(due, bucket)
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop a :meth:`run` in progress (from inside a callback)."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Profiling
    # ------------------------------------------------------------------
    def enable_profile(self) -> None:
        """Start counting executed callbacks per owning module."""
        if self._profile is None:
            self._profile = {}

    def profile_counts(self) -> Dict[str, int]:
        """Executed-callback counts per module since :meth:`enable_profile`."""
        return dict(self._profile or {})

    def _profile_note(self, call: ScheduledCall) -> None:
        module = getattr(call.fn, "__module__", None) or "<unknown>"
        profile = self._profile
        profile[module] = profile.get(module, 0) + 1

    # ------------------------------------------------------------------
    # Queue internals
    # ------------------------------------------------------------------
    def _enter_run(self) -> None:
        if self._running:
            raise SimulationError(
                "kernel.run/run_until_idle is not reentrant; "
                "use schedule()/call_soon() from inside callbacks"
            )
        self._stopped = False
        self._running = True

    def _drain_bucket(self, due: float, bucket: Optional[deque]) -> None:
        """Execute the FIFO batch of callbacks due at ``due``.

        The bucket stays indexed while draining, so callbacks scheduling
        at the *current* time append to this same batch and run in order
        without touching the heap. ``stop()`` or an exception leaves the
        unexecuted remainder queued, exactly like the one-pop-per-step
        loop did.
        """
        if bucket is None:  # pragma: no cover - defensive (stray heap time)
            if self._times and self._times[0] == due:
                heapq.heappop(self._times)
            return
        profile = self._profile
        popleft = bucket.popleft
        self.now = due
        # Batch the queue accounting: counters are reconciled once per
        # batch (and on exceptions), not once per event. ``pending()``
        # is therefore batch-consistent rather than call-consistent —
        # nothing in the tree reads it from inside a callback.
        popped = 0
        executed = 0
        try:
            while bucket and not self._stopped:
                call = popleft()
                popped += 1
                if call.cancelled:
                    continue
                executed += 1
                call.executed = True
                if profile is not None:
                    self._profile_note(call)
                call.fn(*call.args)
        finally:
            self._size -= popped
            self._live -= executed
            self.events_executed += executed
        if not bucket:
            self._retire_bucket(due, None)

    def _retire_bucket(self, due: float, bucket: Optional[deque]) -> None:
        """Drop a drained (or dead) bucket and its heap entry."""
        if bucket is not None:
            self._size -= len(bucket)
            dead = sum(1 for c in bucket if not c.cancelled)
            self._live -= dead  # pragma: no cover - only dead buckets reach here
        self._buckets.pop(due, None)
        if self._times and self._times[0] == due:
            heapq.heappop(self._times)

    def _pop_next_live(self) -> Optional[ScheduledCall]:
        """Pop the earliest non-cancelled call (shared lazy-pop logic)."""
        times, buckets = self._times, self._buckets
        while times:
            due = times[0]
            bucket = buckets.get(due)
            while bucket:
                call = bucket.popleft()
                self._size -= 1
                if not call.cancelled:
                    if not bucket:
                        self._retire_bucket(due, None)
                    return call
            self._retire_bucket(due, None)
        return None

    def _on_cancel(self) -> None:
        """Bookkeeping for a lazily-deleted entry; compacts when bloated."""
        self._live -= 1
        if self._size > _COMPACT_MIN_SIZE and self._size > 2 * self._live:
            if self._running:
                # Rebuilding mid-batch would strand the deque being
                # drained; defer to the next between-bucket point.
                self._compact_pending = True
            else:
                self._compact()

    def _compact(self) -> None:
        """Rebuild the queue without cancelled entries (amortized O(1)).

        Mutates ``_times``/``_buckets`` *in place*: the run loops hold
        local aliases to both across iterations, so rebinding them here
        would strand those loops on stale structures.
        """
        self._compact_pending = False
        survivors: Dict[float, deque] = {}
        for due, bucket in self._buckets.items():
            live = deque(call for call in bucket if not call.cancelled)
            if live:
                survivors[due] = live
        self._buckets.clear()
        self._buckets.update(survivors)
        self._times[:] = survivors
        heapq.heapify(self._times)
        self._size = sum(len(bucket) for bucket in survivors.values())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Number of not-yet-cancelled queued callbacks. O(1)."""
        return self._live

    def next_event_time(self) -> Optional[float]:
        """Virtual time of the next live callback, or None if idle."""
        times, buckets = self._times, self._buckets
        while times:
            due = times[0]
            bucket = buckets.get(due)
            while bucket and bucket[0].cancelled:
                bucket.popleft()
                self._size -= 1
            if bucket:
                return due
            self._retire_bucket(due, None)
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Kernel t={self.now:.3f} pending={self.pending()}>"
