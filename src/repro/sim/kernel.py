"""The discrete-event simulation kernel.

A :class:`Kernel` owns the virtual clock and a priority queue of scheduled
callbacks. Time is a float in *milliseconds*; nothing in the repository ever
reads the wall clock. Ties are broken by insertion order, which — together
with seeded RNG streams (:mod:`repro.sim.rng`) — makes every simulation run
bit-for-bit deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. scheduling into the past)."""


class ScheduledCall:
    """A handle to a pending callback; supports cancellation.

    Instances are ordered by (time, sequence number) so the kernel's heap
    pops them in deterministic order.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running; safe to call repeatedly."""
        self.cancelled = True

    def __lt__(self, other: "ScheduledCall") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledCall t={self.time:.3f} seq={self.seq} {state}>"


class Kernel:
    """Single-threaded virtual-time event loop.

    The kernel is shared by every simulated node in a cluster: one run of a
    distributed experiment is one kernel. Components schedule callbacks with
    :meth:`schedule` (relative delay) or :meth:`schedule_at` (absolute time)
    and the driver advances time with :meth:`run` / :meth:`run_until_idle`.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[ScheduledCall] = []
        self._seq = 0
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay_ms: float, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        """Run ``fn(*args)`` after ``delay_ms`` simulated milliseconds."""
        if delay_ms < 0:
            raise SimulationError(f"cannot schedule {delay_ms}ms into the past")
        return self.schedule_at(self.now + delay_ms, fn, *args)

    def schedule_at(self, time_ms: float, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        """Run ``fn(*args)`` at absolute virtual time ``time_ms``."""
        if time_ms < self.now:
            raise SimulationError(
                f"cannot schedule at t={time_ms} (now is t={self.now})"
            )
        self._seq += 1
        call = ScheduledCall(time_ms, self._seq, fn, args)
        heapq.heappush(self._queue, call)
        return call

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        """Run ``fn(*args)`` at the current time, after already-queued work."""
        return self.schedule_at(self.now, fn, *args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending callback. Returns False if none remain."""
        while self._queue:
            call = heapq.heappop(self._queue)
            if call.cancelled:
                continue
            if call.time < self.now:  # pragma: no cover - defensive
                raise SimulationError("queue produced an event from the past")
            self.now = call.time
            call.fn(*call.args)
            return True
        return False

    def run(self, until_ms: float) -> None:
        """Advance virtual time to ``until_ms``, executing everything due.

        The clock always lands exactly on ``until_ms`` even if the queue
        drains earlier, so measurement windows have exact lengths.
        """
        if until_ms < self.now:
            raise SimulationError(f"cannot run backwards to t={until_ms}")
        self._stopped = False
        self._running = True
        try:
            while self._queue and not self._stopped:
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if head.time > until_ms:
                    break
                self.step()
        finally:
            self._running = False
        if not self._stopped:
            self.now = max(self.now, until_ms)

    def run_until_idle(self, max_time_ms: float = 1e12) -> None:
        """Run until the queue drains (or the safety bound is hit)."""
        self._stopped = False
        self._running = True
        try:
            while self._queue and not self._stopped:
                if self._queue[0].cancelled:
                    heapq.heappop(self._queue)
                    continue
                if self._queue[0].time > max_time_ms:
                    raise SimulationError(
                        f"simulation still busy past safety bound t={max_time_ms}"
                    )
                self.step()
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop a :meth:`run` in progress (from inside a callback)."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Number of not-yet-cancelled queued callbacks."""
        return sum(1 for call in self._queue if not call.cancelled)

    def next_event_time(self) -> Optional[float]:
        """Virtual time of the next live callback, or None if idle."""
        for call in sorted(self._queue):
            if not call.cancelled:
                return call.time
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Kernel t={self.now:.3f} pending={self.pending()}>"
