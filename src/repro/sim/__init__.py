"""Deterministic discrete-event simulation substrate.

Everything above this package (the DepFast runtime, the network, disks,
faults and the RSM implementations) runs on *virtual time*: a millisecond
clock advanced by a single-threaded event kernel. This is the substitution
for the paper's Azure testbed — it makes the fail-slow experiments exact and
reproducible instead of depending on wall-clock scheduling noise.

Layering note: this package is callback-based and knows nothing about
DepFast events or coroutines. The DepFast layers (:mod:`repro.events`,
:mod:`repro.runtime`) wrap these callbacks into waitable events.
"""

from repro.sim.kernel import Kernel, ScheduledCall, SimulationError
from repro.sim.metrics import (
    Counter,
    Gauge,
    LatencyRecorder,
    MetricsRegistry,
    TimeWeightedValue,
)
from repro.sim.resources import (
    CpuResource,
    DiskResource,
    MemoryResource,
    NicResource,
    OutOfMemoryError,
    ResourceJob,
)
from repro.sim.rng import RngRegistry

__all__ = [
    "Counter",
    "CpuResource",
    "DiskResource",
    "Gauge",
    "Kernel",
    "LatencyRecorder",
    "MemoryResource",
    "MetricsRegistry",
    "NicResource",
    "OutOfMemoryError",
    "ResourceJob",
    "RngRegistry",
    "ScheduledCall",
    "SimulationError",
    "TimeWeightedValue",
]
