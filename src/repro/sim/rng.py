"""Seeded random-number streams.

Every source of randomness in a simulation draws from a named stream handed
out by one :class:`RngRegistry`, derived deterministically from a single
root seed. Two runs with the same seed therefore make identical random
choices even if components are constructed in a different order — the
stream is keyed by *name*, not by creation sequence.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngRegistry:
    """Hands out independent, reproducible ``random.Random`` streams."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the RNG stream for ``name``, creating it on first use.

        Repeated calls with the same name return the same (stateful)
        generator object.
        """
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngRegistry":
        """Derive a child registry (e.g. one per node) from this one."""
        digest = hashlib.sha256(f"{self.seed}:fork:{name}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RngRegistry seed={self.seed} streams={sorted(self._streams)}>"
