"""Probability models for transient fail-slow events (§3.3).

"We plan to extend the analysis to support more advanced and versatile
analysis by integrating the probability models that consider transient
fail-slow events."

The model: each of ``n`` replicas answers a broadcast; independently, with
probability ``p`` a replica is transiently slow for this request, adding
``delay`` to its base response time. A ``QuorumEvent`` wait completes at
the k-th order statistic of the responses, so:

* the wait exceeds the fast path iff fewer than ``k`` replicas are fast —
  a binomial tail that shrinks combinatorially with the quorum's slack
  ``n - k``;
* a single-event (1/1) wait is the k = n = 1 special case: it eats every
  transient;
* an all-replica wait (k = n, the baselines' checkpoint pattern) is hit
  whenever *any* replica is slow: ``1 - (1-p)^n`` grows with n.

These closed forms quantify why QuorumEvent bounds the impact radius of
transient fail-slow events; ``benchmarks/bench_transient_model.py``
validates them against the simulator.
"""

from __future__ import annotations

import math
from typing import List, Sequence


def _check_kn(n: int, k: int) -> None:
    if n < 1:
        raise ValueError("need at least one replica")
    if not 1 <= k <= n:
        raise ValueError(f"quorum k={k} must be in [1, {n}]")


def _check_p(p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {p}")


def prob_quorum_delayed(n: int, k: int, p: float) -> float:
    """P(the k-of-n quorum wait is delayed by a transient).

    The wait is slow iff fewer than k replicas are fast; each replica is
    fast with probability 1 - p, independently.
    """
    _check_kn(n, k)
    _check_p(p)
    q_fast = 1.0 - p
    total = sum(
        math.comb(n, j) * q_fast**j * p ** (n - j) for j in range(k)
    )
    # The binomial terms are exact to within rounding, but their sum can
    # land a few ulps outside [0, 1] (e.g. n=k=9, p=0.99 sums to 1+2e-16).
    return min(1.0, max(0.0, total))


def expected_quorum_wait(
    n: int, k: int, p: float, base_ms: float, delay_ms: float
) -> float:
    """E[wait] for the two-point latency model."""
    if base_ms < 0 or delay_ms < 0:
        raise ValueError("latencies must be >= 0")
    return base_ms + delay_ms * prob_quorum_delayed(n, k, p)


def quorum_wait_percentile(
    n: int, k: int, p: float, base_ms: float, delay_ms: float, percentile: float
) -> float:
    """The given percentile of the two-point quorum-wait distribution."""
    if not 0 <= percentile <= 100:
        raise ValueError("percentile must be in [0, 100]")
    slow_probability = prob_quorum_delayed(n, k, p)
    if percentile / 100.0 <= 1.0 - slow_probability:
        return base_ms
    return base_ms + delay_ms


def kth_order_statistic_cdf(per_replica_cdf: Sequence[float], k: int) -> float:
    """P(at least k of the replicas have responded) from per-replica CDFs.

    ``per_replica_cdf[i]`` is replica i's response CDF evaluated at the
    time of interest (replicas may be heterogeneous — e.g. one carries a
    standing fail-slow fault). Exact O(n²) dynamic program over the
    Poisson-binomial distribution.
    """
    n = len(per_replica_cdf)
    _check_kn(n, k)
    for value in per_replica_cdf:
        _check_p(value)
    # dp[j] = P(exactly j replicas responded), built replica by replica.
    dp = [1.0] + [0.0] * n
    for f in per_replica_cdf:
        for j in range(n, 0, -1):
            dp[j] = dp[j] * (1.0 - f) + dp[j - 1] * f
        dp[0] *= 1.0 - f
    return sum(dp[k:])


def impact_radius_table(n: int, p: float) -> List[dict]:
    """P(delayed) for every wait shape on an n-replica broadcast.

    Rows for k = 1..n, annotated with the familiar cases: k=1 ("any one"),
    k = majority (QuorumEvent), k = n (the baselines' all-replica wait).
    """
    _check_kn(n, 1)
    majority = n // 2 + 1
    rows = []
    for k in range(1, n + 1):
        label = ""
        if k == 1:
            label = "first response"
        if k == majority:
            label = "majority quorum (DepFast)"
        if k == n:
            label = "all replicas (checkpoint/sync wait)"
        rows.append(
            {
                "k": k,
                "n": n,
                "label": label,
                "p_delayed": prob_quorum_delayed(n, k, p),
            }
        )
    return rows
