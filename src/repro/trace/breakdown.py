"""Wait-time breakdowns: where a node's coroutines spend their time.

§5: "We are also working on providing more observability through the
event interface." Since every suspension is a traced event, a node's
latency profile decomposes exactly into its wait kinds — quorum
(replication), disk, CPU queueing, timers — with no extra instrumentation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.trace.tracepoints import WaitRecord


def node_wait_breakdown(
    records: Iterable[WaitRecord], node: str
) -> Dict[str, Tuple[float, float]]:
    """Per event kind: (total wait ms, share of the node's total waiting).

    Sleeps/heartbeat timers are idle time, not latency, so callers often
    drop the "timer" row; it is reported for completeness.
    """
    totals: Dict[str, float] = {}
    for record in records:
        if record.node != node:
            continue
        totals[record.event_kind] = totals.get(record.event_kind, 0.0) + record.waited_ms
    grand_total = sum(totals.values())
    if grand_total == 0.0:
        return {}
    return {
        kind: (total, total / grand_total) for kind, total in sorted(totals.items())
    }


def busiest_waits(
    records: Iterable[WaitRecord], node: str, top: int = 5
) -> List[Tuple[str, int, float]]:
    """The node's hottest wait points: (event name, count, total ms)."""
    by_name: Dict[str, Tuple[int, float]] = {}
    for record in records:
        if record.node != node:
            continue
        count, total = by_name.get(record.event_name, (0, 0.0))
        by_name[record.event_name] = (count + 1, total + record.waited_ms)
    ranked = sorted(by_name.items(), key=lambda item: item[1][1], reverse=True)
    return [(name, count, total) for name, (count, total) in ranked[:top]]


def render_breakdown(records: Iterable[WaitRecord], node: str) -> str:
    """Human-readable wait profile for one node."""
    records = list(records)
    breakdown = node_wait_breakdown(records, node)
    lines = [f"wait profile of {node}:"]
    if not breakdown:
        lines.append("  (no recorded waits)")
        return "\n".join(lines)
    for kind, (total, share) in sorted(
        breakdown.items(), key=lambda item: item[1][0], reverse=True
    ):
        lines.append(f"  {kind:<12} {total:>12.1f} ms  ({share * 100:5.1f}%)")
    lines.append("hottest wait points:")
    for name, count, total in busiest_waits(records, node):
        lines.append(f"  {name:<40} x{count:<7} {total:>12.1f} ms")
    return "\n".join(lines)
