"""The fail-slow tolerance checker.

Implements the paper's code-level definition (§3.1): *"we define code that
only uses QuorumEvent and has no other waiting points as fail-slow
fault-tolerant code"* — operationally, every **inter-node wait inside a
replica group** must go through a quorum that tolerates at least one slow
member (k < n). Waits crossing group boundaries (client → leader) are
allowed but reported, because they are exactly the residual red edges of
Figure 2.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.trace.tracepoints import WaitRecord


class Violation:
    """One wait that breaks the fail-slow tolerance property."""

    __slots__ = ("record", "source", "reason")

    def __init__(self, record: WaitRecord, source: str, reason: str):
        self.record = record
        self.source = source
        self.reason = reason

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Violation {self.record.node}->{self.source}: {self.reason}>"


class ToleranceReport:
    """Outcome of checking a trace against the tolerance property."""

    def __init__(
        self,
        violations: List[Violation],
        boundary_waits: List[Tuple[str, str]],
        checked_waits: int,
        dedicated_waits: int = 0,
    ):
        self.violations = violations
        self.boundary_waits = boundary_waits
        self.checked_waits = checked_waits
        self.dedicated_waits = dedicated_waits

    @property
    def tolerant(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "PASS" if self.tolerant else "FAIL"
        lines = [
            f"fail-slow tolerance: {status} "
            f"({self.checked_waits} inter-node waits checked, "
            f"{len(self.violations)} violations, "
            f"{len(self.boundary_waits)} group-boundary waits, "
            f"{self.dedicated_waits} dedicated-stream waits)"
        ]
        for violation in self.violations[:20]:
            lines.append(
                f"  VIOLATION {violation.record.node} -> {violation.source}: "
                f"{violation.reason} (event {violation.record.event_name!r})"
            )
        return "\n".join(lines)


def check_fail_slow_tolerance(
    records: Iterable[WaitRecord],
    groups: Sequence[Sequence[str]],
) -> ToleranceReport:
    """Check every inter-node wait against the quorum-only rule.

    ``groups`` lists the replica groups (e.g. ``[["s1","s2","s3"]]``).
    Within a group, a wait must satisfy k < n — waiting on *all* members
    (k == n), or on a single member (1/1 basic event), propagates any one
    member's slowness. Between groups (clients, cross-shard), waits are
    collected as ``boundary_waits`` rather than violations.
    """
    group_of: Dict[str, int] = {}
    for group_index, members in enumerate(groups):
        for member in members:
            if member in group_of:
                raise ValueError(f"node {member!r} appears in two groups")
            group_of[member] = group_index

    violations: List[Violation] = []
    boundary: List[Tuple[str, str]] = []
    checked = 0
    dedicated = 0
    for record in records:
        if record.node is None:
            continue
        for source, k, n in record.edges:
            if source == record.node:
                continue
            checked += 1
            same_group = (
                record.node in group_of
                and source in group_of
                and group_of[record.node] == group_of[source]
            )
            if not same_group:
                boundary.append((record.node, source))
                continue
            if getattr(record, "dedication", None) == source:
                # A per-peer maintenance stream (e.g. log repair) waiting
                # on its own peer: the slowness it absorbs affects only
                # work done on that peer's behalf.
                dedicated += 1
                continue
            if record.event_kind == "quorum" and k < n:
                continue
            if record.event_kind in ("and", "or") and k < n:
                continue  # nested quorum slack survives composition
            if record.event_kind == "quorum":
                reason = f"quorum wait requires all members ({k}/{n})"
            else:
                reason = f"single-event wait ({record.event_kind}, {k}/{n})"
            violations.append(Violation(record, source, reason))
    return ToleranceReport(violations, boundary, checked, dedicated)
