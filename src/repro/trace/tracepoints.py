"""Event trace points: the scheduler-facing instrumentation.

A :class:`Tracer` receives the scheduler's hooks and materializes one
:class:`WaitRecord` per completed wait. Records carry the waiting
coroutine's node, the event's kind, and the event's *wait edges* — the
``(source, k, n)`` dependencies captured at wait time — which is all the
SPG and the tolerance checker need.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.events.base import Event
from repro.sim.kernel import Kernel


class QuorumArrival:
    """One peer's outcome in one quorum round, observed at trigger time.

    ``in_quorum`` — this peer's reply was among the acceptably-triggered
    children when the quorum fired (rank = 1-based arrival position);
    stragglers get ``in_quorum=False`` and ``rank=None`` — nobody waited
    for them, which is exactly the §5 signal: a peer that is *repeatedly*
    outside the winning quorum is slow relative to its group.
    """

    __slots__ = ("caller", "peer", "in_quorum", "rank", "n_targets", "at")

    def __init__(
        self,
        caller: str,
        peer: str,
        in_quorum: bool,
        rank: Optional[int],
        n_targets: int,
        at: float,
    ):
        self.caller = caller
        self.peer = peer
        self.in_quorum = in_quorum
        self.rank = rank
        self.n_targets = n_targets
        self.at = at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = f"rank {self.rank}" if self.in_quorum else "straggler"
        return f"<QuorumArrival {self.caller}->{self.peer} {status}/{self.n_targets}>"


class WaitRecord:
    """One completed (or timed-out) wait by one coroutine."""

    __slots__ = (
        "coro_name",
        "node",
        "event_kind",
        "event_name",
        "edges",
        "started_at",
        "ended_at",
        "timed_out",
        "dedication",
    )

    def __init__(
        self,
        coro_name: str,
        node: Optional[str],
        event_kind: str,
        event_name: str,
        edges: List[Tuple[str, int, int]],
        started_at: float,
        ended_at: float,
        timed_out: bool,
        dedication: Optional[str] = None,
    ):
        self.coro_name = coro_name
        self.node = node
        self.event_kind = event_kind
        self.event_name = event_name
        self.edges = edges
        self.started_at = started_at
        self.ended_at = ended_at
        self.timed_out = timed_out
        # The waiting coroutine's dedication (see Coroutine): waits by a
        # per-peer stream on its own peer are exempt from the tolerance
        # check because their impact radius is that peer alone.
        self.dedication = dedication

    @property
    def waited_ms(self) -> float:
        return self.ended_at - self.started_at

    def is_inter_node(self) -> bool:
        """True if any dependency crosses to a different node."""
        return any(source != self.node for source, _k, _n in self.edges)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<WaitRecord {self.node}/{self.coro_name} on {self.event_kind} "
            f"{self.waited_ms:.2f}ms edges={self.edges}>"
        )


class Tracer:
    """Collects wait records from every runtime in a cluster.

    One tracer is shared by all runtime instances — "multiple DepFast
    runtime instances will work together for the tracing" (§3.3).
    """

    def __init__(self, kernel: Kernel, enabled: bool = True):
        self.kernel = kernel
        self.enabled = enabled
        self.records: List[WaitRecord] = []
        # (caller_node, callee_node, method, latency_ms, completed_at):
        # per-RPC latencies reported by the RPC layer. Unlike wait records
        # these cover *every* reply — including replies from quorum
        # stragglers nobody waited on — which is what per-peer slowness
        # detection needs.
        self.rpc_latencies: List[Tuple[str, str, str, float, float]] = []
        # (node, n_bytes, latency_ms, completed_at): per-fsync latencies
        # reported by the WAL. These are *local* trace points — a slow
        # disk inflates them without touching any peer RTT, which is what
        # per-resource attribution keys on.
        self.fsync_latencies: List[Tuple[str, int, float, float]] = []
        # Per-round quorum arrival outcomes (who made the quorum, who
        # straggled) reported by quorum waiters at trigger time.
        self.quorum_arrivals: List[QuorumArrival] = []
        self.spawned = 0
        self.finished = 0
        self._open_waits: Dict[int, Tuple[Event, float]] = {}
        # Streaming listeners: online detectors subscribe here to consume
        # trace points live instead of post-processing the record lists.
        self._rpc_listeners: List[Callable] = []
        self._quorum_listeners: List[Callable] = []
        self._disk_listeners: List[Callable] = []
        self._fsync_begin_listeners: List[Callable] = []
        self._fsync_abort_listeners: List[Callable] = []

    # ------------------------------------------------------------------
    # Scheduler hooks
    # ------------------------------------------------------------------
    def on_spawn(self, coro, now: float) -> None:
        self.spawned += 1

    def on_wait_start(self, coro, event: Event, now: float, timeout_ms) -> None:
        if not self.enabled:
            return
        # Edges are captured at wait start: QuorumEvents may gain children
        # afterwards, but DepFast code attaches children before waiting.
        self._open_waits[id(coro)] = (event, now)

    def on_wait_end(self, coro, event: Event, now: float, timed_out: bool) -> None:
        if not self.enabled:
            return
        opened = self._open_waits.pop(id(coro), None)
        started_at = opened[1] if opened is not None else now
        self.records.append(
            WaitRecord(
                coro_name=coro.name,
                node=coro.node,
                event_kind=event.kind,
                event_name=event.name,
                edges=event.wait_edges(),
                started_at=started_at,
                ended_at=now,
                timed_out=timed_out,
                dedication=getattr(coro, "dedication", None),
            )
        )

    def on_finish(self, coro, now: float) -> None:
        self.finished += 1
        self._open_waits.pop(id(coro), None)

    def on_rpc_complete(
        self, node: str, peer: str, method: str, latency_ms: float, now: float
    ) -> None:
        if self.enabled:
            self.rpc_latencies.append((node, peer, method, latency_ms, now))
            for listener in self._rpc_listeners:
                listener(node, peer, method, latency_ms, now)

    def on_fsync_begin(self, node: str, n_bytes: int, now: float) -> None:
        """One real WAL fsync was just issued on ``node``.

        Completion latencies alone starve detection exactly when the
        disk is worst — a stalled fsync delivers no sample until it
        finally lands — so attributors also watch the *age* of the
        in-flight fsync as a censored ("at least this slow") reading.
        """
        if self.enabled:
            for listener in self._fsync_begin_listeners:
                listener(node, n_bytes, now)

    def on_fsync_abort(self, node: str, now: float) -> None:
        """``node``'s WAL retired (crash): its in-flight fsyncs died."""
        if self.enabled:
            for listener in self._fsync_abort_listeners:
                listener(node, now)

    def on_fsync_complete(
        self, node: str, n_bytes: int, latency_ms: float, now: float
    ) -> None:
        """One real WAL fsync finished on ``node`` (write-behind absorbs
        and no-op syncs are *not* reported — only platter traffic)."""
        if self.enabled:
            self.fsync_latencies.append((node, n_bytes, latency_ms, now))
            for listener in self._disk_listeners:
                listener(node, n_bytes, latency_ms, now)

    def report_quorum_event(self, caller: str, quorum_event, now: float) -> None:
        """Record arrival ranks for one triggered quorum round.

        Called (via subscription) the moment a QuorumEvent fires: RPC
        children that triggered acceptably get their 1-based arrival
        rank; RPC children still outstanding are stragglers the quorum
        did not wait for. Non-RPC children (e.g. the leader's local WAL
        fsync) are skipped — ranks describe *peers*.
        """
        if not self.enabled:
            return
        rpc_targets = [
            child for child in quorum_event.children if hasattr(child, "to_node")
        ]
        n_targets = len(rpc_targets)
        if n_targets == 0:
            return
        arrived = set()
        rank = 0
        for child in quorum_event.ok_children:
            to_node = getattr(child, "to_node", None)
            if to_node is None:
                continue
            rank += 1
            arrived.add(id(child))
            self._record_arrival(
                QuorumArrival(caller, to_node, True, rank, n_targets, now)
            )
        for child in rpc_targets:
            if id(child) not in arrived:
                self._record_arrival(
                    QuorumArrival(caller, child.to_node, False, None, n_targets, now)
                )

    def _record_arrival(self, arrival: QuorumArrival) -> None:
        self.quorum_arrivals.append(arrival)
        for listener in self._quorum_listeners:
            listener(arrival)

    # ------------------------------------------------------------------
    # Streaming subscriptions (online detectors)
    # ------------------------------------------------------------------
    def add_rpc_listener(self, listener: Callable) -> None:
        """``listener(node, peer, method, latency_ms, now)`` per RPC reply."""
        self._rpc_listeners.append(listener)

    def add_quorum_listener(self, listener: Callable) -> None:
        """``listener(arrival: QuorumArrival)`` per quorum-round outcome."""
        self._quorum_listeners.append(listener)

    def add_disk_listener(self, listener: Callable) -> None:
        """``listener(node, n_bytes, latency_ms, now)`` per completed fsync."""
        self._disk_listeners.append(listener)

    def add_fsync_begin_listener(self, listener: Callable) -> None:
        """``listener(node, n_bytes, now)`` per issued fsync."""
        self._fsync_begin_listeners.append(listener)

    def add_fsync_abort_listener(self, listener: Callable) -> None:
        """``listener(node, now)`` when a node's WAL retires mid-fsync."""
        self._fsync_abort_listeners.append(listener)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def waits_from(self, node: str) -> List[WaitRecord]:
        return [record for record in self.records if record.node == node]

    def inter_node_waits(self) -> List[WaitRecord]:
        return [record for record in self.records if record.is_inter_node()]

    def clear(self) -> None:
        self.records.clear()
