"""Event trace points: the scheduler-facing instrumentation.

A :class:`Tracer` receives the scheduler's hooks and materializes one
:class:`WaitRecord` per completed wait. Records carry the waiting
coroutine's node, the event's kind, and the event's *wait edges* — the
``(source, k, n)`` dependencies captured at wait time — which is all the
SPG and the tolerance checker need.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.events.base import Event
from repro.sim.kernel import Kernel


class WaitRecord:
    """One completed (or timed-out) wait by one coroutine."""

    __slots__ = (
        "coro_name",
        "node",
        "event_kind",
        "event_name",
        "edges",
        "started_at",
        "ended_at",
        "timed_out",
        "dedication",
    )

    def __init__(
        self,
        coro_name: str,
        node: Optional[str],
        event_kind: str,
        event_name: str,
        edges: List[Tuple[str, int, int]],
        started_at: float,
        ended_at: float,
        timed_out: bool,
        dedication: Optional[str] = None,
    ):
        self.coro_name = coro_name
        self.node = node
        self.event_kind = event_kind
        self.event_name = event_name
        self.edges = edges
        self.started_at = started_at
        self.ended_at = ended_at
        self.timed_out = timed_out
        # The waiting coroutine's dedication (see Coroutine): waits by a
        # per-peer stream on its own peer are exempt from the tolerance
        # check because their impact radius is that peer alone.
        self.dedication = dedication

    @property
    def waited_ms(self) -> float:
        return self.ended_at - self.started_at

    def is_inter_node(self) -> bool:
        """True if any dependency crosses to a different node."""
        return any(source != self.node for source, _k, _n in self.edges)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<WaitRecord {self.node}/{self.coro_name} on {self.event_kind} "
            f"{self.waited_ms:.2f}ms edges={self.edges}>"
        )


class Tracer:
    """Collects wait records from every runtime in a cluster.

    One tracer is shared by all runtime instances — "multiple DepFast
    runtime instances will work together for the tracing" (§3.3).
    """

    def __init__(self, kernel: Kernel, enabled: bool = True):
        self.kernel = kernel
        self.enabled = enabled
        self.records: List[WaitRecord] = []
        # (caller_node, callee_node, method, latency_ms, completed_at):
        # per-RPC latencies reported by the RPC layer. Unlike wait records
        # these cover *every* reply — including replies from quorum
        # stragglers nobody waited on — which is what per-peer slowness
        # detection needs.
        self.rpc_latencies: List[Tuple[str, str, str, float, float]] = []
        self.spawned = 0
        self.finished = 0
        self._open_waits: Dict[int, Tuple[Event, float]] = {}

    # ------------------------------------------------------------------
    # Scheduler hooks
    # ------------------------------------------------------------------
    def on_spawn(self, coro, now: float) -> None:
        self.spawned += 1

    def on_wait_start(self, coro, event: Event, now: float, timeout_ms) -> None:
        if not self.enabled:
            return
        # Edges are captured at wait start: QuorumEvents may gain children
        # afterwards, but DepFast code attaches children before waiting.
        self._open_waits[id(coro)] = (event, now)

    def on_wait_end(self, coro, event: Event, now: float, timed_out: bool) -> None:
        if not self.enabled:
            return
        opened = self._open_waits.pop(id(coro), None)
        started_at = opened[1] if opened is not None else now
        self.records.append(
            WaitRecord(
                coro_name=coro.name,
                node=coro.node,
                event_kind=event.kind,
                event_name=event.name,
                edges=event.wait_edges(),
                started_at=started_at,
                ended_at=now,
                timed_out=timed_out,
                dedication=getattr(coro, "dedication", None),
            )
        )

    def on_finish(self, coro, now: float) -> None:
        self.finished += 1
        self._open_waits.pop(id(coro), None)

    def on_rpc_complete(
        self, node: str, peer: str, method: str, latency_ms: float, now: float
    ) -> None:
        if self.enabled:
            self.rpc_latencies.append((node, peer, method, latency_ms, now))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def waits_from(self, node: str) -> List[WaitRecord]:
        return [record for record in self.records if record.node == node]

    def inter_node_waits(self) -> List[WaitRecord]:
        return [record for record in self.records if record.is_inter_node()]

    def clear(self) -> None:
        self.records.clear()
