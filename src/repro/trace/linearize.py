"""History recording and linearizability checking for chaos runs.

The chaos harness records every *logical* client operation — one record
per operation across all its retries, because with client sessions the
retries are one request — as an interval [invoked_at, returned_at] plus
the observed result. :func:`check_linearizable` then decides, per key,
whether some total order of the operations (i) respects real-time order
(an op that returned before another was invoked must precede it) and
(ii) matches sequential register semantics (every get sees the latest
preceding put/delete).

The algorithm is the Wing–Gong linearizability test with the
Lowe-style memoization on (remaining-operation set, register value):
depth-first search over "which minimal operation linearizes next",
pruning states already proven dead. Histories are partitioned by key
first — operations on different keys commute, so checking keys
independently is sound and turns one exponential problem into many tiny
ones.

Operations that never returned (client timed out / crashed) are
*indeterminate*: a write may have taken effect or not, so the checker
may linearize it at any point after its invocation or drop it entirely.
Determinate operations must all be linearized.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


class _Absent:
    """Register value for 'key not present' (distinct from stored None)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<absent>"


ABSENT = _Absent()


@dataclass
class OpRecord:
    """One logical client operation, spanning all of its retries."""

    op_id: int
    client: str
    kind: str  # "put" | "get" | "delete"
    key: str
    value: Any  # payload for put; ignored otherwise
    invoked_at: float
    returned_at: float = math.inf  # inf ⇒ indeterminate (never returned)
    result: Any = None  # observed reply for get/delete

    @property
    def determinate(self) -> bool:
        return self.returned_at != math.inf


class HistoryRecorder:
    """Collects the concurrent history a chaos run produces.

    Clients call :meth:`invoke` when a logical operation starts (before
    the first attempt), then exactly one of :meth:`complete` (a reply
    was returned to the caller) or :meth:`abandon` (gave up; effect
    unknown). Unfinished operations at the end of a run are treated as
    indeterminate, same as abandoned ones.
    """

    def __init__(self):
        self._ops: List[OpRecord] = []
        self.invoked = 0
        self.completed = 0
        self.abandoned = 0

    def invoke(self, client: str, op: Tuple, now: float) -> Optional[int]:
        kind = op[0]
        if kind == "noop":
            return None  # no observable effect; nothing to check
        key = op[1]
        value = op[2] if kind == "put" else None
        record = OpRecord(
            op_id=len(self._ops),
            client=client,
            kind=kind,
            key=key,
            value=value,
            invoked_at=now,
        )
        self._ops.append(record)
        self.invoked += 1
        return record.op_id

    def complete(self, op_id: Optional[int], result: Any, now: float) -> None:
        if op_id is None:
            return
        record = self._ops[op_id]
        record.returned_at = now
        record.result = result
        self.completed += 1

    def abandon(self, op_id: Optional[int]) -> None:
        if op_id is None:
            return
        self.abandoned += 1  # stays indeterminate (returned_at == inf)

    @property
    def operations(self) -> List[OpRecord]:
        return list(self._ops)

    def by_key(self) -> Dict[str, List[OpRecord]]:
        keys: Dict[str, List[OpRecord]] = {}
        for record in self._ops:
            keys.setdefault(record.key, []).append(record)
        return keys


@dataclass
class LinearizeResult:
    """Verdict for one history."""

    ok: bool
    checked_ops: int
    indeterminate_ops: int
    keys_checked: int
    failed_key: Optional[str] = None
    failed_ops: List[OpRecord] = field(default_factory=list)
    states_explored: int = 0

    def __bool__(self) -> bool:
        return self.ok


def check_linearizable(
    history, max_states_per_key: int = 2_000_000
) -> LinearizeResult:
    """Check a history (a :class:`HistoryRecorder` or list of OpRecords).

    Raises RuntimeError if a key's search exceeds ``max_states_per_key``
    memoized states — better to fail loudly than to pass vacuously.
    """
    if isinstance(history, HistoryRecorder):
        operations = history.operations
    else:
        operations = list(history)
    keys: Dict[str, List[OpRecord]] = {}
    for record in operations:
        keys.setdefault(record.key, []).append(record)
    total_states = 0
    indeterminate = sum(1 for record in operations if not record.determinate)
    for key in sorted(keys):
        ops = sorted(keys[key], key=lambda r: (r.invoked_at, r.op_id))
        ops = _prune_indeterminate(ops)
        ok, states = _check_key(ops, max_states_per_key)
        total_states += states
        if not ok:
            return LinearizeResult(
                ok=False,
                checked_ops=len(operations),
                indeterminate_ops=indeterminate,
                keys_checked=len(keys),
                failed_key=key,
                failed_ops=ops,
                states_explored=total_states,
            )
    return LinearizeResult(
        ok=True,
        checked_ops=len(operations),
        indeterminate_ops=indeterminate,
        keys_checked=len(keys),
        states_explored=total_states,
    )


def _prune_indeterminate(ops: List[OpRecord]) -> List[OpRecord]:
    """Drop indeterminate ops whose effect can never be *required*.

    "Never applied" is always a legal linearization choice for an op that
    never returned, and puts/deletes have no preconditions, so keeping an
    indeterminate op in the search only matters when applying its effect
    might be the explanation for some determinate result. A determinate op
    can only observe an effect linearized before its own point, i.e. one
    whose invocation precedes the observer's return. Everything else is
    dead weight — and each such op doubles the search frontier, because it
    is concurrent with the entire rest of the history.
    """
    kept: List[OpRecord] = []
    for op in ops:
        if op.determinate:
            kept.append(op)
            continue
        if op.kind == "get":
            continue  # no observable result; dropping is always legal
        needed = op.value if op.kind == "put" else None  # delete ⇒ ABSENT ⇒ None
        if any(
            other.determinate
            and other.kind in ("get", "delete")
            and other.result == needed
            and other.returned_at > op.invoked_at
            for other in ops
        ):
            kept.append(op)
    return kept


def _check_key(ops: List[OpRecord], max_states: int) -> Tuple[bool, int]:
    """Wing–Gong search over one key's operations. Returns (ok, states)."""
    if not ops:
        return True, 0
    all_ids = frozenset(range(len(ops)))
    seen = set()
    # Stack of (remaining ids, register value). ABSENT is unhashable-safe:
    # it is a singleton, identity-hashed.
    stack: List[Tuple[frozenset, Any]] = [(all_ids, ABSENT)]
    while stack:
        state = stack.pop()
        remaining, value = state
        if not remaining:
            return True, len(seen)
        if state in seen:
            continue
        seen.add(state)
        if len(seen) > max_states:
            raise RuntimeError(
                f"linearizability search exceeded {max_states} states "
                f"for a {len(ops)}-op key history"
            )
        # An op may linearize first iff nothing else still pending returned
        # before it was invoked (real-time order). Compute the two smallest
        # return times so each op can exclude itself.
        min1 = math.inf
        min1_id = -1
        min2 = math.inf
        for op_id in remaining:
            returned = ops[op_id].returned_at
            if returned < min1:
                min2 = min1
                min1 = returned
                min1_id = op_id
            elif returned < min2:
                min2 = returned
        for op_id in remaining:
            op = ops[op_id]
            bound = min2 if op_id == min1_id else min1
            if op.invoked_at > bound:
                continue  # some pending op returned before this was invoked
            rest = remaining - {op_id}
            if not op.determinate:
                # Never returned: may have taken effect (apply branch below
                # for writes) or not (drop branch — same for reads, whose
                # result was never observed).
                stack.append((rest, value))
                if op.kind == "put":
                    stack.append((rest, op.value))
                elif op.kind == "delete":
                    stack.append((rest, ABSENT))
                continue
            if op.kind == "get":
                expected = None if value is ABSENT else value
                if op.result == expected:
                    stack.append((rest, value))
            elif op.kind == "put":
                stack.append((rest, op.value))
            elif op.kind == "delete":
                # KvStore's delete returns the popped value: check it too.
                expected = None if value is ABSENT else value
                if op.result == expected:
                    stack.append((rest, ABSENT))
            else:  # pragma: no cover - recorder only emits the three kinds
                raise ValueError(f"unknown op kind {op.kind!r}")
    return False, len(seen)
