"""Runtime verification and trace analysis (§3.3).

Because every blocking point in DepFast is an event, the scheduler can
record *who waited on whom, for how long, under what quorum*. This package
turns those records into:

* the **slowness propagation graph** (SPG, Figure 2) — a node-granularity
  digraph whose edges are waiting-for relations, green for quorum waits
  and red for single-event waits (:mod:`repro.trace.spg`);
* a **fail-slow tolerance checker** that verifies the paper's code-level
  definition — "code that only uses QuorumEvent and has no other
  [inter-node] waiting points is fail-slow fault-tolerant code"
  (:mod:`repro.trace.verify`);
* **slowness attribution** — how much wait time each peer contributed to a
  node, exposing propagation quantitatively (:mod:`repro.trace.analysis`).
"""

from repro.trace.analysis import slowness_attribution, wait_time_by_kind
from repro.trace.breakdown import busiest_waits, node_wait_breakdown, render_breakdown
from repro.trace.linearize import (
    HistoryRecorder,
    LinearizeResult,
    OpRecord,
    check_linearizable,
)
from repro.trace.models import (
    expected_quorum_wait,
    impact_radius_table,
    prob_quorum_delayed,
)
from repro.trace.spg import SpgEdge, build_spg, render_spg
from repro.trace.tracepoints import Tracer, WaitRecord
from repro.trace.verify import ToleranceReport, check_fail_slow_tolerance

__all__ = [
    "HistoryRecorder",
    "LinearizeResult",
    "OpRecord",
    "SpgEdge",
    "ToleranceReport",
    "Tracer",
    "WaitRecord",
    "build_spg",
    "busiest_waits",
    "check_fail_slow_tolerance",
    "check_linearizable",
    "expected_quorum_wait",
    "impact_radius_table",
    "node_wait_breakdown",
    "prob_quorum_delayed",
    "render_breakdown",
    "render_spg",
    "slowness_attribution",
    "wait_time_by_kind",
]
