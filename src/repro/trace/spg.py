"""Slowness propagation graphs (Figure 2).

The SPG aggregates thousands of per-coroutine wait records into a
node-granularity digraph. Each directed edge ``A → B`` means "a coroutine
on A waited for something B was supposed to produce". Edge color encodes
the wait type exactly as in the paper: a wait on a basic event contributes
a **red** edge (a single fail-slow source stalls the waiter), a wait on a
QuorumEvent contributes a **green** edge (the waiter tolerates a slow
minority). Labels are the ``k/n`` quorum of the wait.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import networkx as nx

from repro.trace.tracepoints import WaitRecord

# Kinds that merely combine other waits ("and"/"or"): their wait_edges()
# recursively defer to grandchildren, so edge color is decided per edge.
_TRANSPARENT_KINDS = frozenset({"and", "or"})


class SpgEdge:
    """Aggregated waiting-for relation between two nodes."""

    __slots__ = ("src", "dst", "color", "label_counts", "count", "total_wait_ms")

    def __init__(self, src: str, dst: str, color: str):
        self.src = src
        self.dst = dst
        self.color = color
        self.label_counts: Dict[str, int] = {}
        self.count = 0
        self.total_wait_ms = 0.0

    def add_label(self, label: str) -> None:
        self.label_counts[label] = self.label_counts.get(label, 0) + 1

    @property
    def quorum_label(self) -> str:
        """The dominant quorum shape between this pair of nodes.

        One pair can carry waits of several shapes (election rounds vs
        replication); the figure labels the edge with the most frequent.
        """
        if not self.label_counts:
            return "?"
        return max(self.label_counts.items(), key=lambda item: item[1])[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SpgEdge {self.src}->{self.dst} {self.color} "
            f"{self.quorum_label} x{self.count}>"
        )


def _edge_color(record: WaitRecord, k: int, n: int) -> str:
    """Green iff the wait tolerates at least one slow source.

    The decision is purely per-edge: ``wait_edges()`` already pushed each
    event's quorum shape down to its edges (a QuorumEvent stamps its own
    k/n on every child edge; And/Or pass grandchildren's shapes through
    recursively), so ``k < n`` on the edge *is* the slack. Classifying by
    the top-level ``event_kind`` instead would mis-color nested compounds
    — e.g. a tight k==n quorum, or a basic event seen through an AndEvent
    — because the top-level kind says nothing about which child an edge
    came from.
    """
    return "green" if k < n else "red"


def build_spg(records: Iterable[WaitRecord]) -> nx.DiGraph:
    """Aggregate wait records into the node-granularity SPG.

    Vertices are nodes (servers and clients); each directed edge carries:
    ``color`` ('green'/'red'), ``label`` ('k/n'), ``count`` (number of
    waits aggregated) and ``total_wait_ms``.

    Parallel waits with different quorum shapes between the same pair are
    merged conservatively: a single red wait makes the pair's edge red,
    since one single-event wait is enough to propagate slowness.
    """
    edges: Dict[Tuple[str, str], SpgEdge] = {}
    graph = nx.DiGraph()
    for record in records:
        if record.node is None:
            continue
        graph.add_node(record.node)
        for source, k, n in record.edges:
            if source == record.node:
                continue  # local waits (disk, CPU, timers) are not SPG edges
            graph.add_node(source)
            color = _edge_color(record, k, n)
            key = (record.node, source)
            edge = edges.get(key)
            if edge is None:
                edge = SpgEdge(record.node, source, color)
                edges[key] = edge
            elif color == "red" and edge.color == "green":
                # One single-event wait is enough to propagate slowness:
                # red dominates when shapes are mixed.
                edge.color = "red"
            edge.add_label(f"{k}/{n}")
            edge.count += 1
            edge.total_wait_ms += record.waited_ms
    for (src, dst), edge in edges.items():
        graph.add_edge(
            src,
            dst,
            color=edge.color,
            label=edge.quorum_label,
            count=edge.count,
            total_wait_ms=edge.total_wait_ms,
        )
    return graph


def single_wait_edges(graph: nx.DiGraph) -> List[Tuple[str, str]]:
    """The red edges: places where one fail-slow node stalls another."""
    return [
        (src, dst)
        for src, dst, data in graph.edges(data=True)
        if data["color"] == "red"
    ]


def quorum_edges(graph: nx.DiGraph) -> List[Tuple[str, str]]:
    return [
        (src, dst)
        for src, dst, data in graph.edges(data=True)
        if data["color"] == "green"
    ]


def render_spg(graph: nx.DiGraph) -> str:
    """ASCII rendering of the SPG, one edge per line, red edges flagged."""
    lines = ["SPG: {} nodes, {} edges".format(graph.number_of_nodes(), graph.number_of_edges())]
    for src, dst, data in sorted(graph.edges(data=True)):
        marker = "!" if data["color"] == "red" else " "
        lines.append(
            f" {marker} {src} -> {dst}  [{data['color']:>5}] {data['label']:>5}  "
            f"waits={data['count']} total={data['total_wait_ms']:.1f}ms"
        )
    return "\n".join(lines)
