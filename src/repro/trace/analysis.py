"""Quantitative slowness analysis over wait traces.

Attribution model: a wait's time is charged to the *last* sources the
waiter was blocked on. For a quorum wait the waiter proceeded at the k-th
trigger, so slow stragglers beyond the quorum charge nothing — which is
precisely why QuorumEvent bounds the impact radius of a fail-slow node,
and why the same analysis run over a baseline trace shows the slow node
dominating everyone's wait time.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.trace.tracepoints import WaitRecord


def wait_time_by_kind(records: Iterable[WaitRecord]) -> Dict[str, float]:
    """Total wait milliseconds per event kind."""
    totals: Dict[str, float] = {}
    for record in records:
        totals[record.event_kind] = totals.get(record.event_kind, 0.0) + record.waited_ms
    return totals


def slowness_attribution(
    records: Iterable[WaitRecord], node: Optional[str] = None
) -> Dict[str, float]:
    """Wait milliseconds charged to each remote peer.

    ``node`` restricts to waits performed *by* that node; None aggregates
    the whole cluster. Each record's wait time is split evenly across its
    remote edge sources (for a quorum wait, the members it was actually
    gated on).
    """
    charges: Dict[str, float] = {}
    for record in records:
        if node is not None and record.node != node:
            continue
        remote_sources = [src for src, _k, _n in record.edges if src != record.node]
        if not remote_sources:
            continue
        share = record.waited_ms / len(remote_sources)
        for source in remote_sources:
            charges[source] = charges.get(source, 0.0) + share
    return charges


def propagation_ratio(
    records: Iterable[WaitRecord], slow_node: str, waiter: str
) -> float:
    """Fraction of ``waiter``'s inter-node wait time charged to ``slow_node``.

    Near 0 means the slow node's slowness did not propagate to the waiter;
    near 1 means the waiter spent essentially all its remote waiting on the
    slow node.
    """
    charges = slowness_attribution(records, node=waiter)
    total = sum(charges.values())
    if total == 0.0:
        return 0.0
    return charges.get(slow_node, 0.0) / total


def mean_wait_ms(records: Iterable[WaitRecord], kind: Optional[str] = None) -> float:
    """Average wait duration, optionally restricted to one event kind."""
    durations = [
        record.waited_ms
        for record in records
        if kind is None or record.event_kind == kind
    ]
    if not durations:
        return 0.0
    return sum(durations) / len(durations)
