"""Shared machinery for the baseline (fixed-leader) RSMs.

The baselines share DepFastRaft's request path and cost model — client
admission, log append, WAL group commit, follower-side serialization,
apply — so that the *only* difference between Figure 1 and Figure 3 is the
replication wait structure each subclass implements in
:meth:`BaselineRsm._replicate_batch` (plus any extra background behaviour
installed in :meth:`BaselineRsm._on_leader_start`).

Leadership is fixed (the paper measures a steady data path, not
elections): if the leader dies — as the RethinkDB-like leader does under
memory exhaustion — the service is simply down, which is what the paper's
crashed-leader runs look like.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Generator, List, Optional, Tuple

from repro.cluster.node import Node
from repro.events.base import Event
from repro.events.basic import RpcEvent, ValueEvent
from repro.raft.log import RaftLog
from repro.raft.types import LogEntry, entries_size
from repro.storage.kvstore import KvStore

# Baselines run all entries at a fixed pseudo-term.
TERM = 1


@dataclass
class BaselineConfig:
    """Cost/timing knobs, matched to RaftConfig's defaults for fairness."""

    leader: str = "s1"
    batch_max_entries: int = 64
    append_rpc_timeout_ms: float = 500.0
    client_commit_timeout_ms: float = 3000.0
    heartbeat_interval_ms: float = 100.0
    entry_cache_entries: int = 4096

    client_op_cost_ms: float = 0.45
    append_base_cost_ms: float = 0.05
    append_entry_cost_ms: float = 0.02
    apply_cost_ms: float = 0.06
    replicate_entry_cost_ms: float = 0.01

    # Wire bytes per entry byte (serialization/framing overhead); the
    # RethinkDB-like system amplifies this heavily.
    wire_amplification: float = 1.0


class _PendingOp:
    __slots__ = ("op", "done")

    def __init__(self, op, done: ValueEvent):
        self.op = op
        self.done = done


class BaselineRsm:
    """One member of a fixed-leader baseline RSM group."""

    system_name = "baseline"

    def __init__(self, node: Node, group: List[str], config: Optional[BaselineConfig] = None):
        self.node = node
        self.id = node.node_id
        self.config = config or BaselineConfig(leader=group[0])
        self.group = list(group)
        self.peers = [member for member in group if member != self.id]
        self.majority = len(group) // 2 + 1
        self.rt = node.runtime
        self.ep = node.endpoint

        self.log = RaftLog(cache_entries=self.config.entry_cache_entries)
        self.kv = KvStore()
        self.commit_index = 0
        self.last_applied = 0
        self._applying = False

        # Leader state.
        self._pending_ops: Deque[_PendingOp] = deque()
        self._pending_signal: Optional[ValueEvent] = None
        self._completions: Dict[int, ValueEvent] = {}
        self._match_index: Dict[str, int] = {peer: 0 for peer in self.peers}
        self._ack_promises: List[Tuple[str, int, Event]] = []
        self.batches_committed = 0

        # Follower append serialization.
        self._append_gate = Event(name="append-gate")
        self._append_gate.trigger()

        self.ep.register("replicate", self._on_replicate)
        self.ep.register("heartbeat", self._on_heartbeat)
        self.ep.register("client_request", self._on_client_request)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def default_config(cls, leader: str) -> "BaselineConfig":
        return BaselineConfig(leader=leader)

    @property
    def is_leader(self) -> bool:
        return self.id == self.config.leader

    def start(self) -> None:
        self.node.start()
        if self.is_leader:
            self.rt.spawn(self._batcher(), name=f"{self.id}:batcher")
            if self.peers:
                self.rt.spawn(self._heartbeat_loop(), name=f"{self.id}:heartbeats")
            self._on_leader_start()

    def _on_leader_start(self) -> None:
        """Hook: subclasses install extra leader background behaviour."""

    # ------------------------------------------------------------------
    # Leader: batching
    # ------------------------------------------------------------------
    def _batcher(self) -> Generator:
        cfg = self.config
        while not self.rt.crashed:
            if not self._pending_ops:
                self._pending_signal = ValueEvent(name=f"{self.id}:pending")
                yield self._pending_signal.wait(timeout_ms=cfg.heartbeat_interval_ms)
                if not self._pending_ops:
                    continue
            batch: List[_PendingOp] = []
            while self._pending_ops and len(batch) < cfg.batch_max_entries:
                batch.append(self._pending_ops.popleft())
            first = self.log.last_index() + 1
            entries: List[LogEntry] = []
            for offset, pending in enumerate(batch):
                entry = LogEntry.sized(TERM, first + offset, pending.op)
                self.log.append(entry)
                entries.append(entry)
                self._completions[entry.index] = pending.done
            last = entries[-1].index

            build_cost = cfg.append_base_cost_ms + (
                len(entries) * cfg.replicate_entry_cost_ms * (1 + len(self.peers))
            )
            yield self.rt.compute(build_cost, name="batch-build")

            committed = yield from self._replicate_batch(entries, first, last)
            if committed:
                self.commit_index = max(self.commit_index, last)
                self.batches_committed += 1
                yield from self._apply_committed()
            else:
                for pending in batch:
                    if not pending.done.ready():
                        pending.done.set({"ok": False, "redirect": None}, now=self.rt.now)

    def _replicate_batch(
        self, entries: List[LogEntry], first: int, last: int
    ) -> Generator:
        """Subclass hook: replicate one batch; returns True on commit."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Leader: send/ack plumbing shared by the subclasses
    # ------------------------------------------------------------------
    def wire_size(self, entries: List[LogEntry]) -> int:
        return int(entries_size(entries) * self.config.wire_amplification) + 64

    def send_entries(self, peer: str, prev_index: int, entries: List[LogEntry]) -> RpcEvent:
        payload = {
            "leader": self.id,
            "prev_index": prev_index,
            "entries": entries,
            "commit": self.commit_index,
        }
        rpc = self.ep.call(peer, "replicate", payload, size_bytes=self.wire_size(entries))
        last_sent = entries[-1].index if entries else prev_index
        rpc.subscribe(
            lambda ev, _peer=peer, _last=last_sent: self._on_replicate_reply(_peer, ev, _last)
        )
        return rpc

    def _on_replicate_reply(self, peer: str, rpc: RpcEvent, last_sent: int) -> None:
        if not rpc.ok or not isinstance(rpc.reply, dict):
            return
        if rpc.reply.get("success"):
            match = rpc.reply.get("match", last_sent)
            if match > self._match_index[peer]:
                self._match_index[peer] = match
                self._fire_ack_promises(peer)

    def ack_event(self, peer: str, target_index: int) -> Event:
        """Event that fires when ``peer`` has acked up to ``target_index``.

        This is the building block of the pathological all-follower waits:
        an AndEvent over these is a k==n wait the tolerance checker flags.
        """
        promise = Event(name=f"ack:{peer}@{target_index}", source=peer)
        if self._match_index.get(peer, 0) >= target_index:
            promise.trigger(self.rt.now)
        else:
            self._ack_promises.append((peer, target_index, promise))
        return promise

    def _fire_ack_promises(self, peer: str) -> None:
        match = self._match_index.get(peer, 0)
        remaining = []
        for entry_peer, target, promise in self._ack_promises:
            if entry_peer == peer and match >= target:
                promise.trigger(self.rt.now)
            elif not promise.ready():
                remaining.append((entry_peer, target, promise))
        self._ack_promises = remaining

    def majority_ack_event(self, rpcs: List[RpcEvent]):
        """Callback-style majority wait: a counter over reply callbacks.

        Deliberately *not* a QuorumEvent: baselines count acks in
        callbacks, as their real message-loop implementations do. The
        counter event carries no quorum structure, which is exactly why
        their traces are harder to analyze (§2.3).
        """
        from repro.events.basic import SharedIntEvent

        needed = max(1, self.majority - 1)
        counter = SharedIntEvent(target=needed, name=f"{self.id}:majority")
        for rpc in rpcs:
            def on_reply(ev, _counter=counter):
                if ev.ok and isinstance(ev.reply, dict) and ev.reply.get("success"):
                    if not _counter.ready():
                        _counter.add(1, now=self.rt.now)

            rpc.subscribe(on_reply)
        return counter

    # ------------------------------------------------------------------
    # Heartbeats (commit propagation to followers)
    # ------------------------------------------------------------------
    def _heartbeat_loop(self) -> Generator:
        cfg = self.config
        while not self.rt.crashed:
            for peer in self.peers:
                self.ep.notify(
                    peer,
                    "heartbeat",
                    {"leader": self.id, "commit": self.commit_index},
                    size_bytes=32,
                )
            yield self.rt.sleep(cfg.heartbeat_interval_ms)

    # ------------------------------------------------------------------
    # Apply
    # ------------------------------------------------------------------
    def _apply_committed(self) -> Generator:
        if self._applying:
            return
        self._applying = True
        try:
            while self.last_applied < self.commit_index:
                take = min(self.commit_index - self.last_applied, 128)
                yield self.rt.compute(take * self.config.apply_cost_ms, name="apply")
                for _ in range(take):
                    self.last_applied += 1
                    entry = self.log.entry_at(self.last_applied)
                    result = self.kv.apply(entry.op)
                    done = self._completions.pop(self.last_applied, None)
                    if done is not None and not done.ready():
                        done.set({"ok": True, "result": result}, now=self.rt.now)
        finally:
            self._applying = False

    # ------------------------------------------------------------------
    # RPC handlers
    # ------------------------------------------------------------------
    def _on_replicate(self, payload: Dict[str, Any], src: str) -> Generator:
        cfg = self.config
        previous_gate = self._append_gate
        my_gate = Event(name=f"{self.id}:append-gate")
        self._append_gate = my_gate
        try:
            if not previous_gate.ready():
                yield previous_gate.wait()
            entries: List[LogEntry] = payload["entries"]
            yield self.rt.compute(
                cfg.append_base_cost_ms + cfg.append_entry_cost_ms * len(entries),
                name="append",
            )
            prev_index = payload["prev_index"]
            if self.log.last_index() < prev_index:
                return {"success": False, "match": self.log.last_index()}
            changed = self.log.append_or_overwrite(entries)
            if changed > 0:
                new_entries = entries[-changed:]
                self.node.wal.append(entries_size(new_entries))
                sync = self.node.wal.sync()
                yield sync.wait()
            yield from self._advance_commit(payload["commit"])
            match = entries[-1].index if entries else prev_index
            return {"success": True, "match": match}
        finally:
            my_gate.trigger(self.rt.now)

    def _on_heartbeat(self, payload: Dict[str, Any], src: str) -> Generator:
        yield from self._advance_commit(payload["commit"])
        return None

    def _advance_commit(self, leader_commit: int) -> Generator:
        target = min(leader_commit, self.log.last_index())
        if target > self.commit_index:
            self.commit_index = target
        yield from self._apply_committed()

    def _on_client_request(self, payload: Dict[str, Any], src: str) -> Generator:
        cfg = self.config
        if not self.is_leader:
            return {"ok": False, "redirect": self.config.leader}
        if self.rt.crashed:
            return {"ok": False, "redirect": None}
        yield self.rt.compute(cfg.client_op_cost_ms, name="client-op")
        done = ValueEvent(name=f"{self.id}:commit-wait", source=self.id)
        self._pending_ops.append(_PendingOp(payload["op"], done))
        if self._pending_signal is not None and not self._pending_signal.ready():
            self._pending_signal.set(True, now=self.rt.now)
        result = yield done.wait(timeout_ms=cfg.client_commit_timeout_ms)
        if result.timed_out:
            return {"ok": False, "redirect": None}
        return done.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "leader" if self.is_leader else "follower"
        return f"<{type(self).__name__} {self.id} {role} log={self.log.last_index()}>"


def deploy_baseline(
    cluster,
    system_cls,
    group: List[str],
    config: Optional[BaselineConfig] = None,
) -> Dict[str, BaselineRsm]:
    """Create and start one baseline RSM group on the cluster."""
    if len(group) % 2 == 0:
        raise ValueError(f"group size must be odd, got {len(group)}")
    config = config or system_cls.default_config(group[0])
    spec_factory = getattr(system_cls, "node_spec", None)
    instances: Dict[str, BaselineRsm] = {}
    for node_id in group:
        spec = spec_factory() if spec_factory is not None else None
        node = cluster.add_node(node_id, spec=spec)
        instances[node_id] = system_cls(node, group, config=config)
    for instance in instances.values():
        instance.start()
    return instances
