"""Baseline RSM implementations with the §2.2 root-cause pathologies.

The paper measured MongoDB, TiDB and RethinkDB; we cannot run those
databases offline, so each baseline here is a complete, runnable
fixed-leader RSM whose *implementation* deliberately contains the
developer-confirmed root cause the paper attributes to that system:

* :class:`MongoLikeRsm` — synchronous-wait behaviour: a periodic
  flow-control checkpoint where the leader waits (bounded) on **all**
  followers, so one fail-slow follower stalls the write path on every
  checkpoint;
* :class:`TidbLikeRsm` — a single-threaded raftstore loop: once a lagging
  follower's acked index falls below the EntryCache floor, regenerating
  its entries reads from disk **synchronously on the store thread**,
  stalling every batch;
* :class:`RethinkLikeRsm` — unbounded outgoing buffers: the leader pushes
  amplified write traffic to every follower with no flow-control
  awareness, so a slow follower drives the leader into swap thrash and
  eventually OOM (the leader crash the paper observed under CPU slowness).

All three share the request path, cost model and client contract with
DepFastRaft, so Figure 1 vs Figure 3 comparisons isolate the replication-
wait structure.
"""

from repro.baselines.base import BaselineConfig, BaselineRsm, deploy_baseline
from repro.baselines.mongo_like import MongoLikeRsm
from repro.baselines.rethink_like import RethinkLikeRsm
from repro.baselines.tidb_like import TidbLikeRsm

BASELINE_SYSTEMS = {
    "mongo-like": MongoLikeRsm,
    "tidb-like": TidbLikeRsm,
    "rethink-like": RethinkLikeRsm,
}

__all__ = [
    "BASELINE_SYSTEMS",
    "BaselineConfig",
    "BaselineRsm",
    "MongoLikeRsm",
    "RethinkLikeRsm",
    "TidbLikeRsm",
    "deploy_baseline",
]
