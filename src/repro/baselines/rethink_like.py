"""RethinkDB-like baseline: unbounded outgoing buffers at the leader.

"RethinkDB maintains an unbounded buffer at the leader for outgoing
writes — a slow follower can drive the leader to use an excessive amount
of memory, or even run out of memory" (§2.2). In the paper's runs, CPU
slowness on a follower ended with the *leader* crashing.

Mechanics modelled here:

* the leader pushes every batch to every follower eagerly with no
  flow-control awareness; replication messages carry heavy serialization/
  changefeed framing (``wire_amplification``), and anything beyond the
  TCP window piles into *unbounded* send buffers accounted against the
  leader's memory;
* as buffer memory grows past the swap threshold, the leader's CPU takes
  the swap-thrash penalty (degradation); crossing the memory limit OOMs
  the process (``oom_policy="crash"``);
* a periodic cluster-status sync wing waits (bounded) on all followers
  before letting writes continue, RethinkDB's directory/changefeed
  coordination — a second, milder synchronous-wait pathology so disk and
  network faults (which do not starve the follower's dispatcher) still
  degrade the system as Figure 1 shows.

The node spec scales memory down from 16 GB so that time-to-OOM lands
inside a simulated measurement window instead of hours; the mechanism —
backlog bytes vs free memory — is preserved (see DESIGN.md).
"""

from __future__ import annotations

from typing import Generator, List

from repro.baselines.base import BaselineConfig, BaselineRsm
from repro.cluster.node import NodeSpec
from repro.events.base import Event
from repro.events.compound import AndEvent
from repro.raft.types import LogEntry, entries_size


class RethinkLikeRsm(BaselineRsm):
    """Fixed-leader RSM with eager pushes into unbounded buffers."""

    system_name = "rethink-like"

    status_sync_interval_ms = 400.0
    status_sync_timeout_ms = 18.0

    def __init__(self, node, group, config=None):
        if config is None:
            config = self.default_config(group[0])
        super().__init__(node, group, config=config)
        self._write_gate: Event = Event(name="write-gate")
        self._write_gate.trigger()
        self.status_stalls = 0
        self.status_stall_ms = 0.0

    @classmethod
    def default_config(cls, leader: str) -> BaselineConfig:
        # Per-write framing overhead: serialized documents + changefeed
        # bookkeeping ride along with every replicated write.
        return BaselineConfig(leader=leader, wire_amplification=3.0)

    @staticmethod
    def node_spec() -> NodeSpec:
        """Memory scaled down so OOM dynamics fit the simulated window."""
        return NodeSpec(
            memory_bytes=112 * 1024 * 1024,
            base_memory_fraction=0.5,
            send_buffer_limit=None,  # the unbounded buffer
            oom_policy="crash",
            memory_swap_threshold=0.92,
            memory_max_swap_penalty=3.0,
        )

    def _on_leader_start(self) -> None:
        self.rt.spawn(self._status_sync_loop(), name=f"{self.id}:status-sync")

    def _replicate_batch(
        self, entries: List[LogEntry], first: int, last: int
    ) -> Generator:
        cfg = self.config
        # Status sync in progress? Writes wait for it (shared locks).
        if not self._write_gate.ready():
            yield self._write_gate.wait()
        self.node.wal.append(entries_size(entries))
        local_sync = self.node.wal.sync()
        # Eager push to everyone — no flow-control awareness; the network
        # layer buffers without bound on this node spec.
        rpcs = [self.send_entries(peer, first - 1, entries) for peer in self.peers]
        majority = self.majority_ack_event(rpcs)
        gate = AndEvent(local_sync, majority, name=f"{self.id}:commit-gate")
        yield gate.wait(timeout_ms=cfg.append_rpc_timeout_ms)
        while not gate.ready() and not self.rt.crashed:
            yield gate.wait(timeout_ms=cfg.append_rpc_timeout_ms)
        return True

    def _status_sync_loop(self) -> Generator:
        """Periodic all-follower coordination that holds the write gate."""
        while not self.rt.crashed:
            yield self.rt.sleep(self.status_sync_interval_ms)
            if not self.peers:
                continue
            target = self.log.last_index()
            self._write_gate = Event(name=f"{self.id}:write-gate")
            try:
                sync = AndEvent(
                    *[self.ack_event(peer, target) for peer in self.peers],
                    name=f"{self.id}:status-sync",
                )
                before = self.rt.now
                yield sync.wait(timeout_ms=self.status_sync_timeout_ms)
                stalled = self.rt.now - before
                if stalled > 1.0:
                    self.status_stalls += 1
                    self.status_stall_ms += stalled
            finally:
                self._write_gate.trigger(self.rt.now)

    def leader_backlog_bytes(self) -> int:
        """Outgoing-buffer backlog at the leader (the §2.2 metric)."""
        return self.node.network.buffered_bytes_from(self.id)
