"""TiDB-like baseline: single-threaded raftstore with blocking cache-miss reads.

TiDB's raftstore drives every region on one thread. The leader keeps
recent entries in an in-memory ``EntryCache``; when a lagging follower's
acked index falls below the cache floor, regenerating its append message
reads the evicted entries back from RocksDB — *synchronously, on the store
thread* — so every region (here: every batch) served by that thread stalls
for the read. That is the first root cause of §2.2, confirmed by the
developers.

Mechanics modelled here:

* one store-loop coroutine does everything in sequence: batch formation,
  WAL fsync, per-peer message generation, commit, apply — nothing else
  makes progress while it waits;
* pipelining to a follower stops once its un-acked backlog exceeds
  ``pipeline_cap_entries`` (raft-rs's max-inflight behaviour); from then
  on each store-loop cycle regenerates a probe window starting at the
  follower's acked index;
* probe entries below the cache floor cost a page-granular random disk
  read (``read_page_bytes`` per entry) that the store loop waits on.
"""

from __future__ import annotations

from typing import Generator, List

from repro.baselines.base import TERM, BaselineConfig, BaselineRsm, _PendingOp
from repro.events.basic import ValueEvent
from repro.events.compound import AndEvent
from repro.raft.types import LogEntry, entries_size


class TidbLikeRsm(BaselineRsm):
    """Fixed-leader RSM whose leader runs everything on one store thread."""

    system_name = "tidb-like"

    pipeline_cap_entries = 256
    probe_window_entries = 128
    read_page_bytes = 8192  # RocksDB-class block reads, one per entry

    def __init__(self, node, group, config=None):
        if config is None:
            config = self.default_config(group[0])
        super().__init__(node, group, config=config)
        self.blocking_reads = 0
        self.blocking_read_ms = 0.0

    @classmethod
    def default_config(cls, leader: str) -> BaselineConfig:
        # TiDB's EntryCache is deliberately small; a follower that lags by
        # a few hundred entries already falls off it.
        return BaselineConfig(leader=leader, entry_cache_entries=512)

    def start(self) -> None:
        # Replace the generic batcher with the single store loop: the
        # whole leader data path runs in this one coroutine.
        self.node.start()
        if self.is_leader:
            self.rt.spawn(self._store_loop(), name=f"{self.id}:store-loop")
            if self.peers:
                self.rt.spawn(self._heartbeat_loop(), name=f"{self.id}:heartbeats")

    def _replicate_batch(self, entries, first, last):  # pragma: no cover
        raise NotImplementedError("tidb-like replaces the batcher entirely")
        yield  # marks this as a generator

    # ------------------------------------------------------------------
    # The store loop
    # ------------------------------------------------------------------
    def _store_loop(self) -> Generator:
        cfg = self.config
        while not self.rt.crashed:
            if not self._pending_ops:
                self._pending_signal = ValueEvent(name=f"{self.id}:pending")
                yield self._pending_signal.wait(timeout_ms=cfg.heartbeat_interval_ms)
                if not self._pending_ops:
                    continue
            batch: List[_PendingOp] = []
            while self._pending_ops and len(batch) < cfg.batch_max_entries:
                batch.append(self._pending_ops.popleft())
            first = self.log.last_index() + 1
            entries: List[LogEntry] = []
            for offset, pending in enumerate(batch):
                entry = LogEntry.sized(TERM, first + offset, pending.op)
                self.log.append(entry)
                entries.append(entry)
                self._completions[entry.index] = pending.done
            last = entries[-1].index

            build_cost = cfg.append_base_cost_ms + (
                len(entries) * cfg.replicate_entry_cost_ms * (1 + len(self.peers))
            )
            yield self.rt.compute(build_cost, name="batch-build")

            # Raftstore fsyncs raft-log writes on the store thread.
            self.node.wal.append(entries_size(entries))
            local_sync = self.node.wal.sync()
            yield local_sync.wait()

            # Generate per-peer messages — the blocking-read pathology.
            rpcs = []
            for peer in self.peers:
                lag = (first - 1) - self._match_index[peer]
                if lag <= self.pipeline_cap_entries:
                    rpcs.append(self.send_entries(peer, first - 1, entries))
                else:
                    yield from self._probe_lagging_peer(peer)
            majority = self.majority_ack_event(rpcs) if rpcs else None
            if majority is not None:
                gate = AndEvent(majority, name=f"{self.id}:commit-gate")
                yield gate.wait(timeout_ms=cfg.append_rpc_timeout_ms)
                while not gate.ready() and not self.rt.crashed:
                    yield gate.wait(timeout_ms=cfg.append_rpc_timeout_ms)
            # Commit + apply, also on the store thread.
            self.commit_index = max(self.commit_index, last)
            self.batches_committed += 1
            yield from self._apply_committed()

    def _probe_lagging_peer(self, peer: str) -> Generator:
        """Regenerate a probe window for a peer that fell off the pipeline.

        Entries below the EntryCache floor require a synchronous disk
        read; because this runs inside the store loop, the read blocks
        batch processing for every client — TiDB's confirmed root cause.
        """
        next_index = self._match_index[peer] + 1
        last = min(self.log.last_index(), next_index + self.probe_window_entries - 1)
        if next_index > last:
            return
        entries, _raw_bytes, misses = self.log.slice_cached(next_index, last)
        if misses > 0:
            read_bytes = misses * self.read_page_bytes
            # A *synchronous* read on the store thread: while the device
            # works, the thread is unavailable to every other task that
            # shares it. The node's CPU queue is that thread, so we occupy
            # it for the I/O's duration; the read itself is issued to keep
            # the device busy but the thread-block is what propagates.
            self.node.wal.read(read_bytes)
            disk = self.node.disk
            blocked_ms = disk.op_latency_ms + read_bytes / disk.effective_rate()
            before = self.rt.now
            yield self.rt.compute(blocked_ms, name="store-thread-blocked")
            self.blocking_reads += 1
            self.blocking_read_ms += self.rt.now - before
        self.send_entries(peer, next_index - 1, entries)
