"""MongoDB-like baseline: synchronous-wait flow-control checkpoints.

The write path commits on a majority like the real system (WriteConcern =
majority, chained replication off), but every ``checkpoint_every_batches``
batches the leader advances its flow-control checkpoint by waiting —
bounded by ``checkpoint_timeout_ms`` — for **all** followers to ack the
checkpoint index. With healthy followers the wait is ~1 ms and invisible;
with one fail-slow follower it burns the full timeout on every checkpoint:
the "synchronous wait behavior (the leader waits for the fail-slow
follower)" root cause of §2.2, surfacing as periodic write-path stalls
that depress throughput and blow up tail latency.

The checkpoint wait is an AndEvent over per-follower ack events — a k==n
inter-node wait that :func:`repro.trace.verify.check_fail_slow_tolerance`
flags as a violation.
"""

from __future__ import annotations

from typing import Generator, List

from repro.baselines.base import BaselineConfig, BaselineRsm
from repro.events.compound import AndEvent
from repro.raft.types import LogEntry, entries_size


class MongoLikeRsm(BaselineRsm):
    """Fixed-leader RSM with periodic all-follower checkpoint waits."""

    system_name = "mongo-like"

    checkpoint_every_batches = 8
    checkpoint_timeout_ms = 15.0

    def __init__(self, node, group, config=None):
        super().__init__(node, group, config=config)
        self._batches_since_checkpoint = 0
        self.checkpoint_stalls = 0
        self.checkpoint_stall_ms = 0.0

    def _replicate_batch(
        self, entries: List[LogEntry], first: int, last: int
    ) -> Generator:
        cfg = self.config
        # Local group commit.
        self.node.wal.append(entries_size(entries))
        local_sync = self.node.wal.sync()
        # Eager push to every follower (connections are FIFO-reliable, so
        # followers lag but never gap); majority counted in callbacks.
        rpcs = [self.send_entries(peer, first - 1, entries) for peer in self.peers]
        majority = self.majority_ack_event(rpcs)
        gate = AndEvent(local_sync, majority, name=f"{self.id}:commit-gate")
        yield gate.wait(timeout_ms=cfg.append_rpc_timeout_ms)
        while not gate.ready() and not self.rt.crashed:
            yield gate.wait(timeout_ms=cfg.append_rpc_timeout_ms)

        # Flow-control checkpoint: the pathological all-follower wait.
        self._batches_since_checkpoint += 1
        if self._batches_since_checkpoint >= self.checkpoint_every_batches and self.peers:
            self._batches_since_checkpoint = 0
            checkpoint = AndEvent(
                *[self.ack_event(peer, last) for peer in self.peers],
                name=f"{self.id}:flow-control-checkpoint",
            )
            before = self.rt.now
            yield checkpoint.wait(timeout_ms=self.checkpoint_timeout_ms)
            stalled = self.rt.now - before
            if stalled > 1.0:
                self.checkpoint_stalls += 1
                self.checkpoint_stall_ms += stalled
        return True

    @classmethod
    def default_config(cls, leader: str) -> BaselineConfig:
        return BaselineConfig(leader=leader)
