"""One Multi-Paxos replica: proposer + acceptor + learner in coroutines.

The request path is the paper's §2.3 example, written synchronously:

* **Prepare** (leadership): one ``QuorumCall`` — promise quorum or retry;
* **Accept** (per batch): one ``QuorumEvent`` over acceptor replies plus
  the proposer's own acceptance — commit on any majority, never on the
  slow minority;
* **Commit/learn**: a notification piggybacking the commit index on the
  heartbeat cadence.

Acceptors store accepts per slot independently (gaps are fine); each
replica applies its *contiguous* accepted prefix up to the learned commit
index. Holes at lagging acceptors — e.g. when the quorum-aware framework
discarded their messages — are filled by a per-peer repair stream, exactly
the dedicated-coroutine pattern DepFastRaft uses: the slow peer's
slowness is absorbed by its own stream, never the batch path.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any, Deque, Dict, Generator, List, Optional, Set, Tuple

from repro.cluster.node import Node
from repro.events.basic import RpcEvent, ValueEvent
from repro.events.compound import QuorumEvent
from repro.net.rpc import QuorumCall
from repro.paxos.config import PaxosConfig
from repro.storage.kvstore import KvOp, KvStore


class _PendingOp:
    __slots__ = ("op", "done")

    def __init__(self, op: KvOp, done: ValueEvent):
        self.op = op
        self.done = done


class PaxosNode:
    """One member of a Multi-Paxos group."""

    def __init__(
        self,
        node: Node,
        group: List[str],
        config: Optional[PaxosConfig] = None,
        rng: Optional[random.Random] = None,
        state_machine: Optional[KvStore] = None,
    ):
        if node.node_id not in group:
            raise ValueError(f"{node.node_id} not in group {group}")
        self.node = node
        self.id = node.node_id
        self.group = list(group)
        self.rank = group.index(self.id)
        self.peers = [member for member in group if member != self.id]
        self.majority = len(group) // 2 + 1
        self.config = config or PaxosConfig()
        self.rng = rng or random.Random(hash(self.id) & 0xFFFF)
        self.rt = node.runtime
        self.ep = node.endpoint

        # Acceptor state.
        self.promised_ballot = 0
        self.accepted: Dict[int, Tuple[int, KvOp]] = {}  # slot -> (ballot, op)
        self.contiguous_accepted = 0  # highest slot with no holes below it

        # Learner state.
        self.kv = state_machine if state_machine is not None else KvStore()
        self.commit_index = 0
        self.last_applied = 0
        self._applying = False

        # Proposer state.
        self.is_leader = False
        self.ballot = 0
        self.leader_hint: Optional[str] = None
        self._ballot_round = 0
        self._next_slot = 1
        self._pending_ops: Deque[_PendingOp] = deque()
        self._pending_signal: Optional[ValueEvent] = None
        self._completions: Dict[int, ValueEvent] = {}
        self._peer_ack: Dict[str, int] = {}
        self._repairing: Set[str] = set()
        self._step_down: Optional[ValueEvent] = None
        self._ht_event: Optional[ValueEvent] = None

        # Counters.
        self.prepare_rounds = 0
        self.became_leader = 0
        self.batches_committed = 0
        self.repairs_started = 0

        self.ep.register("paxos_prepare", self._on_prepare)
        self.ep.register("paxos_accept", self._on_accept)
        self.ep.register("paxos_commit", self._on_commit)
        self.ep.register("client_request", self._on_client_request)

    # ==================================================================
    # Lifecycle
    # ==================================================================
    def start(self) -> None:
        self.node.start()
        self.rt.spawn(self._main_loop(), name=f"{self.id}:paxos-main")

    def _leading(self, ballot: int) -> bool:
        return self.is_leader and self.ballot == ballot and not self.rt.crashed

    def _main_loop(self) -> Generator:
        while not self.rt.crashed:
            if self.is_leader:
                self._step_down = ValueEvent(name=f"{self.id}:step-down")
                yield self._step_down.wait()
                continue
            self._ht_event = ValueEvent(name=f"{self.id}:leader-seen")
            result = yield self._ht_event.wait(timeout_ms=self._election_timeout())
            if result.timed_out and not self.is_leader:
                yield from self._try_become_leader()

    def _election_timeout(self) -> float:
        cfg = self.config
        if cfg.preferred_leader is not None and self.promised_ballot == 0:
            if cfg.preferred_leader == self.id:
                return 10.0 + self.rng.uniform(0.0, 5.0)
        return cfg.election_timeout_min_ms + self.rng.uniform(
            0.0, cfg.election_timeout_max_ms - cfg.election_timeout_min_ms
        )

    def _poke_heartbeat(self) -> None:
        if self._ht_event is not None and not self._ht_event.ready():
            self._ht_event.set(True, now=self.rt.now)

    def _demote(self, promised: int, leader: Optional[str]) -> None:
        if promised > self.promised_ballot:
            self.promised_ballot = promised
        if leader is not None:
            self.leader_hint = leader
        if self.is_leader and promised > self.ballot:
            self.is_leader = False
            if self._step_down is not None and not self._step_down.ready():
                self._step_down.set(True, now=self.rt.now)

    # ==================================================================
    # Phase 1: Prepare
    # ==================================================================
    def _next_ballot(self) -> int:
        self._ballot_round += 1
        return self._ballot_round * len(self.group) + self.rank + 1

    def _try_become_leader(self) -> Generator:
        cfg = self.config
        ballot = self._next_ballot()
        if ballot <= self.promised_ballot:
            self._ballot_round = self.promised_ballot // len(self.group) + 1
            ballot = self._next_ballot()
        self.promised_ballot = ballot
        self.prepare_rounds += 1
        payload = {"ballot": ballot, "proposer": self.id, "commit_floor": self.commit_index}
        merged: Dict[int, Tuple[int, KvOp]] = {
            slot: value
            for slot, value in self.accepted.items()
            if slot > self.commit_index
        }
        if self.peers:
            call = QuorumCall(
                self.ep,
                self.peers,
                "paxos_prepare",
                payload,
                size_bytes=64,
                quorum=self.majority - 1,
                classify=lambda ev: bool(ev.reply.get("ok")),
                discard_on_quorum=cfg.discard_on_quorum,
                name=f"{self.id}:prepare@{ballot}",
            )
            yield call.wait(timeout_ms=cfg.prepare_timeout_ms)
            for rpc in call.calls:
                if rpc.ok and isinstance(rpc.reply, dict):
                    if not rpc.reply.get("ok"):
                        self._demote(rpc.reply.get("promised", 0), None)
                    for slot, (b, op) in rpc.reply.get("accepted", {}).items():
                        slot = int(slot)
                        held = merged.get(slot)
                        if held is None or b > held[0]:
                            merged[slot] = (b, tuple(op))
            if not call.event.ready() or self.promised_ballot > ballot:
                return  # lost the round; retry after a fresh timeout
        self._assume_leadership(ballot, merged)

    def _assume_leadership(self, ballot: int, merged: Dict[int, Tuple[int, KvOp]]) -> None:
        self.is_leader = True
        self.ballot = ballot
        self.leader_hint = self.id
        self.became_leader += 1
        self._peer_ack = {peer: 0 for peer in self.peers}
        self._repairing = set()
        # Adopt the highest-ballot accepted values; fill holes with noops.
        top = max(merged) if merged else self.commit_index
        for slot in range(self.commit_index + 1, top + 1):
            _b, op = merged.get(slot, (0, ("noop",)))
            self.accepted[slot] = (ballot, op)
        self.contiguous_accepted = max(self.contiguous_accepted, top)
        self._recompute_contiguous()
        self._next_slot = top + 1
        self.rt.spawn(self._proposer_loop(ballot), name=f"{self.id}:proposer@{ballot}")
        if self.peers:
            self.rt.spawn(self._commit_beacon(ballot), name=f"{self.id}:beacon@{ballot}")

    def _on_prepare(self, payload: Dict[str, Any], src: str) -> Generator:
        yield self.rt.compute(0.02, name="prepare")
        ballot = payload["ballot"]
        if ballot > self.promised_ballot:
            self.promised_ballot = ballot
            self.leader_hint = payload["proposer"]
            self._poke_heartbeat()
            suffix = {
                slot: value
                for slot, value in self.accepted.items()
                if slot > payload["commit_floor"]
            }
            return {"ok": True, "accepted": suffix, "commit": self.commit_index}
        return {"ok": False, "promised": self.promised_ballot}

    # ==================================================================
    # Phase 2: Accept (the batch path)
    # ==================================================================
    def _proposer_loop(self, ballot: int) -> Generator:
        cfg = self.config
        # First, re-commit anything adopted from the prepare round.
        recovered = [
            (slot, self.accepted[slot][1])
            for slot in range(self.commit_index + 1, self._next_slot)
        ]
        if recovered:
            committed = yield from self._accept_round(ballot, recovered)
            if not committed:
                return
        while self._leading(ballot):
            if not self._pending_ops:
                self._pending_signal = ValueEvent(name=f"{self.id}:pending")
                yield self._pending_signal.wait(timeout_ms=cfg.heartbeat_interval_ms)
                if not self._pending_ops:
                    continue
            batch: List[_PendingOp] = []
            while self._pending_ops and len(batch) < cfg.batch_max_entries:
                batch.append(self._pending_ops.popleft())
            slotted = []
            for pending in batch:
                slot = self._next_slot
                self._next_slot += 1
                self.accepted[slot] = (ballot, pending.op)
                self._completions[slot] = pending.done
                slotted.append((slot, pending.op))
            self._recompute_contiguous()
            build = cfg.accept_base_cost_ms + (
                len(slotted) * cfg.replicate_entry_cost_ms * (1 + len(self.peers))
            )
            yield self.rt.compute(build, name="accept-build")
            committed = yield from self._accept_round(ballot, slotted)
            if not committed:
                for pending in batch:
                    if not pending.done.ready():
                        pending.done.set(
                            {"ok": False, "redirect": self.leader_hint}, now=self.rt.now
                        )
                return

    def _accept_round(self, ballot: int, slotted: List[Tuple[int, KvOp]]) -> Generator:
        """One Accept broadcast; returns True once a majority accepted."""
        cfg = self.config
        payload = {
            "ballot": ballot,
            "proposer": self.id,
            "slots": slotted,
            "commit": self.commit_index,
        }
        size = 64 + sum(16 + sum(len(str(p)) for p in op) for _s, op in slotted)
        # Local durability: the proposer is an acceptor too.
        self.node.wal.append(size)
        local = self.node.wal.sync()
        quorum = QuorumEvent(
            self.majority,
            n_total=len(self.group),
            classify=self._classify_accept,
            name=f"{self.id}:accept@{slotted[0][0]}-{slotted[-1][0]}",
        )
        quorum.add(local)
        rpcs = []
        for peer in self.peers:
            rpc = self.ep.call(peer, "paxos_accept", payload, size_bytes=size)
            rpc.subscribe(lambda ev, _p=peer, _b=ballot: self._on_accept_reply(_p, ev, _b))
            rpcs.append(rpc)
            quorum.add(rpc)
        if cfg.discard_on_quorum:
            quorum.subscribe(
                lambda q: [
                    rpc.cancel_send()
                    for rpc in rpcs
                    if not rpc.ready() and rpc.cancel_send is not None
                ]
            )
        stalls = 0
        yield quorum.wait(timeout_ms=cfg.accept_timeout_ms)
        while not quorum.ready() and self._leading(ballot):
            for peer in self.peers:
                if self._peer_ack.get(peer, 0) < slotted[-1][0]:
                    self._ensure_repair(peer, ballot)
            yield quorum.wait(timeout_ms=cfg.accept_timeout_ms)
            stalls += 1
            if stalls > 40:
                return False
        if not self._leading(ballot):
            return False
        last_slot = slotted[-1][0]
        self.commit_index = max(self.commit_index, last_slot)
        self.batches_committed += 1
        yield from self._apply_committed()
        return True

    def _classify_accept(self, child) -> bool:
        if isinstance(child, RpcEvent):
            return child.ok and bool(child.reply.get("ok"))
        return True  # the local WAL sync

    def _on_accept_reply(self, peer: str, rpc: RpcEvent, ballot: int) -> None:
        if not rpc.ok or not isinstance(rpc.reply, dict):
            self._ensure_repair(peer, ballot)
            return
        reply = rpc.reply
        if not reply.get("ok"):
            self._demote(reply.get("promised", 0), None)
            return
        ack = reply.get("ack", 0)
        if ack > self._peer_ack.get(peer, 0):
            self._peer_ack[peer] = ack

    def _on_accept(self, payload: Dict[str, Any], src: str) -> Generator:
        cfg = self.config
        ballot = payload["ballot"]
        if ballot < self.promised_ballot:
            yield self.rt.compute(0.01, name="accept-reject")
            return {"ok": False, "promised": self.promised_ballot}
        self.promised_ballot = ballot
        self.leader_hint = payload["proposer"]
        self._poke_heartbeat()
        slots = payload["slots"]
        yield self.rt.compute(
            cfg.accept_base_cost_ms + cfg.accept_entry_cost_ms * len(slots),
            name="accept",
        )
        changed_bytes = 0
        for slot, op in slots:
            held = self.accepted.get(slot)
            if held is None or held[0] <= ballot:
                self.accepted[slot] = (ballot, tuple(op))
                changed_bytes += 16 + sum(len(str(part)) for part in op)
        self._recompute_contiguous()
        if changed_bytes:
            self.node.wal.append(changed_bytes)
            sync = self.node.wal.sync()
            yield sync.wait()
        yield from self._learn(payload["commit"])
        return {"ok": True, "ack": self.contiguous_accepted}

    # ==================================================================
    # Commit / learn
    # ==================================================================
    def _commit_beacon(self, ballot: int) -> Generator:
        cfg = self.config
        while self._leading(ballot):
            for peer in self.peers:
                self.ep.notify(
                    peer,
                    "paxos_commit",
                    {"ballot": ballot, "proposer": self.id, "commit": self.commit_index},
                    size_bytes=32,
                )
            yield self.rt.sleep(cfg.heartbeat_interval_ms)

    def _on_commit(self, payload: Dict[str, Any], src: str) -> Generator:
        if payload["ballot"] < self.promised_ballot:
            return None
        self.promised_ballot = payload["ballot"]
        self.leader_hint = payload["proposer"]
        self._poke_heartbeat()
        yield from self._learn(payload["commit"])
        return None

    def _learn(self, leader_commit: int) -> Generator:
        target = min(leader_commit, self.contiguous_accepted)
        if target > self.commit_index:
            self.commit_index = target
        yield from self._apply_committed()

    def _apply_committed(self) -> Generator:
        if self._applying:
            return
        self._applying = True
        try:
            while self.last_applied < self.commit_index:
                take = min(self.commit_index - self.last_applied, 128)
                yield self.rt.compute(take * self.config.apply_cost_ms, name="apply")
                for _ in range(take):
                    self.last_applied += 1
                    _ballot, op = self.accepted[self.last_applied]
                    result = self.kv.apply(op)
                    done = self._completions.pop(self.last_applied, None)
                    if done is not None and not done.ready():
                        done.set({"ok": True, "result": result}, now=self.rt.now)
        finally:
            self._applying = False

    def _recompute_contiguous(self) -> None:
        slot = self.contiguous_accepted
        while (slot + 1) in self.accepted:
            slot += 1
        self.contiguous_accepted = slot

    # ==================================================================
    # Repair: fill holes at lagging acceptors
    # ==================================================================
    def _ensure_repair(self, peer: str, ballot: int) -> None:
        if peer in self._repairing or not self._leading(ballot):
            return
        self._repairing.add(peer)
        self.repairs_started += 1
        self.rt.spawn(
            self._repair_loop(peer, ballot),
            name=f"{self.id}:repair:{peer}",
            dedication=peer,
        )

    def _repair_loop(self, peer: str, ballot: int) -> Generator:
        cfg = self.config
        try:
            while self._leading(ballot) and self._peer_ack.get(peer, 0) < self.commit_index:
                start = self._peer_ack.get(peer, 0) + 1
                end = min(self.commit_index, start + cfg.batch_max_entries - 1)
                slotted = [
                    (slot, self.accepted[slot][1])
                    for slot in range(start, end + 1)
                    if slot in self.accepted
                ]
                if not slotted:
                    return
                payload = {
                    "ballot": ballot,
                    "proposer": self.id,
                    "slots": slotted,
                    "commit": self.commit_index,
                }
                size = 64 + sum(16 + sum(len(str(p)) for p in op) for _s, op in slotted)
                rpc = self.ep.call(peer, "paxos_accept", payload, size_bytes=size)
                rpc.subscribe(lambda ev, _p=peer, _b=ballot: self._on_accept_reply(_p, ev, _b))
                result = yield rpc.wait(timeout_ms=cfg.accept_timeout_ms)
                if result.timed_out or not rpc.ok:
                    yield self.rt.sleep(cfg.heartbeat_interval_ms)
        finally:
            self._repairing.discard(peer)

    # ==================================================================
    # Clients
    # ==================================================================
    def _on_client_request(self, payload: Dict[str, Any], src: str) -> Generator:
        cfg = self.config
        if not self.is_leader:
            return {"ok": False, "redirect": self.leader_hint}
        yield self.rt.compute(cfg.client_op_cost_ms, name="client-op")
        if not self.is_leader:
            return {"ok": False, "redirect": self.leader_hint}
        done = ValueEvent(name=f"{self.id}:commit-wait", source=self.id)
        self._pending_ops.append(_PendingOp(payload["op"], done))
        if self._pending_signal is not None and not self._pending_signal.ready():
            self._pending_signal.set(True, now=self.rt.now)
        result = yield done.wait(timeout_ms=cfg.client_commit_timeout_ms)
        if result.timed_out:
            return {"ok": False, "redirect": None}
        return done.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "leader" if self.is_leader else "acceptor"
        return (
            f"<PaxosNode {self.id} {role} ballot={self.ballot or self.promised_ballot} "
            f"commit={self.commit_index}>"
        )
