"""Multi-Paxos on DepFast — the §2.3 spaghetti example, unshredded.

§2.3: "Think about a Paxos system, for each request that goes through the
3 phases (Prepare/Accept/Commit) of Paxos, its code will at least be
shredded into 3 callbacks. If this is a 5-replica system, the callbacks
will be executed 15 times."

This package writes that same protocol as DepFast coroutines instead: the
Prepare quorum and each batch's Accept quorum are single ``QuorumEvent``
waits, commit/learn is a notification, and the entire request path reads
top-to-bottom in :meth:`~repro.paxos.node.PaxosNode._proposer_loop`. It
also demonstrates §4's claim that "the design of DepFast is generic and
is not specific to any distributed protocols": the same runtime, events,
network, fault injector, workload driver and trace verifier host Raft
(:mod:`repro.raft`) and Paxos unchanged.
"""

from repro.paxos.config import PaxosConfig
from repro.paxos.node import PaxosNode
from repro.paxos.service import deploy_paxos, find_paxos_leader

__all__ = ["PaxosConfig", "PaxosNode", "deploy_paxos", "find_paxos_leader"]
