"""Multi-Paxos tuning knobs (costs matched to RaftConfig for fairness)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class PaxosConfig:
    heartbeat_interval_ms: float = 100.0
    election_timeout_min_ms: float = 1200.0
    election_timeout_max_ms: float = 2400.0
    prepare_timeout_ms: float = 500.0
    accept_timeout_ms: float = 500.0
    client_commit_timeout_ms: float = 3000.0

    batch_max_entries: int = 64

    discard_on_quorum: bool = True

    client_op_cost_ms: float = 0.45
    accept_base_cost_ms: float = 0.05
    accept_entry_cost_ms: float = 0.02
    apply_cost_ms: float = 0.06
    replicate_entry_cost_ms: float = 0.01

    preferred_leader: Optional[str] = None

    def __post_init__(self) -> None:
        if self.election_timeout_min_ms > self.election_timeout_max_ms:
            raise ValueError("election timeout min > max")
        if self.batch_max_entries < 1:
            raise ValueError("batch size must be >= 1")
