"""Deployment helpers for Multi-Paxos groups."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.cluster import Cluster
from repro.cluster.node import NodeSpec
from repro.paxos.config import PaxosConfig
from repro.paxos.node import PaxosNode
from repro.raft.service import depfast_node_spec


def deploy_paxos(
    cluster: Cluster,
    group: List[str],
    config: Optional[PaxosConfig] = None,
    spec: Optional[NodeSpec] = None,
) -> Dict[str, PaxosNode]:
    """Create and start one Multi-Paxos group on the cluster."""
    if len(group) % 2 == 0:
        raise ValueError(f"group size must be odd, got {len(group)}")
    config = config or PaxosConfig(preferred_leader=group[0])
    nodes: Dict[str, PaxosNode] = {}
    for node_id in group:
        node = cluster.add_node(node_id, spec=spec or depfast_node_spec())
        nodes[node_id] = PaxosNode(
            node, group, config=config, rng=cluster.rng.stream(f"paxos:{node_id}")
        )
    for paxos_node in nodes.values():
        paxos_node.start()
    return nodes


def find_paxos_leader(nodes: Dict[str, PaxosNode]) -> Optional[PaxosNode]:
    leaders = [n for n in nodes.values() if n.is_leader and not n.node.crashed]
    if not leaders:
        return None
    return max(leaders, key=lambda n: n.ballot)


def wait_for_paxos_leader(
    cluster: Cluster,
    nodes: Dict[str, PaxosNode],
    deadline_ms: float = 10_000.0,
    step_ms: float = 50.0,
) -> PaxosNode:
    while cluster.kernel.now < deadline_ms:
        leader = find_paxos_leader(nodes)
        if leader is not None:
            return leader
        cluster.run(cluster.kernel.now + step_ms)
    leader = find_paxos_leader(nodes)
    if leader is None:
        raise RuntimeError(f"no paxos leader within {deadline_ms}ms")
    return leader
