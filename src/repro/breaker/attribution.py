"""Per-resource fault attribution over tracer trace points.

The link scorer (:mod:`repro.detector.scoring`) answers "which *peer*
looks slow from here?" — but a suspect peer can be slow for two very
different reasons, and the right mitigation differs:

* **disk-slow** inflates the node's *local fsync* trace points (the WAL
  reports every real flush) while its peer RTTs stay clean;
* **link-slow** inflates the RTTs its callers observe while its fsync
  latencies stay clean.

:class:`DiskAttributor` is the disk half: a streaming per-node fsync
latency EWMA compared against the healthiest *other* node's EWMA (the
replicas of one group flush near-identical group commits, so cross-node
comparison is meaningful), with the same windowed hysteresis discipline
as the link scorer. :func:`classify_suspects` then merges both signals
into ``(node, resource)`` tags, ``resource ∈ {"disk", "link:<caller>"}``:
the disk verdict wins for a node whose own device is dragging (tripping
its breaker fixes the cause; demoting it would only hide it), and link
verdicts cover the rest.

Pure arithmetic over the deterministic trace stream — replays are
bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.detector.scoring import PeerHealth, SlownessScorer
from repro.trace.tracepoints import Tracer


@dataclass
class AttributionConfig:
    # EWMA smoothing for fsync latency samples.
    ewma_alpha: float = 0.2
    # A node's disk is suspicious when its fsync EWMA exceeds this
    # multiple of the healthiest other node's EWMA ...
    fsync_factor: float = 3.0
    # ... and is above this absolute floor (a 0.2ms-vs-0.05ms ratio is
    # noise, not a fail-slow disk).
    abs_floor_ms: float = 2.0
    # Minimum fsync samples on a node before it can be judged.
    min_samples: int = 5
    # Minimum judged *other* nodes for the cross-node baseline (the same
    # single-peer degeneracy the link scorer guards against: with no
    # healthy reference the ratio pins to 1).
    min_baseline_nodes: int = 1
    # Hysteresis: consecutive suspicious windows to flag / healthy to clear.
    suspect_windows: int = 2
    clear_windows: int = 3


class DiskScore:
    """Streaming fsync statistics for one node."""

    __slots__ = ("node", "fsync_ewma_ms", "samples", "last_sample_at")

    def __init__(self, node: str):
        self.node = node
        self.fsync_ewma_ms: Optional[float] = None
        self.samples = 0
        self.last_sample_at: Optional[float] = None

    def observe(self, latency_ms: float, now: float, alpha: float) -> None:
        self.samples += 1
        self.last_sample_at = now
        if self.fsync_ewma_ms is None:
            self.fsync_ewma_ms = latency_ms
        else:
            self.fsync_ewma_ms += alpha * (latency_ms - self.fsync_ewma_ms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ewma = f"{self.fsync_ewma_ms:.2f}ms" if self.fsync_ewma_ms is not None else "-"
        return f"<DiskScore {self.node} fsync~{ewma} n={self.samples}>"


@dataclass
class DiskTransition:
    """One hysteresis edge: a node's disk crossed into/out of suspicion."""

    node: str
    state: PeerHealth
    score: float
    at: float


@dataclass(frozen=True)
class Suspect:
    """One attributed verdict: which node, and which of its resources."""

    node: str
    resource: str  # "disk" | "link:<caller>"


class DiskAttributor:
    """Live per-node disk scoring off the tracer's fsync trace points."""

    def __init__(self, tracer: Tracer, config: Optional[AttributionConfig] = None):
        self.config = config or AttributionConfig()
        self.stats: Dict[str, DiskScore] = {}
        self.windows_rolled = 0
        self.transitions: List[DiskTransition] = []
        self._state: Dict[str, PeerHealth] = {}
        self._bad_streak: Dict[str, int] = {}
        self._good_streak: Dict[str, int] = {}
        # node -> issue times of fsyncs currently on the platter (FIFO:
        # one disk queue per node, completions come back in issue order).
        self._inflight: Dict[str, List[float]] = {}
        self.censored_samples = 0
        tracer.add_disk_listener(self._on_fsync)
        tracer.add_fsync_begin_listener(self._on_fsync_begin)
        tracer.add_fsync_abort_listener(self._on_fsync_abort)

    def _stat(self, node: str) -> DiskScore:
        stat = self.stats.get(node)
        if stat is None:
            stat = DiskScore(node)
            self.stats[node] = stat
        return stat

    def _on_fsync(self, node: str, n_bytes: int, latency_ms: float, now: float) -> None:
        queue = self._inflight.get(node)
        if queue:
            queue.pop(0)
        self._stat(node).observe(latency_ms, now, self.config.ewma_alpha)

    def _on_fsync_begin(self, node: str, n_bytes: int, now: float) -> None:
        self._inflight.setdefault(node, []).append(now)

    def _on_fsync_abort(self, node: str, now: float) -> None:
        # The node's WAL retired (crash): its in-flight fsyncs will never
        # complete, so their issue times must not age into suspicion.
        self._inflight.pop(node, None)

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def score(self, node: str) -> float:
        """Instantaneous disk badness: >= 1.0 means suspicious right now."""
        cfg = self.config
        stat = self.stats.get(node)
        if stat is None or stat.samples < cfg.min_samples or stat.fsync_ewma_ms is None:
            return 0.0
        if stat.fsync_ewma_ms < cfg.abs_floor_ms:
            return 0.0
        others = [
            other.fsync_ewma_ms
            for other_node, other in self.stats.items()
            if other_node != node
            and other.samples >= cfg.min_samples
            and other.fsync_ewma_ms is not None
        ]
        if len(others) < cfg.min_baseline_nodes:
            return 0.0
        baseline = min(others)
        if baseline <= 0:
            return 0.0
        return (stat.fsync_ewma_ms / baseline) / cfg.fsync_factor

    def state(self, node: str) -> PeerHealth:
        return self._state.get(node, PeerHealth.HEALTHY)

    def suspects(self) -> List[str]:
        return sorted(
            node
            for node, state in self._state.items()
            if state == PeerHealth.SUSPECT
        )

    def roll_window(self, now: float) -> List[DiskTransition]:
        """Close one check window: update hysteresis on every judged node."""
        cfg = self.config
        self.windows_rolled += 1
        # Censored sampling: a stalled disk is precisely the one that
        # stops delivering completion latencies (its one group-commit
        # fsync just sits there), so detection would starve exactly when
        # it matters. The age of the oldest in-flight fsync is a lower
        # bound on its eventual latency — fold it in whenever it already
        # exceeds what the EWMA believes. Healthy disks roll windows with
        # young in-flight fsyncs and are never touched by this.
        for node in sorted(self._inflight):
            queue = self._inflight[node]
            if not queue:
                continue
            age = now - queue[0]
            stat = self._stat(node)
            if age >= cfg.abs_floor_ms and (
                stat.fsync_ewma_ms is None or age > stat.fsync_ewma_ms
            ):
                stat.observe(age, now, cfg.ewma_alpha)
                self.censored_samples += 1
        edges: List[DiskTransition] = []
        for node in sorted(self.stats):
            value = self.score(node)
            state = self._state.get(node, PeerHealth.HEALTHY)
            if value >= 1.0:
                self._bad_streak[node] = self._bad_streak.get(node, 0) + 1
                self._good_streak[node] = 0
            else:
                self._good_streak[node] = self._good_streak.get(node, 0) + 1
                self._bad_streak[node] = 0
            if state == PeerHealth.HEALTHY:
                if self._bad_streak.get(node, 0) >= cfg.suspect_windows:
                    self._state[node] = PeerHealth.SUSPECT
                    edges.append(DiskTransition(node, PeerHealth.SUSPECT, value, now))
            else:
                if self._good_streak.get(node, 0) >= cfg.clear_windows:
                    self._state[node] = PeerHealth.HEALTHY
                    edges.append(DiskTransition(node, PeerHealth.HEALTHY, value, now))
        self.transitions.extend(edges)
        return edges

    def first_suspected_at(self) -> Optional[float]:
        times = [
            transition.at
            for transition in self.transitions
            if transition.state == PeerHealth.SUSPECT
        ]
        return min(times) if times else None


def classify_suspects(
    scorer: SlownessScorer, disks: DiskAttributor
) -> List[Suspect]:
    """Merge link and disk verdicts into per-resource suspect tags.

    A node whose disk is flagged gets exactly one ``(node, "disk")`` tag —
    its inflated RTT-from-callers symptoms (slow acks are slow replies)
    are attributed to the disk, not the links. Link-SUSPECT verdicts on
    nodes with healthy disks surface as ``(peer, "link:<caller>")``.
    """
    suspects: List[Suspect] = []
    disk_suspects = set(disks.suspects())
    for node in sorted(disk_suspects):
        suspects.append(Suspect(node, "disk"))
    for (caller, peer), state in sorted(scorer._state.items()):
        if state == PeerHealth.SUSPECT and peer not in disk_suspects:
            suspects.append(Suspect(peer, f"link:{caller}"))
    return suspects
