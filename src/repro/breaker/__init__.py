"""Circuit-breaking a fail-slow disk onto a write-behind WAL path.

Two halves close the disk side of the §5 mitigation loop:

* :mod:`repro.breaker.attribution` — per-resource fault attribution:
  disk-slow inflates local fsync trace points but not peer RTTs, so a
  classifier over the tracer's streams tags each suspect ``(node,
  resource)`` instead of today's link-only scores.
* :mod:`repro.breaker.write_behind` — the mitigation itself: a WAL whose
  fsyncs can be diverted to an in-memory write-behind queue with bounded
  staleness while the disk is sick, acking immediately and draining
  through the real device as it recovers.

The :class:`~repro.detector.mitigation.MitigationController` wires them
together (trip on disk suspicion, release after probation).
"""

from repro.breaker.attribution import (
    AttributionConfig,
    DiskAttributor,
    DiskTransition,
    Suspect,
    classify_suspects,
)
from repro.breaker.write_behind import (
    BreakerConfig,
    BreakerState,
    CircuitBreakerWal,
    install_breaker_wals,
)

__all__ = [
    "AttributionConfig",
    "BreakerConfig",
    "BreakerState",
    "CircuitBreakerWal",
    "DiskAttributor",
    "DiskTransition",
    "Suspect",
    "classify_suspects",
    "install_breaker_wals",
]
