"""Write-behind circuit breaker for the WAL.

When a node's *disk* (not its links) fails slow, every fsync on the ack
path drags the whole replica: a follower cannot acknowledge AppendEntries
until the group-commit flush clears the crawling device, so the quorum
that includes it crawls too. The circuit-breaker trade from the
resilience-patterns literature applies cleanly here because Raft already
tolerates a minority losing unacked writes: while the breaker is tripped
the node acknowledges from an **in-memory write-behind queue** — local
durability is deliberately given up, bounded by a staleness budget — and
the *group* still guarantees majority persistence because the other
replicas keep fsyncing for real.

States:

``CLOSED``
    Normal operation; every ``sync`` is a real group-commit fsync. The
    returned ack is a *proxy* for the fsync completion, so a later trip
    can release it early: by trip time the backlog already sitting in
    the sick device's FIFO is what dominates recovery (seconds of dead
    throughput per second of trip latency), and those bytes are in a
    strictly stronger position than the memory queue — they are already
    on the disk and will land as it drains. Durability bookkeeping
    (``on_durable``) still follows the real fsync.
``OPEN``
    Tripped. Acks still waiting on in-flight fsyncs fire immediately
    (see above); ``sync`` captures the buffered bytes into the queue and
    returns a pre-completed ack immediately. ``on_durable`` callbacks are
    *held* with their queue slot and fire only when a drain fsync later
    pushes those bytes through the real disk — so durability bookkeeping
    (and hence crash recovery) stays honest: a reboot while tripped loses
    the queue. A kernel timer trickle-drains the queue head through the
    device every ``probe_interval_ms``; these probe fsyncs double as the
    health samples attribution needs to notice recovery (an absorbed sync
    produces no trace point). If absorbing a sync would exceed
    ``max_queued_bytes`` or hold bytes older than ``max_lag_ms``, the
    breaker **passes through** instead: the whole queue plus the new
    bytes go down in one real fsync and the caller waits — natural
    backpressure at the staleness bound.
``DRAINING``
    Released after probation: one fast flush of the remaining queue; new
    syncs go to the real disk behind it (the device queue is FIFO, so
    ordering holds). Back to ``CLOSED`` when the flush lands.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional, Tuple

from repro.events.base import Event
from repro.storage.wal import WriteAheadLog


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    DRAINING = "draining"


@dataclass
class BreakerConfig:
    # Staleness budget: absorbing stops (passthrough backpressure starts)
    # when the queue would exceed either bound.
    max_queued_bytes: int = 64 * 1024 * 1024
    max_lag_ms: float = 30_000.0
    # Trickle-drain cadence while OPEN. Each tick pushes at most
    # ``probe_max_bytes`` of queue head through the real disk (one fsync
    # in flight at a time); with an empty queue it still issues a
    # barrier-only probe so health samples keep flowing.
    probe_interval_ms: float = 100.0
    probe_max_bytes: int = 256 * 1024


class CircuitBreakerWal(WriteAheadLog):
    """A WAL whose fsyncs can be circuit-broken onto a write-behind queue."""

    def __init__(
        self,
        io,
        name: str = "wal",
        node: Optional[str] = None,
        tracer=None,
        config: Optional[BreakerConfig] = None,
    ):
        super().__init__(io, name=name, node=node, tracer=tracer)
        self.config = config or BreakerConfig()
        self.state = BreakerState.CLOSED
        # FIFO of absorbed group commits: (n_bytes, enqueued_at, on_durable).
        self._queue: Deque[Tuple[int, float, Optional[Callable[[], None]]]] = deque()
        self.queued_bytes = 0
        # Proxy acks for real fsyncs still in flight (trip releases them).
        self._pending_acks: list = []
        self._drain_inflight = False
        self._probe_armed = False
        self._retired = False
        # Telemetry.
        self.trips = 0
        self.releases = 0
        self.absorbed_syncs = 0
        self.passthrough_syncs = 0
        self.early_acks_on_trip = 0
        self.probe_fsyncs = 0
        self.queued_bytes_hwm = 0
        self.lag_ms_hwm = 0.0
        self.dropped_entries_on_retire = 0
        self.dropped_bytes_on_retire = 0

    # ------------------------------------------------------------------
    # Breaker control (driven by the mitigation controller)
    # ------------------------------------------------------------------
    def trip(self, now: Optional[float] = None) -> None:
        """Open the breaker: acknowledge from memory, trickle-drain.

        Acks parked behind fsyncs already in the device FIFO fire now —
        their bytes are committed to the disk queue and will land as it
        drains, so waiting on the sick device buys nothing but coupling.
        """
        if self._retired or self.state == BreakerState.OPEN:
            return
        self.state = BreakerState.OPEN
        self.trips += 1
        when = self._now()
        for proxy in self._pending_acks:
            if not proxy.ready():
                self.early_acks_on_trip += 1
                proxy.trigger(when)
        self._pending_acks.clear()
        self._arm_probe()

    def release(self, now: Optional[float] = None) -> None:
        """Probation passed: fast-drain the queue, then close."""
        if self._retired or self.state != BreakerState.OPEN:
            return
        self.state = BreakerState.DRAINING
        self.releases += 1
        if not self._queue:
            self.state = BreakerState.CLOSED
            return
        flushing, callbacks = self._take_queue(len(self._queue))

        def _drained() -> None:
            if self._retired:
                return
            for callback in callbacks:
                callback()
            if self.state == BreakerState.DRAINING:
                self.state = BreakerState.CLOSED

        self._issue_fsync(flushing, _drained)

    def retire(self) -> None:
        """Process death: the queue dies unfsynced, timers go inert."""
        super().retire()
        self._retired = True
        self.dropped_entries_on_retire += len(self._queue)
        self.dropped_bytes_on_retire += self.queued_bytes
        self._queue.clear()
        self.queued_bytes = 0
        self._pending_acks.clear()  # their waiters died with the process
        self.state = BreakerState.CLOSED

    # ------------------------------------------------------------------
    # The sync path
    # ------------------------------------------------------------------
    def sync(self, on_durable: Optional[Callable[[], None]] = None) -> Event:
        if self.state != BreakerState.OPEN:
            # CLOSED: real group commit. DRAINING: also real — the disk
            # queue is FIFO, so these land after the release flush. The
            # ack is proxied so a trip can release waiters early; the
            # on_durable callback stays on the real fsync.
            real = super().sync(on_durable)
            if real.ready():
                return real  # no-op sync: nothing was at stake
            proxy = Event(name=f"{self.name}:sync-proxy")
            self._pending_acks.append(proxy)

            def _landed(_ev, _proxy=proxy) -> None:
                if _proxy in self._pending_acks:
                    self._pending_acks.remove(_proxy)
                if not _proxy.ready():
                    _proxy.trigger(self._now())

            real.subscribe(_landed)
            return proxy
        flushing = self.buffered_bytes
        if flushing == 0:
            self.noop_syncs += 1
            ack = Event(name=f"{self.name}:sync-noop")
            ack.trigger(self._now())
            if on_durable is not None:
                # Nothing new buffered: previous syncs own their slots.
                on_durable()
            return ack
        self.buffered_bytes = 0
        self.syncs += 1
        now = self._now()
        if self._over_budget(flushing, now):
            # Staleness bound reached: flush everything queued plus this
            # sync for real; the caller waits (backpressure).
            self.passthrough_syncs += 1
            queued, callbacks = self._take_queue(len(self._queue))

            def _flushed(_on_durable=on_durable) -> None:
                for callback in callbacks:
                    callback()
                if _on_durable is not None:
                    _on_durable()

            return self._issue_fsync(queued + flushing, _flushed)
        # Absorb: ack now, fsync later.
        self.absorbed_syncs += 1
        self._queue.append((flushing, now, on_durable))
        self.queued_bytes += flushing
        if self.queued_bytes > self.queued_bytes_hwm:
            self.queued_bytes_hwm = self.queued_bytes
        self._note_lag(now)
        ack = Event(name=f"{self.name}:sync-absorbed")
        ack.trigger(now)
        return ack

    def _over_budget(self, incoming: int, now: float) -> bool:
        cfg = self.config
        if self.queued_bytes + incoming > cfg.max_queued_bytes:
            return True
        if self._queue and now - self._queue[0][1] > cfg.max_lag_ms:
            return True
        return False

    def oldest_lag_ms(self) -> float:
        if not self._queue:
            return 0.0
        return self._now() - self._queue[0][1]

    def _note_lag(self, now: float) -> None:
        if self._queue:
            lag = now - self._queue[0][1]
            if lag > self.lag_ms_hwm:
                self.lag_ms_hwm = lag

    def _take_queue(self, n_items: int) -> Tuple[int, list]:
        """Dequeue up to ``n_items`` head slots; their bytes go in flight."""
        flushing = 0
        callbacks = []
        for _ in range(min(n_items, len(self._queue))):
            n_bytes, _at, on_durable = self._queue.popleft()
            flushing += n_bytes
            if on_durable is not None:
                callbacks.append(on_durable)
        self.queued_bytes -= flushing
        return flushing, callbacks

    # ------------------------------------------------------------------
    # Probe drain: trickle the queue through the device while OPEN
    # ------------------------------------------------------------------
    def _arm_probe(self) -> None:
        if self._probe_armed or self._retired:
            return
        self._probe_armed = True
        self.io.disk.kernel.schedule(self.config.probe_interval_ms, self._probe_tick)

    def _probe_tick(self) -> None:
        self._probe_armed = False
        if self._retired or self.state != BreakerState.OPEN:
            return
        self._note_lag(self._now())
        if not self._drain_inflight:
            self._drain_inflight = True
            self.probe_fsyncs += 1
            if self._queue:
                # Head chunk: whole queue slots up to the probe budget
                # (always at least one, so a slot larger than the budget
                # cannot wedge the drain).
                n_items = 0
                taken = 0
                for n_bytes, _at, _cb in self._queue:
                    if n_items > 0 and taken + n_bytes > self.config.probe_max_bytes:
                        break
                    taken += n_bytes
                    n_items += 1
                flushing, callbacks = self._take_queue(n_items)
            else:
                # Empty queue: barrier-only probe, purely a health sample.
                flushing, callbacks = 0, []

            def _probe_done() -> None:
                self._drain_inflight = False
                if self._retired:
                    return  # the process died before observing the flush
                for callback in callbacks:
                    callback()

            self._issue_fsync(flushing, _probe_done)
        self._arm_probe()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CircuitBreakerWal {self.name} {self.state.value} "
            f"queued={self.queued_bytes}B x{len(self._queue)}>"
        )


def install_breaker_wals(
    cluster, node_ids, config: Optional[BreakerConfig] = None
) -> dict:
    """Swap the named nodes' WALs for circuit-breaker WALs.

    Call between deployment and workload start (the factory sticks across
    restarts). Returns the initial ``node_id -> CircuitBreakerWal`` map;
    after a restart, read ``cluster.node(id).wal`` for the live handle.
    """
    wals = {}
    for node_id in node_ids:
        node = cluster.node(node_id)

        def factory(n, _config=config) -> CircuitBreakerWal:
            return CircuitBreakerWal(
                n.runtime.io,
                name=f"{n.node_id}.wal",
                node=n.node_id,
                tracer=n._tracer,
                config=_config,
            )

        wals[node_id] = node.use_wal_factory(factory)
    return wals
