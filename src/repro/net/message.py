"""Wire messages.

A :class:`Message` is what travels on connections: RPC requests, RPC
replies and one-way notifications all share this envelope. ``size_bytes``
drives transfer time and buffer accounting; ``payload`` is an arbitrary
Python object (the simulation never serializes for real).
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

_msg_ids = itertools.count(1)

# Fixed per-message envelope overhead added to payload size.
HEADER_BYTES = 64


class Message:
    """One unit of network transfer."""

    __slots__ = (
        "msg_id",
        "src",
        "dst",
        "method",
        "payload",
        "size_bytes",
        "reply_to",
        "sent_at",
        "delivered_at",
        "hedge_group",
    )

    def __init__(
        self,
        src: str,
        dst: str,
        method: str,
        payload: Any = None,
        size_bytes: int = 0,
        reply_to: Optional[int] = None,
        hedge_group: Optional[tuple] = None,
    ):
        if size_bytes < 0:
            raise ValueError(f"negative message size {size_bytes}")
        self.msg_id = next(_msg_ids)
        self.src = src
        self.dst = dst
        self.method = method
        self.payload = payload
        self.size_bytes = size_bytes + HEADER_BYTES
        self.reply_to = reply_to
        self.sent_at: Optional[float] = None
        self.delivered_at: Optional[float] = None
        # Hedged/duplicated requests share a caller-unique group key so the
        # receiving endpoint can deduplicate copies and honor aborts.
        self.hedge_group = hedge_group

    @property
    def is_reply(self) -> bool:
        return self.reply_to is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = f"reply->{self.reply_to}" if self.is_reply else "request"
        return (
            f"<Message #{self.msg_id} {self.src}->{self.dst} "
            f"{self.method} {kind} {self.size_bytes}B>"
        )
