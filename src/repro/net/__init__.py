"""Simulated network substrate: links, connections, inboxes and RPC.

This is the "framework" side of the paper's framework/logic split (§2.3).
It models what matters for fail-slow propagation:

* per-connection **flow control** — a sender may only have ``window_bytes``
  outstanding toward a receiver; beyond that, messages queue in the
  sender's :class:`~repro.net.buffers.SendBuffer`. A fail-slow receiver
  drains its inbox slowly, acks slowly, and the sender's buffer grows —
  exactly the RethinkDB backlog root cause of §2.2;
* **send-buffer memory accounting** against the sender's
  :class:`~repro.sim.resources.MemoryResource`, so unbounded buffers can
  drive a leader out of memory;
* **quorum-aware broadcast** (:class:`~repro.net.rpc.QuorumCall`) — the
  framework knows a broadcast succeeds with a quorum of replies and can
  discard queued messages for slow connections once the quorum is in.
"""

from repro.net.buffers import BufferOverflowError, SendBuffer
from repro.net.inbox import Inbox
from repro.net.link import Link
from repro.net.message import Message
from repro.net.network import Connection, Network
from repro.net.rpc import QuorumCall, RpcEndpoint, RpcError, RpcProxy

__all__ = [
    "BufferOverflowError",
    "Connection",
    "Inbox",
    "Link",
    "Message",
    "Network",
    "QuorumCall",
    "RpcEndpoint",
    "RpcError",
    "RpcProxy",
    "SendBuffer",
]
