"""The network: endpoints, connections, flow control and delivery.

Model summary (per ordered node pair = one :class:`Connection`):

* a message occupies the connection's *flow-control window* from transmit
  until the receiver's dispatcher consumes it (TCP socket buffers + BDP);
* messages beyond the window queue in the sender's
  :class:`~repro.net.buffers.SendBuffer` (memory-accounted);
* transfer time = sender NIC delay + serialization at link bandwidth +
  propagation (+ jitter) + receiver NIC delay; serialization is pipelined
  per connection (a long message delays the next one's start);
* crashing a node drops its queued and in-flight traffic and instantly
  releases peers' windows (connection reset); :meth:`Network.restart`
  re-attaches a recovered process (fresh inbox, reset connections);
* the chaos fault model adds network **partitions** (ordered pairs of
  nodes whose traffic is silently dropped — symmetric or asymmetric) and
  probabilistic per-link **message loss**; both act at delivery time, so
  packets in flight when a partition starts are lost too.

The per-node NIC delay is where the Table 1 network-slow fault (+400 ms)
is injected.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, Optional, Set, Tuple

from repro.net.buffers import SendBuffer
from repro.net.inbox import Inbox
from repro.net.link import Link
from repro.net.message import Message
from repro.sim.kernel import Kernel
from repro.sim.metrics import MetricsRegistry
from repro.sim.resources import MemoryResource, NicResource

# Default flow-control window per connection, sized like an autotuned TCP
# buffer on a datacenter path. A receiver that consumes slowly (fail-slow
# CPU) fills it within a second or two of sustained traffic and then
# backpressures the sender into its application buffers.
DEFAULT_WINDOW_BYTES = 8 * 1024 * 1024


class _Endpoint:
    """Network-side record of one attached node."""

    __slots__ = ("node", "inbox", "nic", "memory", "buffer_limit", "crashed")

    def __init__(
        self,
        node: str,
        inbox: Inbox,
        nic: NicResource,
        memory: Optional[MemoryResource],
        buffer_limit: Optional[int],
    ):
        self.node = node
        self.inbox = inbox
        self.nic = nic
        self.memory = memory
        self.buffer_limit = buffer_limit
        self.crashed = False


class Connection:
    """One direction of traffic between an ordered pair of nodes."""

    def __init__(
        self,
        network: "Network",
        src: _Endpoint,
        dst: _Endpoint,
        link: Link,
        window_bytes: int = DEFAULT_WINDOW_BYTES,
    ):
        self.network = network
        self.src = src
        self.dst = dst
        self.link = link
        self.window_bytes = window_bytes
        self.in_flight = 0
        self.buffer = SendBuffer(
            src.node, dst.node, memory=src.memory, max_bytes=src.buffer_limit
        )
        self._tx_free_at = 0.0
        # Messages transmitted before this time are stale (their TCP
        # connection was reset by a crash/restart) and drop on delivery.
        self.reset_since = -1.0
        # One bound method reused for every flow-control ack instead of a
        # fresh closure per message (the ack path is the hottest allocation
        # site in the network layer).
        self._release_cb = self._release
        # Same-tick delivery batch: consecutive transmits that arrive at
        # the *same* virtual time share one kernel event. `_batch_seq` is
        # the kernel sequence number of that event; a merge is only legal
        # while no other event has been scheduled since (see _transmit).
        self._batch: Optional[list] = None
        self._batch_time = -1.0
        self._batch_seq = -1
        self.sent = 0
        self.delivered = 0
        self.discarded = 0
        self.dropped = 0  # partition / loss / reset drops

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, message: Message) -> None:
        """Transmit now if window allows, else queue in the send buffer.

        Raises :class:`~repro.net.buffers.BufferOverflowError` if this
        connection uses a bounded buffer and it is full.
        """
        message.sent_at = self.network.kernel.now
        if self.src.crashed:
            return  # a dead process sends nothing
        if self._window_admits(message.size_bytes) and not self.buffer:
            self._transmit(message)
        else:
            self.buffer.push(message)

    def discard(self, msg_id: int) -> bool:
        """Drop a still-buffered message (the quorum-aware optimization)."""
        dropped = self.buffer.discard(msg_id)
        if dropped:
            self.discarded += 1
        return dropped

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _transmit(self, message: Message) -> None:
        kernel = self.network.kernel
        self.in_flight += message.size_bytes
        self.sent += 1
        tx_start = max(kernel.now, self._tx_free_at)
        tx_end = tx_start + self.link.transfer_ms(message.size_bytes)
        self._tx_free_at = tx_end
        arrival = (
            tx_end
            + self.src.nic.delay_ms()
            + self.link.propagation_ms()
            + self.dst.nic.delay_ms()
        )
        # Merge into the pending delivery batch only when this message
        # arrives at exactly the batch's time AND nothing has been
        # scheduled since the batch's event: its unbatched sequence number
        # would sit directly behind the batch event at the same timestamp,
        # so executing it inside the batch preserves the exact global
        # (time, seq) order. Any intervening schedule could order between
        # them, so it invalidates the merge.
        batch = self._batch
        if (
            batch is not None
            and arrival == self._batch_time
            and kernel._seq == self._batch_seq
        ):
            batch.append(message)
            return
        batch = [message]
        self._batch = batch
        self._batch_time = arrival
        self._batch_seq = kernel.schedule_at(arrival, self._deliver_batch, batch).seq

    def _deliver_batch(self, batch: list) -> None:
        # The event owns its list; only clear the merge window if it is
        # still ours (a later transmit may have opened a new batch).
        if batch is self._batch:
            self._batch = None
        deliver = self._deliver
        for message in batch:
            deliver(message)

    def _deliver(self, message: Message) -> None:
        if self.dst.crashed or self.src.crashed:
            # Connection reset: the bytes are gone, window is released.
            self._release(message)
            return
        if message.sent_at is not None and message.sent_at < self.reset_since:
            # Sent on a connection that has since been reset (an endpoint
            # crashed and recovered): the segment belongs to a dead socket.
            self.dropped += 1
            self._release(message)
            return
        if self.network.drops_on_delivery(self.src.node, self.dst.node):
            # Partitioned link or probabilistic loss: silently dropped.
            self.dropped += 1
            self._release(message)
            return
        now = self.network.kernel.now
        message.delivered_at = now
        self.delivered += 1
        probe = self.network.delivery_probe
        if probe is not None:
            probe(now, message)
        self.dst.inbox.put(message, self._release_cb, message)

    def _release(self, message: Message) -> None:
        # max() guards against stale in-flight releases racing a restart's
        # accounting reset.
        self.in_flight = max(0, self.in_flight - message.size_bytes)
        self._pump()

    def _window_admits(self, size_bytes: int) -> bool:
        # Like TCP, an idle connection always admits one message even if it
        # exceeds the window, so oversized messages cannot deadlock.
        if self.in_flight == 0:
            return True
        return self.in_flight + size_bytes <= self.window_bytes

    def _pump(self) -> None:
        while self.buffer and not self.src.crashed:
            head_size = self.buffer._queue[0].size_bytes  # peek
            if not self._window_admits(head_size):
                return
            message = self.buffer.pop()
            if message is not None:
                self._transmit(message)

    def reset(self) -> None:
        """Drop all queued traffic and invalidate in-flight segments."""
        self.buffer.drain_all()
        self.reset_since = self.network.kernel.now
        self.in_flight = 0
        # Close the merge window: post-reset transmits start a new batch.
        # The already-scheduled batch event keeps its own list and its
        # messages are dropped individually by the reset_since check.
        self._batch = None


class Network:
    """Topology registry and the send entry point."""

    def __init__(self, kernel: Kernel, default_link: Optional[Link] = None):
        self.kernel = kernel
        self.default_link = default_link or Link()
        self.metrics = MetricsRegistry("net")
        self._messages = self.metrics.counter("messages")
        self._endpoints: Dict[str, _Endpoint] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self._connections: Dict[Tuple[str, str], Connection] = {}
        self._window_bytes = DEFAULT_WINDOW_BYTES
        # Chaos fault state: ordered pairs whose traffic is cut, and
        # per-ordered-pair probabilistic loss rates.
        self._blocked: Set[Tuple[str, str]] = set()
        self._loss_rates: Dict[Tuple[str, str], float] = {}
        self._loss_rng: Optional[random.Random] = None
        # Optional observation hook: called as probe(now, message) for every
        # successful delivery. Pure observation — installing it must not (and
        # does not) perturb a single virtual-time timestamp. The determinism
        # harness (repro.bench.determinism) hashes this stream.
        self.delivery_probe: Optional[Callable[[float, Message], None]] = None

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def attach(
        self,
        node: str,
        inbox: Inbox,
        nic: Optional[NicResource] = None,
        memory: Optional[MemoryResource] = None,
        buffer_limit: Optional[int] = None,
    ) -> None:
        """Register a node. ``buffer_limit=None`` means *unbounded* buffers."""
        if node in self._endpoints:
            raise ValueError(f"node {node!r} already attached")
        self._endpoints[node] = _Endpoint(
            node, inbox, nic or NicResource(), memory, buffer_limit
        )

    def set_link(self, src: str, dst: str, link: Link, symmetric: bool = True) -> None:
        self._links[(src, dst)] = link
        if symmetric:
            self._links[(dst, src)] = link

    def set_window_bytes(self, window_bytes: int) -> None:
        """Flow-control window for connections created after this call."""
        if window_bytes <= 0:
            raise ValueError("window must be positive")
        self._window_bytes = window_bytes

    def nic_of(self, node: str) -> NicResource:
        return self._require(node).nic

    def nodes(self) -> list:
        return sorted(self._endpoints)

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------
    def send(self, message: Message) -> None:
        """Send a message along the (src, dst) connection."""
        connection = self.connection(message.src, message.dst)
        self._messages.value += 1
        connection.send(message)

    def connection(self, src: str, dst: str) -> Connection:
        key = (src, dst)
        conn = self._connections.get(key)
        if conn is None:
            link = self._links.get(key, self.default_link)
            conn = Connection(
                self, self._require(src), self._require(dst), link, self._window_bytes
            )
            self._connections[key] = conn
        return conn

    def crash(self, node: str) -> None:
        """Mark a node dead: drops its traffic, resets peers' connections."""
        endpoint = self._require(node)
        endpoint.crashed = True
        for (src, dst), conn in self._connections.items():
            if src == node or dst == node:
                conn.reset()

    def restart(self, node: str, inbox: Inbox) -> None:
        """Re-attach a recovered process: fresh inbox, reset connections.

        Every connection touching the node is reset again at restart time,
        so segments sent by peers while the node was down (or by its dead
        predecessor process) can never be delivered to the new process.
        """
        endpoint = self._require(node)
        if not endpoint.crashed:
            raise ValueError(f"node {node!r} is not crashed")
        endpoint.crashed = False
        endpoint.inbox = inbox
        for (src, dst), conn in self._connections.items():
            if src == node or dst == node:
                conn.reset()

    def is_crashed(self, node: str) -> bool:
        return self._require(node).crashed

    # ------------------------------------------------------------------
    # Partitions and message loss (the chaos fault substrate)
    # ------------------------------------------------------------------
    def use_loss_rng(self, rng: random.Random) -> None:
        """Install the seeded RNG stream that loss decisions draw from."""
        self._loss_rng = rng

    def block(self, src: str, dst: str, symmetric: bool = True) -> None:
        """Cut traffic from ``src`` to ``dst`` (both ways if symmetric)."""
        self._require(src)
        self._require(dst)
        self._blocked.add((src, dst))
        if symmetric:
            self._blocked.add((dst, src))

    def unblock(self, src: str, dst: str, symmetric: bool = True) -> None:
        self._blocked.discard((src, dst))
        if symmetric:
            self._blocked.discard((dst, src))

    def partition(self, side_a: Iterable[str], side_b: Iterable[str]) -> None:
        """Cut every link between the two sides (symmetric partition)."""
        for a in side_a:
            for b in side_b:
                if a != b:
                    self.block(a, b, symmetric=True)

    def isolate(self, node: str) -> None:
        """Cut the node off from every other attached endpoint."""
        others = [peer for peer in self._endpoints if peer != node]
        self.partition([node], others)

    def heal(self) -> None:
        """Remove every partition (loss rates are cleared separately)."""
        self._blocked.clear()

    def is_blocked(self, src: str, dst: str) -> bool:
        return (src, dst) in self._blocked

    def partitioned_pairs(self) -> Set[Tuple[str, str]]:
        return set(self._blocked)

    def set_loss_rate(self, src: str, dst: str, rate: float, symmetric: bool = True) -> None:
        """Drop each ``src``→``dst`` message independently with ``rate``."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {rate}")
        pairs = [(src, dst), (dst, src)] if symmetric else [(src, dst)]
        for pair in pairs:
            if rate == 0.0:
                self._loss_rates.pop(pair, None)
            else:
                self._loss_rates[pair] = rate

    def clear_loss(self) -> None:
        self._loss_rates.clear()

    def drops_on_delivery(self, src: str, dst: str) -> bool:
        """Decide (at delivery time) whether this message is lost."""
        if (src, dst) in self._blocked:
            return True
        rate = self._loss_rates.get((src, dst))
        if rate:
            if self._loss_rng is None:
                raise RuntimeError(
                    "message loss configured but no loss RNG installed; "
                    "call Network.use_loss_rng(...) first"
                )
            return self._loss_rng.random() < rate
        return False

    def buffered_bytes_from(self, node: str) -> int:
        """Total send-buffer backlog at ``node`` (the §2.2 backlog metric)."""
        return sum(
            conn.buffer.bytes_queued
            for (src, _dst), conn in self._connections.items()
            if src == node
        )

    def _require(self, node: str) -> _Endpoint:
        endpoint = self._endpoints.get(node)
        if endpoint is None:
            raise ValueError(f"unknown node {node!r}")
        return endpoint
