"""The network: endpoints, connections, flow control and delivery.

Model summary (per ordered node pair = one :class:`Connection`):

* a message occupies the connection's *flow-control window* from transmit
  until the receiver's dispatcher consumes it (TCP socket buffers + BDP);
* messages beyond the window queue in the sender's
  :class:`~repro.net.buffers.SendBuffer` (memory-accounted);
* transfer time = sender NIC delay + serialization at link bandwidth +
  propagation (+ jitter) + receiver NIC delay; serialization is pipelined
  per connection (a long message delays the next one's start);
* crashing a node drops its queued and in-flight traffic and instantly
  releases peers' windows (connection reset).

The per-node NIC delay is where the Table 1 network-slow fault (+400 ms)
is injected.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.net.buffers import SendBuffer
from repro.net.inbox import Inbox
from repro.net.link import Link
from repro.net.message import Message
from repro.sim.kernel import Kernel
from repro.sim.metrics import MetricsRegistry
from repro.sim.resources import MemoryResource, NicResource

# Default flow-control window per connection, sized like an autotuned TCP
# buffer on a datacenter path. A receiver that consumes slowly (fail-slow
# CPU) fills it within a second or two of sustained traffic and then
# backpressures the sender into its application buffers.
DEFAULT_WINDOW_BYTES = 8 * 1024 * 1024


class _Endpoint:
    """Network-side record of one attached node."""

    __slots__ = ("node", "inbox", "nic", "memory", "buffer_limit", "crashed")

    def __init__(
        self,
        node: str,
        inbox: Inbox,
        nic: NicResource,
        memory: Optional[MemoryResource],
        buffer_limit: Optional[int],
    ):
        self.node = node
        self.inbox = inbox
        self.nic = nic
        self.memory = memory
        self.buffer_limit = buffer_limit
        self.crashed = False


class Connection:
    """One direction of traffic between an ordered pair of nodes."""

    def __init__(
        self,
        network: "Network",
        src: _Endpoint,
        dst: _Endpoint,
        link: Link,
        window_bytes: int = DEFAULT_WINDOW_BYTES,
    ):
        self.network = network
        self.src = src
        self.dst = dst
        self.link = link
        self.window_bytes = window_bytes
        self.in_flight = 0
        self.buffer = SendBuffer(
            src.node, dst.node, memory=src.memory, max_bytes=src.buffer_limit
        )
        self._tx_free_at = 0.0
        self.sent = 0
        self.delivered = 0
        self.discarded = 0

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, message: Message) -> None:
        """Transmit now if window allows, else queue in the send buffer.

        Raises :class:`~repro.net.buffers.BufferOverflowError` if this
        connection uses a bounded buffer and it is full.
        """
        message.sent_at = self.network.kernel.now
        if self.src.crashed:
            return  # a dead process sends nothing
        if self._window_admits(message.size_bytes) and not self.buffer:
            self._transmit(message)
        else:
            self.buffer.push(message)

    def discard(self, msg_id: int) -> bool:
        """Drop a still-buffered message (the quorum-aware optimization)."""
        dropped = self.buffer.discard(msg_id)
        if dropped:
            self.discarded += 1
        return dropped

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _transmit(self, message: Message) -> None:
        kernel = self.network.kernel
        self.in_flight += message.size_bytes
        self.sent += 1
        tx_start = max(kernel.now, self._tx_free_at)
        tx_end = tx_start + self.link.transfer_ms(message.size_bytes)
        self._tx_free_at = tx_end
        arrival = (
            tx_end
            + self.src.nic.delay_ms()
            + self.link.propagation_ms()
            + self.dst.nic.delay_ms()
        )
        kernel.schedule_at(arrival, self._deliver, message)

    def _deliver(self, message: Message) -> None:
        if self.dst.crashed or self.src.crashed:
            # Connection reset: the bytes are gone, window is released.
            self._release(message)
            return
        message.delivered_at = self.network.kernel.now
        self.delivered += 1
        self.dst.inbox.put(message, ack=lambda: self._release(message))

    def _release(self, message: Message) -> None:
        self.in_flight -= message.size_bytes
        self._pump()

    def _window_admits(self, size_bytes: int) -> bool:
        # Like TCP, an idle connection always admits one message even if it
        # exceeds the window, so oversized messages cannot deadlock.
        if self.in_flight == 0:
            return True
        return self.in_flight + size_bytes <= self.window_bytes

    def _pump(self) -> None:
        while self.buffer and not self.src.crashed:
            head_size = self.buffer._queue[0].size_bytes  # peek
            if not self._window_admits(head_size):
                return
            message = self.buffer.pop()
            if message is not None:
                self._transmit(message)

    def reset(self) -> None:
        """Drop all queued traffic (either side crashed)."""
        self.buffer.drain_all()


class Network:
    """Topology registry and the send entry point."""

    def __init__(self, kernel: Kernel, default_link: Optional[Link] = None):
        self.kernel = kernel
        self.default_link = default_link or Link()
        self.metrics = MetricsRegistry("net")
        self._endpoints: Dict[str, _Endpoint] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self._connections: Dict[Tuple[str, str], Connection] = {}
        self._window_bytes = DEFAULT_WINDOW_BYTES

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def attach(
        self,
        node: str,
        inbox: Inbox,
        nic: Optional[NicResource] = None,
        memory: Optional[MemoryResource] = None,
        buffer_limit: Optional[int] = None,
    ) -> None:
        """Register a node. ``buffer_limit=None`` means *unbounded* buffers."""
        if node in self._endpoints:
            raise ValueError(f"node {node!r} already attached")
        self._endpoints[node] = _Endpoint(
            node, inbox, nic or NicResource(), memory, buffer_limit
        )

    def set_link(self, src: str, dst: str, link: Link, symmetric: bool = True) -> None:
        self._links[(src, dst)] = link
        if symmetric:
            self._links[(dst, src)] = link

    def set_window_bytes(self, window_bytes: int) -> None:
        """Flow-control window for connections created after this call."""
        if window_bytes <= 0:
            raise ValueError("window must be positive")
        self._window_bytes = window_bytes

    def nic_of(self, node: str) -> NicResource:
        return self._require(node).nic

    def nodes(self) -> list:
        return sorted(self._endpoints)

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------
    def send(self, message: Message) -> None:
        """Send a message along the (src, dst) connection."""
        connection = self.connection(message.src, message.dst)
        self.metrics.counter("messages").inc()
        connection.send(message)

    def connection(self, src: str, dst: str) -> Connection:
        key = (src, dst)
        conn = self._connections.get(key)
        if conn is None:
            link = self._links.get(key, self.default_link)
            conn = Connection(
                self, self._require(src), self._require(dst), link, self._window_bytes
            )
            self._connections[key] = conn
        return conn

    def crash(self, node: str) -> None:
        """Mark a node dead: drops its traffic, resets peers' connections."""
        endpoint = self._require(node)
        endpoint.crashed = True
        for (src, dst), conn in self._connections.items():
            if src == node or dst == node:
                conn.reset()

    def is_crashed(self, node: str) -> bool:
        return self._require(node).crashed

    def buffered_bytes_from(self, node: str) -> int:
        """Total send-buffer backlog at ``node`` (the §2.2 backlog metric)."""
        return sum(
            conn.buffer.bytes_queued
            for (src, _dst), conn in self._connections.items()
            if src == node
        )

    def _require(self, node: str) -> _Endpoint:
        endpoint = self._endpoints.get(node)
        if endpoint is None:
            raise ValueError(f"unknown node {node!r}")
        return endpoint
