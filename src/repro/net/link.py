"""Point-to-point link parameters.

A link connects two nodes with a propagation delay, a serialization
bandwidth and optional jitter. The default models an intra-region cloud
network (sub-millisecond RTT, 1 Gbit/s-class throughput), matching the
paper's Azure deployment; the network-slow fault is applied at the *NIC*,
not here, since ``tc`` shapes the interface of one node.
"""

from __future__ import annotations

import random
from typing import Optional


class Link:
    """Delay/bandwidth description for one direction of a node pair."""

    def __init__(
        self,
        latency_ms: float = 0.25,
        bandwidth_mbps: float = 125.0,
        jitter_ms: float = 0.0,
        rng: Optional[random.Random] = None,
    ):
        if latency_ms < 0:
            raise ValueError("latency must be >= 0")
        if bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be > 0")
        if jitter_ms < 0:
            raise ValueError("jitter must be >= 0")
        self.latency_ms = latency_ms
        self.bandwidth_mbps = bandwidth_mbps
        self.jitter_ms = jitter_ms
        self._rng = rng
        # Serialization runs once per transmitted message; precompute the
        # divisor (links are immutable after construction).
        self._bytes_per_ms = bandwidth_mbps * 1000.0

    def transfer_ms(self, n_bytes: int) -> float:
        """Serialization time for ``n_bytes`` at link bandwidth."""
        return n_bytes / self._bytes_per_ms

    def propagation_ms(self) -> float:
        """One-way propagation delay, with jitter if configured."""
        if self.jitter_ms > 0 and self._rng is not None:
            return self.latency_ms + self._rng.uniform(0.0, self.jitter_ms)
        return self.latency_ms
