"""Per-connection outgoing send buffers.

The buffer is the site of the paper's second root cause (§2.2):

    "RethinkDB maintains an unbounded buffer at the leader for outgoing
    writes — a slow follower can drive the leader to use an excessive
    amount of memory, or even run out of memory."

:class:`SendBuffer` accounts its bytes against the owning node's
:class:`~repro.sim.resources.MemoryResource` so that exactly this failure
mode is reproducible. A *bounded* buffer (what a fail-slow-aware framework
uses) instead rejects or drops when full, and the DepFast framework layer
additionally *discards* buffered messages once a quorum makes them
irrelevant.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.net.message import Message
from repro.sim.metrics import Gauge
from repro.sim.resources import MemoryResource


class BufferOverflowError(RuntimeError):
    """A bounded send buffer refused a message."""


class SendBuffer:
    """FIFO of messages waiting for flow-control window on one connection."""

    def __init__(
        self,
        owner: str,
        peer: str,
        memory: Optional[MemoryResource] = None,
        max_bytes: Optional[int] = None,
    ):
        self.owner = owner
        self.peer = peer
        self.memory = memory
        self.max_bytes = max_bytes
        self.bytes_queued = 0
        self.depth_gauge = Gauge(f"{owner}->{peer}.sendbuf")
        self._queue: Deque[Message] = deque()
        self._mem_owner = f"sendbuf:{peer}"

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def bounded(self) -> bool:
        return self.max_bytes is not None

    def push(self, message: Message) -> None:
        """Queue a message; raises :class:`BufferOverflowError` if bounded-full."""
        if self.max_bytes is not None and self.bytes_queued + message.size_bytes > self.max_bytes:
            raise BufferOverflowError(
                f"{self.owner}->{self.peer} buffer full "
                f"({self.bytes_queued}B + {message.size_bytes}B > {self.max_bytes}B)"
            )
        self._queue.append(message)
        self.bytes_queued += message.size_bytes
        self.depth_gauge.set(self.bytes_queued)
        if self.memory is not None:
            self.memory.allocate(message.size_bytes, owner=self._mem_owner)

    def pop(self) -> Optional[Message]:
        """Dequeue the oldest message, or None if empty."""
        if not self._queue:
            return None
        message = self._queue.popleft()
        self._release(message)
        return message

    def discard(self, msg_id: int) -> bool:
        """Remove a specific queued message (quorum-aware framework discard).

        Returns True if the message was still queued (and is now dropped).
        """
        for message in self._queue:
            if message.msg_id == msg_id:
                self._queue.remove(message)
                self._release(message)
                return True
        return False

    def drain_all(self) -> int:
        """Drop everything (connection teardown); returns messages dropped."""
        dropped = 0
        while self._queue:
            self._release(self._queue.popleft())
            dropped += 1
        return dropped

    def _release(self, message: Message) -> None:
        self.bytes_queued -= message.size_bytes
        self.depth_gauge.set(self.bytes_queued)
        if self.memory is not None:
            self.memory.free(message.size_bytes, owner=self._mem_owner)
