"""Receiver-side message queue with event-based handoff.

Messages delivered by the network land in the node's :class:`Inbox`; the
node's dispatcher coroutine pulls them one at a time. Flow-control acks are
sent when the dispatcher *takes* a message — so a CPU-starved node drains
its inbox slowly, delays acks, and backpressures its senders, which is the
mechanism behind sender-side backlog growth.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from repro.events.basic import ValueEvent
from repro.net.message import Message

# Sentinel: "call ack with no argument". Lets hot callers pass a shared
# bound method plus the message (zero per-message closures) while the
# original zero-arg ``ack=lambda: ...`` form keeps working.
_NO_ARG = object()

# (message, ack, ack_arg) triples: firing the ack releases the sender's
# flow-control window bytes for this message.
_Item = Tuple[Message, Callable[..., None], object]


class Inbox:
    """Single-consumer message queue for one node."""

    def __init__(self, node: str):
        self.node = node
        self._queue: Deque[_Item] = deque()
        self._waiter: Optional[ValueEvent] = None
        self.received = 0

    def __len__(self) -> int:
        return len(self._queue)

    def put(
        self,
        message: Message,
        ack: Callable[..., None],
        ack_arg: object = _NO_ARG,
    ) -> None:
        """Deliver a message (network side). Acks fire at consumption.

        ``ack`` is called as ``ack(ack_arg)`` when an argument is given,
        else as ``ack()`` — so the network passes one shared bound method
        instead of allocating a closure per message.
        """
        self.received += 1
        if self._waiter is not None:
            waiter, self._waiter = self._waiter, None
            if ack_arg is _NO_ARG:
                ack()
            else:
                ack(ack_arg)
            waiter.set(message)
        else:
            self._queue.append((message, ack, ack_arg))

    def get_event(self) -> ValueEvent:
        """Event carrying the next message; consume with ``(yield ev.wait()).event.value``.

        Single-consumer: only one outstanding get is allowed.
        """
        if self._waiter is not None:
            raise RuntimeError(f"inbox {self.node!r} already has a pending get")
        event = ValueEvent(name=f"inbox:{self.node}", source=self.node)
        if self._queue:
            message, ack, ack_arg = self._queue.popleft()
            if ack_arg is _NO_ARG:
                ack()
            else:
                ack(ack_arg)
            event.set(message)
        else:
            self._waiter = event
        return event

    def cancel_get(self) -> None:
        """Abandon a pending get (node shutting down)."""
        self._waiter = None
