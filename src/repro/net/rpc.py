"""RPC on top of the network: endpoints, proxies and quorum calls.

``RpcEndpoint`` runs one dispatcher coroutine per node: it pulls messages
from the inbox, pays a per-message parse cost on the node's CPU, completes
reply events, and spawns one handler coroutine per request — the DepFast
runtime's version of a message loop, except request logic itself is written
synchronously in coroutines rather than shredded into callbacks.

``QuorumCall`` is the framework/logic bridge of §2.3: the *logic* says
"broadcast and give me a quorum", so the *framework* knows the broadcast
can succeed with a quorum of replies and may discard still-buffered
messages for slow connections once the quorum is in.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Tuple

from repro.events.basic import RpcEvent
from repro.events.compound import QuorumEvent
from repro.net.buffers import BufferOverflowError
from repro.net.inbox import Inbox
from repro.net.message import Message
from repro.net.network import Network
from repro.runtime.runtime import Runtime

# A handler is a generator function: (payload, src_node) -> yields waits,
# returns the reply payload (or None for one-way messages).
Handler = Callable[[Any, str], Generator]

# Default CPU cost to parse/deserialize one incoming message, in CPU-ms.
# At 4 concurrent CPU-ms per ms this bounds a healthy node far above the
# experiment's offered load; under a 5% CPU quota it becomes the choke
# point, as intended.
DEFAULT_PARSE_COST_MS = 0.01

# One-way control message: "the hedge race for this group is decided —
# drop copies you have not executed yet". Intercepted by the endpoint
# before handler dispatch.
HEDGE_ABORT_METHOD = "__hedge_abort__"

# Bound on the per-endpoint hedge bookkeeping (dedup replies + abort
# marks). FIFO eviction: hedge races are decided within an RPC timeout,
# so old entries are dead weight long before the cap bites.
HEDGE_CACHE_LIMIT = 512

# Reply payload for a hedge copy dropped before execution. Answering
# (rather than staying silent) keeps the caller's pending-reply table
# clean and — crucially — lets the loser's true round-trip time reach
# the latency estimator: silent drops would hide exactly the slow
# samples hedging needs to see.
HEDGE_ABORTED_REPLY = {"hedge_aborted": True}


def is_hedge_abort_reply(payload: Any) -> bool:
    """True for the ack a server sends instead of executing an aborted copy."""
    return isinstance(payload, dict) and payload.get("hedge_aborted") is True


class RpcError(RuntimeError):
    """RPC-layer failure (unknown method, send failure, ...)."""


class _CancelHandle:
    """Idempotent ``cancel_send`` for one outbound request.

    A request can be cancelled from more than one place — a QuorumCall's
    straggler discard, a batcher's outstanding-discard and a HedgedCall's
    loser cancellation may all target the same RPC. The first call does
    the buffer discard; later calls return the recorded outcome without
    rescanning the send queue (the scan is O(queued messages)).

    A successful discard also retires the endpoint's pending-reply entry:
    the request died in the send buffer, so no reply will ever arrive to
    clean that entry up, and it would otherwise leak for the rest of the
    run.
    """

    __slots__ = ("_endpoint", "_connection", "msg_id", "called", "dropped")

    def __init__(self, endpoint: "RpcEndpoint", connection, msg_id: int):
        self._endpoint = endpoint
        self._connection = connection
        self.msg_id = msg_id
        self.called = False
        self.dropped = False

    def __call__(self) -> bool:
        if self.called:
            return self.dropped
        self.called = True
        self.dropped = self._connection.discard(self.msg_id)
        if self.dropped:
            self._endpoint._pending.pop(self.msg_id, None)
        return self.dropped


class RpcEndpoint:
    """Request/reply messaging for one node."""

    def __init__(
        self,
        node: str,
        network: Network,
        runtime: Runtime,
        parse_cost_ms: float = DEFAULT_PARSE_COST_MS,
        parse_cost_per_kb_ms: float = 0.0,
    ):
        self.node = node
        self.network = network
        self.runtime = runtime
        self.parse_cost_ms = parse_cost_ms
        self.parse_cost_per_kb_ms = parse_cost_per_kb_ms
        self.inbox = Inbox(node)
        self.handlers: Dict[str, Handler] = {}
        self._pending: Dict[int, RpcEvent] = {}
        self._started = False
        self.requests_handled = 0
        # Server-side hedge bookkeeping (§ hedged execution): completed
        # hedge groups cache their reply so a duplicate copy answers
        # without re-executing; aborted groups drop unexecuted copies.
        self._hedge_done: "OrderedDict[Tuple, Any]" = OrderedDict()
        self._hedge_aborted: "OrderedDict[Tuple, None]" = OrderedDict()
        # Groups whose handler is mid-execution: copies arriving in the
        # window park here and are answered from the one result.
        self._hedge_inflight: Dict[Tuple, List[Message]] = {}
        self.hedges_deduped = 0
        self.hedges_aborted = 0

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def register(self, method: str, handler: Handler) -> None:
        if method in self.handlers:
            raise RpcError(f"method {method!r} already registered on {self.node}")
        self.handlers[method] = handler

    def start(self) -> None:
        """Spawn the dispatcher loop; call after handlers are registered."""
        if self._started:
            raise RpcError(f"endpoint {self.node} already started")
        self._started = True
        self.runtime.spawn(self._dispatch_loop(), name=f"{self.node}:dispatch")

    def proxy(self, target: str) -> "RpcProxy":
        return RpcProxy(self, target)

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------
    def call(
        self,
        target: str,
        method: str,
        payload: Any = None,
        size_bytes: int = 0,
        hedge_group: Optional[Tuple] = None,
    ) -> RpcEvent:
        """Issue one RPC; returns the event to wait on.

        ``hedge_group`` marks this request as one copy of a hedged send:
        the receiving endpoint deduplicates copies sharing the key and
        honors abort notifications for the group.
        """
        message = Message(
            self.node, target, method, payload, size_bytes, hedge_group=hedge_group
        )
        event = RpcEvent(method, to_node=target)
        event.issued_at = self.runtime.now
        self._pending[message.msg_id] = event
        connection = self.network.connection(self.node, target)
        event.cancel_send = _CancelHandle(self, connection, message.msg_id)
        try:
            connection.send(message)
        except BufferOverflowError as exc:
            del self._pending[message.msg_id]
            event.fail(f"send buffer overflow: {exc}", now=self.runtime.now)
        return event

    def abort_hedge_group(self, target: str, hedge_group: Tuple) -> None:
        """Tell ``target`` the race for ``hedge_group`` is decided (one-way)."""
        self.notify(target, HEDGE_ABORT_METHOD, hedge_group, size_bytes=16)

    def forget_call(self, event: RpcEvent) -> None:
        """Drop the pending-reply entry for a call whose reply will never
        be consumed (hedge losers whose server-side copy was aborted —
        without this the entry would leak for the rest of the run)."""
        handle = event.cancel_send
        if isinstance(handle, _CancelHandle):
            self._pending.pop(handle.msg_id, None)

    def notify(
        self, target: str, method: str, payload: Any = None, size_bytes: int = 0
    ) -> None:
        """One-way message; no reply expected."""
        self.network.send(Message(self.node, target, method, payload, size_bytes))

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> Generator:
        while not self.runtime.crashed:
            event = self.inbox.get_event()
            yield event.wait()
            message: Message = event.value
            parse_cost = self.parse_cost_ms + (
                self.parse_cost_per_kb_ms * message.size_bytes / 1024.0
            )
            if parse_cost > 0:
                yield self.runtime.compute(parse_cost, name="rpc-parse")
            if message.is_reply:
                self._complete_reply(message)
            else:
                self.runtime.spawn(
                    self._handle(message), name=f"{self.node}:{message.method}"
                )

    def _complete_reply(self, message: Message) -> None:
        pending = self._pending.pop(message.reply_to, None)
        if pending is not None:
            pending.complete(message.payload, now=self.runtime.now)
            tracer = self.runtime.scheduler.tracer
            latency = pending.latency_ms()
            if tracer is not None and latency is not None:
                tracer.on_rpc_complete(
                    self.node, pending.to_node, pending.method, latency, self.runtime.now
                )
        # else: caller moved on (timeout); late reply is dropped.

    def _handle(self, message: Message) -> Generator:
        if message.method == HEDGE_ABORT_METHOD:
            self._mark_hedge_aborted(message.payload)
            return
        group = message.hedge_group
        if group is not None:
            # Server-side hedge hook: a copy whose race was already
            # decided is dropped before execution; a copy whose sibling
            # already executed answers from the cached reply — the
            # handler (and its WAL/CPU cost) runs at most once per group.
            if group in self._hedge_aborted:
                self.hedges_aborted += 1
                self._send_reply(message, HEDGE_ABORTED_REPLY)
                return
            if group in self._hedge_done:
                self.hedges_deduped += 1
                self._send_reply(message, self._hedge_done[group])
                return
            waiters = self._hedge_inflight.get(group)
            if waiters is not None:
                # A sibling copy is executing right now: park this one
                # and answer it from that execution's result.
                self.hedges_deduped += 1
                waiters.append(message)
                return
            self._hedge_inflight[group] = []
        handler = self.handlers.get(message.method)
        if handler is None:
            raise RpcError(f"{self.node}: no handler for {message.method!r}")
        reply_payload = yield from handler(message.payload, message.src)
        self.requests_handled += 1
        if group is not None:
            self._hedge_done[group] = reply_payload
            while len(self._hedge_done) > HEDGE_CACHE_LIMIT:
                self._hedge_done.popitem(last=False)
            for parked in self._hedge_inflight.pop(group, ()):
                self._send_reply(parked, reply_payload)
        self._send_reply(message, reply_payload)

    def _send_reply(self, message: Message, reply_payload: Any) -> None:
        if reply_payload is None:
            return
        reply = Message(
            self.node,
            message.src,
            f"{message.method}:reply",
            reply_payload,
            size_bytes=_payload_size(reply_payload),
            reply_to=message.msg_id,
        )
        self.network.send(reply)

    def _mark_hedge_aborted(self, group: Tuple) -> None:
        if group in self._hedge_done or group in self._hedge_inflight:
            return  # already executed (or executing); nothing left to abort
        self._hedge_aborted[group] = None
        while len(self._hedge_aborted) > HEDGE_CACHE_LIMIT:
            self._hedge_aborted.popitem(last=False)


class RpcProxy:
    """Bound (endpoint, target) pair — the paper's ``rpc_proxy`` objects."""

    def __init__(self, endpoint: RpcEndpoint, target: str):
        self.endpoint = endpoint
        self.target = target

    def call(self, method: str, payload: Any = None, size_bytes: int = 0) -> RpcEvent:
        return self.endpoint.call(self.target, method, payload, size_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RpcProxy {self.endpoint.node}->{self.target}>"


class QuorumCall:
    """Broadcast + QuorumEvent + quorum-aware discard, in one object.

    Parameters mirror the logic-level intent: send ``method`` to
    ``targets``, succeed once ``quorum`` replies satisfy ``classify``.
    With ``discard_on_quorum`` (the default — this is DepFast's framework
    optimization), messages still sitting in send buffers for slow
    connections are dropped the moment the quorum is reached.
    """

    def __init__(
        self,
        endpoint: RpcEndpoint,
        targets: Sequence[str],
        method: str,
        payload: Any = None,
        size_bytes: int = 0,
        quorum: int = 1,
        classify: Optional[Callable[[RpcEvent], bool]] = None,
        discard_on_quorum: bool = True,
        name: str = "",
    ):
        if quorum > len(targets):
            raise RpcError(f"quorum {quorum} > {len(targets)} targets")
        self.endpoint = endpoint
        self.targets = list(targets)
        self.event = QuorumEvent(
            quorum,
            n_total=len(targets),
            classify=self._wrap_classifier(classify),
            name=name or f"quorum:{method}",
        )
        self.calls: List[RpcEvent] = []
        for target in self.targets:
            rpc_event = endpoint.call(target, method, payload, size_bytes)
            self.calls.append(rpc_event)
            self.event.add(rpc_event)
        if discard_on_quorum:
            self.event.subscribe(self._discard_stragglers)
        tracer = getattr(endpoint.runtime.scheduler, "tracer", None)
        if tracer is not None:
            # §5 trace point: report who made this quorum and who
            # straggled, feeding the online fail-slow scorer.
            self.event.subscribe(
                lambda ev, _t=tracer: _t.report_quorum_event(
                    endpoint.node, ev, endpoint.runtime.now
                )
            )

    @staticmethod
    def _wrap_classifier(
        classify: Optional[Callable[[RpcEvent], bool]]
    ) -> Callable[[RpcEvent], bool]:
        if classify is None:
            return lambda rpc_event: rpc_event.ok
        return lambda rpc_event: rpc_event.ok and classify(rpc_event)

    def _discard_stragglers(self, _event) -> None:
        for rpc_event in self.calls:
            if not rpc_event.ready() and rpc_event.cancel_send is not None:
                rpc_event.cancel_send()

    def replies(self) -> List[Any]:
        """Payloads of the acceptably-completed calls so far."""
        return [rpc_event.reply for rpc_event in self.event.ok_children]

    def wait(self, timeout_ms: Optional[float] = None):
        return self.event.wait(timeout_ms)


def _payload_size(payload: Any) -> int:
    """Crude size estimate for reply payloads (requests size explicitly)."""
    size = getattr(payload, "size_bytes", None)
    if size is not None:
        return int(size)
    if isinstance(payload, (bytes, str)):
        return len(payload)
    return 64
