"""depfast-lint driver: run the scan + rules, render text or JSON.

Exit codes follow the usual linter contract:

* ``0`` — clean (no active findings; suppressed findings don't count);
* ``1`` — findings: error-severity by default, *any* severity with
  ``--strict``;
* ``2`` — usage error (bad path, unparsable file).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.analysis.model import ERROR, RULES, Finding
from repro.analysis.rules import run_rules
from repro.analysis.scanner import ModuleScan, ScanError, scan_paths

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


@dataclass
class LintResult:
    scans: List[ModuleScan] = field(default_factory=list)
    findings: List[Finding] = field(default_factory=list)

    def active(self, strict: bool = False) -> List[Finding]:
        """Findings that count against the exit code."""
        return [
            finding
            for finding in self.findings
            if not finding.suppressed
            and not finding.baselined
            and (strict or finding.severity == ERROR)
        ]

    def exit_code(self, strict: bool = False) -> int:
        return EXIT_FINDINGS if self.active(strict) else EXIT_CLEAN


def run_lint(paths: Sequence[str], xfunc: bool = True) -> LintResult:
    scans = scan_paths(paths, xfunc=xfunc)
    return LintResult(scans=scans, findings=run_rules(scans))


def _rel(path: str, root: Optional[str]) -> str:
    if root is None:
        return path
    try:
        return os.path.relpath(path, root)
    except ValueError:  # pragma: no cover - cross-drive on windows
        return path


def render_text(
    result: LintResult, strict: bool = False, root: Optional[str] = None
) -> str:
    lines: List[str] = []
    suppressed = 0
    for finding in result.findings:
        if finding.suppressed:
            suppressed += 1
            continue
        rule = RULES[finding.rule_id]
        tag = " [baselined]" if finding.baselined else ""
        lines.append(
            f"{_rel(finding.path, root)}:{finding.lineno}:{finding.col + 1}: "
            f"{finding.rule_id} [{finding.severity}]{tag} {rule.title}: "
            f"{finding.message} ({finding.qualname})"
        )
    active = result.active(strict)
    errors = sum(1 for finding in active if finding.severity == ERROR)
    warnings = len(
        [f for f in result.findings if not f.suppressed and not f.baselined]
    ) - errors
    baselined = sum(
        1 for f in result.findings if f.baselined and not f.suppressed
    )
    summary = (
        f"depfast-lint: {len(result.scans)} files, {errors} errors, "
        f"{warnings} warnings, {suppressed} suppressed"
    )
    if baselined:
        summary += f", {baselined} baselined"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    result: LintResult, strict: bool = False, root: Optional[str] = None
) -> str:
    payload = {
        "findings": [
            {
                "rule": finding.rule_id,
                "severity": finding.severity,
                "title": RULES[finding.rule_id].title,
                "path": _rel(finding.path, root),
                "line": finding.lineno,
                "col": finding.col + 1,
                "qualname": finding.qualname,
                "message": finding.message,
                "suppressed": finding.suppressed,
                "baselined": finding.baselined,
            }
            for finding in result.findings
        ],
        "summary": {
            "files": len(result.scans),
            "errors": sum(
                1
                for finding in result.findings
                if not finding.suppressed
                and not finding.baselined
                and finding.severity == ERROR
            ),
            "warnings": sum(
                1
                for finding in result.findings
                if not finding.suppressed
                and not finding.baselined
                and finding.severity != ERROR
            ),
            "suppressed": sum(1 for f in result.findings if f.suppressed),
            "baselined": sum(
                1
                for f in result.findings
                if f.baselined and not f.suppressed
            ),
            "strict": strict,
            "exit_code": result.exit_code(strict),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def main(
    paths: Sequence[str],
    fmt: str = "text",
    strict: bool = False,
    root: Optional[str] = None,
    xfunc: bool = True,
    baseline: Optional[str] = None,
    write_baseline: Optional[str] = None,
) -> int:
    """CLI entry point; prints the report and returns the exit code."""
    from repro.analysis.baseline import (
        apply_baseline,
        load_baseline,
        render_baseline,
    )

    try:
        result = run_lint(list(paths), xfunc=xfunc)
    except ScanError as exc:
        print(f"depfast-lint: error: {exc}")
        return EXIT_USAGE
    if write_baseline is not None:
        with open(write_baseline, "w", encoding="utf-8") as handle:
            handle.write(render_baseline(result.findings, root=root) + "\n")
        print(
            f"depfast-lint: wrote baseline with "
            f"{len([f for f in result.findings if not f.suppressed])} "
            f"finding(s) to {write_baseline}"
        )
        return EXIT_CLEAN
    if baseline is not None:
        try:
            accepted = load_baseline(baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"depfast-lint: error: cannot read baseline: {exc}")
            return EXIT_USAGE
        apply_baseline(result.findings, accepted, root=root)
    if fmt == "json":
        print(render_json(result, strict=strict, root=root))
    elif fmt == "sarif":
        from repro.analysis.sarif import render_sarif

        print(render_sarif(result, root=root))
    else:
        print(render_text(result, strict=strict, root=root))
    return result.exit_code(strict)
