"""depfast-lint: static fail-slow tolerance analysis for coroutine code.

Turns the paper's §3.1 property — "code that only uses QuorumEvent and has
no other waiting points" — into a compile-time check over the AST, plus a
static SPG approximation that a differ cross-checks against the runtime
SPG built from trace records.
"""

from repro.analysis.lint import LintResult, main, render_json, render_text, run_lint
from repro.analysis.model import ERROR, RULES, WARNING, EventShape, Finding, WaitSite
from repro.analysis.rules import run_rules
from repro.analysis.scanner import ModuleScan, ScanError, scan_module, scan_paths
from repro.analysis.spgdiff import SpgDiff, diff_spg
from repro.analysis.static_spg import StaticEdge, StaticSpg, build_static_spg

__all__ = [
    "ERROR",
    "WARNING",
    "RULES",
    "EventShape",
    "Finding",
    "WaitSite",
    "LintResult",
    "ModuleScan",
    "ScanError",
    "SpgDiff",
    "StaticEdge",
    "StaticSpg",
    "build_static_spg",
    "diff_spg",
    "main",
    "render_json",
    "render_text",
    "run_lint",
    "run_rules",
    "scan_module",
    "scan_paths",
]
