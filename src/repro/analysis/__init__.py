"""depfast-lint: static fail-slow tolerance analysis for coroutine code.

Turns the paper's §3.1 property — "code that only uses QuorumEvent and has
no other waiting points" — into a compile-time check over the AST, plus a
static SPG approximation that a differ cross-checks against the runtime
SPG built from trace records.

Analysis is whole-program by default: :func:`scan_paths` links every
scanned module into one :class:`Program` call graph and runs the
interprocedural event-shape fixpoint (:mod:`repro.analysis.interproc`)
over it, so shapes, dedication and replica contexts flow through any
number of call hops and across module boundaries. ``xfunc=False`` falls
back to per-module analysis.
"""

from repro.analysis.baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
    render_baseline,
)
from repro.analysis.callgraph import Program
from repro.analysis.interproc import analyze
from repro.analysis.lint import LintResult, main, render_json, render_text, run_lint
from repro.analysis.model import (
    ERROR,
    RULES,
    SANITIZER_RULES,
    WARNING,
    EventShape,
    Finding,
    WaitSite,
)
from repro.analysis.rules import run_rules
from repro.analysis.sarif import render_sarif
from repro.analysis.scanner import (
    ModuleScan,
    ScanError,
    parse_module,
    scan_module,
    scan_paths,
)
from repro.analysis.spgdiff import SpgDiff, diff_spg
from repro.analysis.static_spg import StaticEdge, StaticSpg, build_static_spg

__all__ = [
    "ERROR",
    "WARNING",
    "RULES",
    "SANITIZER_RULES",
    "EventShape",
    "Finding",
    "WaitSite",
    "LintResult",
    "ModuleScan",
    "Program",
    "ScanError",
    "SpgDiff",
    "StaticEdge",
    "StaticSpg",
    "analyze",
    "apply_baseline",
    "build_static_spg",
    "diff_spg",
    "fingerprint",
    "load_baseline",
    "main",
    "parse_module",
    "render_baseline",
    "render_json",
    "render_sarif",
    "render_text",
    "run_lint",
    "run_rules",
    "scan_module",
    "scan_paths",
]
