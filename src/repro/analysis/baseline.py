"""Accepted-findings baselines: ``--baseline`` no-new-findings gating.

A baseline file freezes the findings a codebase has consciously decided
to live with. Linting against it reports everything but *fails* only on
findings absent from the file — so CI gates on regressions, not history.

Fingerprints are ``rule::path::qualname`` — deliberately line-free, so
unrelated edits that shift line numbers don't churn the baseline, while a
finding moving to a different function counts as new.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Optional, Set

from repro.analysis.model import Finding

BASELINE_VERSION = 1


def fingerprint(finding: Finding, root: Optional[str] = None) -> str:
    from repro.analysis.lint import _rel

    return f"{finding.rule_id}::{_rel(finding.path, root)}::{finding.qualname}"


def load_baseline(path: str) -> Set[str]:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "fingerprints" not in payload:
        raise ValueError(f"not a depfast baseline file: {path}")
    return set(payload["fingerprints"])


def apply_baseline(
    findings: Iterable[Finding], accepted: Set[str], root: Optional[str] = None
) -> None:
    """Mark findings whose fingerprint the baseline accepts."""
    for finding in findings:
        if fingerprint(finding, root) in accepted:
            finding.baselined = True


def render_baseline(findings: Iterable[Finding], root: Optional[str] = None) -> str:
    """Serialize the *unsuppressed* findings as a fresh baseline file."""
    prints: List[str] = sorted(
        {
            fingerprint(finding, root)
            for finding in findings
            if not finding.suppressed
        }
    )
    return json.dumps(
        {"version": BASELINE_VERSION, "fingerprints": prints},
        indent=2,
        sort_keys=True,
    )
