"""Static ↔ runtime SPG differ.

The static analysis predicts *edge classes* (color × scope × dedicated);
the runtime trace produces *concrete edges* (waiter node → source node,
colored by the per-edge ``k < n`` rule). The differ lines the two up:

* a runtime edge is **predicted** when some static edge class covers it —
  same color, and a scope consistent with the node pair (both endpoints in
  one replica group ↔ ``group`` scope; otherwise ``boundary``);
* runtime edges with no covering class are **runtime-only** — waits the
  scanner could not see (dynamic dispatch, reflection, unresolved shapes);
* static edge classes never exercised by the trace are **static-only** —
  dead wait sites or scenarios the workload did not reach.

``coverage`` (predicted / total distinct runtime edges) is the
verification story's own metric: how much of what the tracer observed the
linter could have told you before running anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.analysis.static_spg import GREEN, RED, StaticEdge, StaticSpg
from repro.trace.tracepoints import WaitRecord


@dataclass(frozen=True)
class RuntimeEdge:
    """One distinct observed (waiter, source, color) triple."""

    src: str
    dst: str
    color: str
    scope: str  # "group" | "boundary"
    dedicated: bool


@dataclass
class SpgDiff:
    predicted: List[Tuple[RuntimeEdge, StaticEdge]] = field(default_factory=list)
    runtime_only: List[RuntimeEdge] = field(default_factory=list)
    static_only: List[StaticEdge] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        total = len(self.predicted) + len(self.runtime_only)
        if total == 0:
            return 1.0
        return len(self.predicted) / total

    def render(self) -> str:
        lines = [
            "static<->runtime SPG diff: "
            f"{len(self.predicted)} predicted, "
            f"{len(self.runtime_only)} runtime-only, "
            f"{len(self.static_only)} static-only "
            f"(coverage {self.coverage:.0%})"
        ]
        for edge, site in sorted(
            self.predicted, key=lambda pair: (pair[0].src, pair[0].dst)
        ):
            lines.append(
                f"   ok {edge.src} -> {edge.dst} [{edge.color}] "
                f"predicted by {site.path}:{site.lineno} ({site.qualname})"
            )
        for edge in sorted(self.runtime_only, key=lambda e: (e.src, e.dst)):
            lines.append(
                f" MISS {edge.src} -> {edge.dst} [{edge.color}] {edge.scope}: "
                "observed at runtime, not predicted statically"
            )
        for site in sorted(self.static_only, key=lambda s: (s.path, s.lineno)):
            lines.append(
                f" idle {site.path}:{site.lineno} [{site.color}] {site.scope}: "
                "predicted statically, never observed in this trace"
            )
        return "\n".join(lines)


def _runtime_edges(
    records: Iterable[WaitRecord], groups: Sequence[Sequence[str]]
) -> List[RuntimeEdge]:
    group_of: Dict[str, int] = {}
    for index, members in enumerate(groups):
        for member in members:
            group_of[member] = index
    seen: Set[RuntimeEdge] = set()
    ordered: List[RuntimeEdge] = []
    for record in records:
        if record.node is None:
            continue
        for source, k, n in record.edges:
            if source == record.node:
                continue
            color = GREEN if k < n else RED
            same_group = (
                record.node in group_of
                and source in group_of
                and group_of[record.node] == group_of[source]
            )
            edge = RuntimeEdge(
                src=record.node,
                dst=source,
                color=color,
                scope="group" if same_group else "boundary",
                dedicated=getattr(record, "dedication", None) == source,
            )
            if edge not in seen:
                seen.add(edge)
                ordered.append(edge)
    return ordered


def diff_spg(
    static: StaticSpg,
    records: Iterable[WaitRecord],
    groups: Sequence[Sequence[str]],
) -> SpgDiff:
    """Match every distinct runtime inter-node edge against the static
    prediction. ``groups`` uses the same shape as
    :func:`repro.trace.verify.check_fail_slow_tolerance`."""
    diff = SpgDiff()
    used: Set[StaticEdge] = set()
    for edge in _runtime_edges(records, groups):
        candidates = static.matching(
            edge.color, edge.scope, include_dedicated=True
        )
        # A dedicated runtime wait should be explained by a dedicated site
        # when one exists; a non-dedicated wait must not lean on one.
        if not edge.dedicated:
            candidates = [c for c in candidates if not c.dedicated]
        if candidates:
            chosen = sorted(candidates, key=lambda c: (c.path, c.lineno))[0]
            used.update(candidates)
            diff.predicted.append((edge, chosen))
        else:
            diff.runtime_only.append(edge)
    diff.static_only = [edge for edge in static.edges if edge not in used]
    return diff
