"""Static SPG approximation: predict the runtime slowness propagation
graph from wait sites alone.

The runtime SPG (:mod:`repro.trace.spg`) has concrete node names on its
edges because it watched real waits. Statically we cannot know that
``self.peers`` will be ``{"s2", "s3"}``, so the static graph is one of
*edge classes*, not node pairs:

* ``color`` — ``green`` for a non-tight quorum wait (k < n slack survives
  a slow minority), ``red`` for a solo basic-event wait or a tight quorum;
* ``scope`` — ``group`` when the wait lives in replica-group code (both
  endpoints share a replica group at runtime) vs ``boundary`` for
  client→service waits outside any group;
* ``dedicated`` — the wait belongs to a per-peer dedicated stream.

The differ (:mod:`repro.analysis.spgdiff`) then asks, for every concrete
runtime edge, whether a static edge class predicts it.

Scopes are *calling-context* facts, not lexical ones: a wait site factored
into a helper module emits a ``group`` edge when the whole-program call
graph shows replica code reaching it, and a ``boundary`` edge when client
or driver code does — one site can legitimately predict both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List

from repro.analysis.model import EventShape, WaitSite
from repro.analysis.scanner import ModuleScan

GREEN = "green"
RED = "red"


@dataclass(frozen=True)
class StaticEdge:
    """One predicted SPG edge class, anchored at the wait site that emits it."""

    path: str
    qualname: str
    lineno: int
    color: str
    scope: str  # "group" | "boundary"
    dedicated: bool
    label: str  # human-readable shape, e.g. "quorum(self.majority of len(self.group))"


@dataclass
class StaticSpg:
    """All statically predicted inter-node wait edges."""

    edges: List[StaticEdge] = field(default_factory=list)

    def matching(
        self, color: str, scope: str, include_dedicated: bool = True
    ) -> List[StaticEdge]:
        return [
            edge
            for edge in self.edges
            if edge.color == color
            and edge.scope == scope
            and (include_dedicated or not edge.dedicated)
        ]

    def render(self) -> str:
        lines = [f"static SPG: {len(self.edges)} predicted edge classes"]
        for edge in sorted(
            self.edges, key=lambda e: (e.path, e.lineno, e.color)
        ):
            marker = "!" if edge.color == RED else " "
            flags = " dedicated" if edge.dedicated else ""
            lines.append(
                f" {marker} {edge.path}:{edge.lineno} [{edge.color:>5}] "
                f"{edge.scope}{flags}  {edge.qualname}  {edge.label}"
            )
        return "\n".join(lines)


def _shape_colors(shape: EventShape) -> List[str]:
    """Colors of the inter-node edges this shape draws at runtime.

    Mirrors the runtime rule (green iff k < n per edge): a non-tight
    quorum gives green, a basic remote event gives red, And/Or defer to
    their children — including children attached later via ``.add()``.
    """
    if shape.is_quorum():
        if not shape.remote and not shape.children:
            # Quorum over purely-local children (e.g. SharedIntEvent acks)
            # draws no inter-node edge.
            return []
        return [RED if shape.tight is True else GREEN]
    if shape.is_basic():
        return [RED] if shape.remote else []
    if shape.kind in ("and", "or"):
        colors: List[str] = []
        for child in shape.children:
            colors.extend(_shape_colors(child))
        return colors
    return []


def build_static_spg(scans: Iterable[ModuleScan]) -> StaticSpg:
    spg = StaticSpg()
    for scan in scans:
        for func in scan.functions:
            for site in func.wait_sites:
                spg.edges.extend(_site_edges(func, site))
    return spg


def _site_scopes(func, site: WaitSite) -> List[str]:
    """Every scope this wait can run under, per the call graph.

    ``site.replica`` covers both lexically-replica code and helper sites
    upgraded by replica calling contexts. A site *also* serves boundary
    traffic when non-replica code reaches its function — unless the
    function is itself a replica-class method, where external calls
    arrive over RPC (a separate wait) rather than through the graph.
    """
    scopes: List[str] = []
    if site.replica:
        scopes.append("group")
    if not site.replica or (
        getattr(func, "boundary_context", False) and not func.replica
    ):
        scopes.append("boundary")
    return scopes


def _site_edges(func, site: WaitSite) -> List[StaticEdge]:
    return [
        StaticEdge(
            path=site.path,
            qualname=site.qualname,
            lineno=site.lineno,
            color=color,
            scope=scope,
            dedicated=site.dedicated,
            label=site.shape.describe(),
        )
        for scope in _site_scopes(func, site)
        for color in _shape_colors(site.shape)
    ]
