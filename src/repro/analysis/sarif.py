"""SARIF 2.1.0 emitter: ``repro lint --format sarif``.

One run, one driver (``depfast-lint``), every rule declared up front with
its default level, one result per finding. Suppressed findings ride along
as SARIF ``suppressions`` (kind ``inSource``) and baselined ones carry
``baselineState: "unchanged"``, so SARIF viewers and code-scanning UIs
fold them the same way the text renderer does.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.analysis.model import ERROR, RULES

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _level(severity: str) -> str:
    return "error" if severity == ERROR else "warning"


def render_sarif(result, root: Optional[str] = None) -> str:
    from repro.analysis.baseline import fingerprint
    from repro.analysis.lint import _rel

    rules = [
        {
            "id": rule.rule_id,
            "name": rule.title,
            "shortDescription": {"text": rule.title},
            "fullDescription": {"text": rule.description},
            "defaultConfiguration": {"level": _level(rule.severity)},
        }
        for rule in sorted(RULES.values(), key=lambda r: r.rule_id)
    ]
    results = []
    for finding in result.findings:
        entry = {
            "ruleId": finding.rule_id,
            "level": _level(finding.severity),
            "message": {"text": f"{finding.message} ({finding.qualname})"},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _rel(finding.path, root).replace("\\", "/"),
                        },
                        "region": {
                            "startLine": finding.lineno,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
            "partialFingerprints": {
                "depfast/v1": fingerprint(finding, root),
            },
        }
        if finding.suppressed:
            entry["suppressions"] = [{"kind": "inSource"}]
        if finding.baselined:
            entry["baselineState"] = "unchanged"
        results.append(entry)
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "depfast-lint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
