"""The depfast-lint rule engine: seven static fail-slow tolerance rules.

Each rule turns one anti-pattern from the paper's §3.1 discussion into a
compile-time finding:

* **DF001 solo-wait** — a basic-Event inter-node wait in replica-group
  code: the statically-visible version of the SPG's red edge. Dedicated
  (per-peer stream) coroutines are exempt, mirroring the runtime checker.
* **DF002 unbounded-wait** — an inter-node wait with no ``timeout_ms``:
  there is no bound on how long a fail-slow source parks the coroutine.
* **DF003 blocking-call** — ``time.sleep`` / file IO / socket IO inside a
  coroutine body: blocks the scheduler thread, not just the one task.
* **DF004 event-leak** — an event constructed and then never waited on,
  triggered, composed, stored or passed along.
* **DF005 tight-quorum** — ``k == n``: nominally a quorum, actually an
  all-wait; every straggler is on the critical path.
* **DF006 yield-starvation** — a loop with no wait point whose condition
  the body cannot change: a busy-wait that starves cooperative peers.
* **DF007 fire-and-forget-hedge** — duplicated sends with no cancellation
  path: a ``HedgedCall`` that opts out of loser cancellation, or a loop
  that fires ``endpoint.call`` copies and drops the returned events. The
  hedge's whole bargain is "race, then cancel the losers" — without the
  cancel, every duplicate re-imposes the straggler's cost.

Rules only fire on *resolved* facts; expressions the data-flow pass could
not identify never produce findings.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from repro.analysis.model import EventShape, Finding, WaitSite
from repro.analysis.resolve import _call_name
from repro.analysis.scanner import ModuleScan, _iter_own_nodes

# Call targets treated as blocking the OS thread (DF003). Matching is on
# the dotted tail, e.g. ``time.sleep`` or a bare ``open``.
_BLOCKING_CALLS = {
    "time.sleep",
    "open",
    "os.read",
    "os.write",
    "os.fsync",
    "socket.socket",
    "subprocess.run",
    "subprocess.check_output",
    "subprocess.Popen",
    "urllib.request.urlopen",
    "requests.get",
    "requests.post",
    "input",
}

# Event constructors tracked for DF004 leak detection.
_EVENT_CONSTRUCTORS = {
    "Event",
    "ValueEvent",
    "RpcEvent",
    "SharedIntEvent",
    "QuorumEvent",
    "AndEvent",
    "OrEvent",
    "NeverEvent",
}


def run_rules(scans: Iterable[ModuleScan]) -> List[Finding]:
    findings: List[Finding] = []
    for scan in scans:
        findings.extend(_scan_findings(scan))
    findings.sort(key=Finding.sort_key)
    return findings


def _scan_findings(scan: ModuleScan) -> List[Finding]:
    findings: List[Finding] = []
    for func, node in _function_nodes(scan):
        for site in func.wait_sites:
            findings.extend(_check_wait_site(site))
        if func.is_coroutine:
            findings.extend(_df003_blocking_calls(scan, func, node))
            findings.extend(_df006_starving_loops(scan, func, node))
        findings.extend(_df004_event_leaks(scan, func, node))
        findings.extend(_df005_tight_quorums(scan, func, node))
        findings.extend(_df007_fire_and_forget_hedges(scan, func, node))
    # Apply suppressions.
    for finding in findings:
        if scan.suppressions.allows(finding.rule_id, finding.lineno):
            finding.suppressed = True
    return findings


def _function_nodes(scan: ModuleScan):
    """Pair each FunctionScan with its AST node (matched by position)."""
    by_pos = {}
    for node in ast.walk(scan.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            by_pos[(node.lineno, node.name)] = node
    for func in scan.functions:
        node = by_pos.get((func.lineno, func.name))
        if node is not None:
            yield func, node


# ---------------------------------------------------------------------------
# Wait-site rules (DF001, DF002)
# ---------------------------------------------------------------------------


def _check_wait_site(site: WaitSite) -> List[Finding]:
    findings: List[Finding] = []
    shape = site.shape
    if site.replica and not site.dedicated and _has_solo_remote(shape):
        findings.append(
            Finding(
                rule_id="DF001",
                path=site.path,
                lineno=site.lineno,
                col=site.col,
                qualname=site.qualname,
                message=(
                    f"solo inter-node wait on {shape.describe()} in "
                    "replica-group code: one fail-slow peer stalls this "
                    "coroutine (use a QuorumEvent, or a dedicated per-peer "
                    "stream)"
                ),
            )
        )
    if shape.remote and not site.has_timeout:
        findings.append(
            Finding(
                rule_id="DF002",
                path=site.path,
                lineno=site.lineno,
                col=site.col,
                qualname=site.qualname,
                message=(
                    f"unbounded inter-node wait on {shape.describe()}: pass "
                    "timeout_ms so a fail-slow source cannot park this "
                    "coroutine forever"
                ),
            )
        )
    return findings


def _has_solo_remote(shape: EventShape) -> bool:
    """A basic (1/1) remote dependency anywhere in the wait's shape tree."""
    if shape.is_basic() and shape.remote:
        return True
    if shape.kind == "and":
        # And needs *every* child: a basic remote child is critical.
        return any(_has_solo_remote(child) for child in shape.children)
    if shape.kind == "or" and shape.children:
        # Or tolerates slow branches unless every branch shares the need.
        return all(_has_solo_remote(child) for child in shape.children)
    return False


# ---------------------------------------------------------------------------
# DF003 — blocking calls inside coroutines
# ---------------------------------------------------------------------------


def _dotted_name(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _df003_blocking_calls(scan: ModuleScan, func, node: ast.AST) -> List[Finding]:
    findings = []
    for child in _iter_own_nodes(node):
        if not isinstance(child, ast.Call):
            continue
        dotted = _dotted_name(child.func)
        if dotted in _BLOCKING_CALLS:
            findings.append(
                Finding(
                    rule_id="DF003",
                    path=scan.path,
                    lineno=child.lineno,
                    col=child.col_offset,
                    qualname=func.qualname,
                    message=(
                        f"blocking call {dotted}() inside coroutine: this "
                        "stalls the scheduler for every coroutine on the "
                        "node — use runtime.sleep()/io helpers instead"
                    ),
                )
            )
    return findings


# ---------------------------------------------------------------------------
# DF004 — constructed-but-orphaned events
# ---------------------------------------------------------------------------


def _df004_event_leaks(scan: ModuleScan, func, node: ast.AST) -> List[Finding]:
    findings = []
    assignments = []  # (name, lineno, col, constructor)
    for child in _iter_own_nodes(node):
        if not isinstance(child, ast.Assign) or len(child.targets) != 1:
            continue
        target = child.targets[0]
        if not isinstance(target, ast.Name) or not isinstance(child.value, ast.Call):
            continue
        ctor = _call_name(child.value.func)
        if ctor in _EVENT_CONSTRUCTORS:
            assignments.append((target.id, child.lineno, child.col_offset, ctor, child))
    if not assignments:
        return findings
    # Count *loads* of each name across the whole function; a constructed
    # event whose variable is never read again can never trigger a waiter.
    loads: Set[str] = set()
    for child in _iter_own_nodes(node):
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load):
            loads.add(child.id)
    for name, lineno, col, ctor, _stmt in assignments:
        if name not in loads:
            findings.append(
                Finding(
                    rule_id="DF004",
                    path=scan.path,
                    lineno=lineno,
                    col=col,
                    qualname=func.qualname,
                    message=(
                        f"event {name!r} ({ctor}) is constructed but never "
                        "waited on, triggered, or composed — an orphaned "
                        "event leaves any future waiter parked forever"
                    ),
                )
            )
    return findings


# ---------------------------------------------------------------------------
# DF005 — tight quorums (k == n)
# ---------------------------------------------------------------------------


def _df005_tight_quorums(scan: ModuleScan, func, node: ast.AST) -> List[Finding]:
    findings = []
    for child in _iter_own_nodes(node):
        if not isinstance(child, ast.Call):
            continue
        name = _call_name(child.func)
        if name not in ("QuorumEvent", "QuorumCall"):
            continue
        from repro.analysis.resolve import ShapeResolver

        resolver = ShapeResolver()
        shape = resolver.resolve(child)
        if isinstance(shape, EventShape) and shape.is_quorum() and shape.tight:
            findings.append(
                Finding(
                    rule_id="DF005",
                    path=scan.path,
                    lineno=child.lineno,
                    col=child.col_offset,
                    qualname=func.qualname,
                    message=(
                        f"tight quorum ({shape.k_expr} of {shape.n_expr}): "
                        "k == n puts every member on the critical path — a "
                        "single straggler delays the wait; use k < n or an "
                        "Or-composition with an abort branch"
                    ),
                )
            )
    return findings


# ---------------------------------------------------------------------------
# DF006 — scheduler-starving loops
# ---------------------------------------------------------------------------


def _df006_starving_loops(scan: ModuleScan, func, node: ast.AST) -> List[Finding]:
    findings = []
    for child in _iter_own_nodes(node):
        if not isinstance(child, ast.While):
            continue
        if _loop_has_wait(child) or _loop_can_exit(child):
            continue
        findings.append(
            Finding(
                rule_id="DF006",
                path=scan.path,
                lineno=child.lineno,
                col=child.col_offset,
                qualname=func.qualname,
                message=(
                    "loop has no wait point and its body cannot change the "
                    "loop condition: it busy-waits, starving every other "
                    "coroutine on this scheduler — yield a wait (or the "
                    "YIELD reschedule sentinel) inside the loop"
                ),
            )
        )
    return findings


def _loop_has_wait(loop: ast.While) -> bool:
    for node in ast.walk(loop):
        if isinstance(node, (ast.Yield, ast.YieldFrom, ast.Await)):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False  # nested defs end the coroutine's own frame
    return False


def _loop_can_exit(loop: ast.While) -> bool:
    """True if the loop body can terminate the loop: an explicit break /
    return / raise, or a mutation of something named in the condition."""
    for node in ast.walk(loop):
        if isinstance(node, (ast.Break, ast.Return, ast.Raise)):
            return True
    condition_names = _dotted_names(loop.test)
    if not condition_names:
        return False  # e.g. ``while True`` with no break
    for node in ast.walk(loop):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                dotted = _dotted_name(target)
                if dotted is not None and dotted in condition_names:
                    return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            dotted = _dotted_name(node.func.value)
            if dotted is not None and dotted in condition_names:
                return True  # method call on a condition operand may mutate it
    return False


def _dotted_names(expr: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(expr):
        dotted = _dotted_name(node)
        if dotted is not None:
            names.add(dotted)
    return names


# ---------------------------------------------------------------------------
# DF007 — uncancellable hedges (fire-and-forget duplicates)
# ---------------------------------------------------------------------------

# Constructors that configure hedged/duplicated sends; ``cancel_losers=False``
# on either disables the cancellation half of the race.
_HEDGE_CONSTRUCTORS = {"HedgedCall", "HedgePolicy"}


def _df007_fire_and_forget_hedges(
    scan: ModuleScan, func, node: ast.AST
) -> List[Finding]:
    findings = []
    seen: Set[tuple] = set()

    def emit(lineno: int, col: int, message: str) -> None:
        if (lineno, col) in seen:
            return
        seen.add((lineno, col))
        findings.append(
            Finding(
                rule_id="DF007",
                path=scan.path,
                lineno=lineno,
                col=col,
                qualname=func.qualname,
                message=message,
            )
        )

    for child in _iter_own_nodes(node):
        if isinstance(child, ast.Call):
            name = _call_name(child.func)
            if name in _HEDGE_CONSTRUCTORS and _kwarg_is_false(
                child, "cancel_losers"
            ):
                emit(
                    child.lineno,
                    child.col_offset,
                    f"{name}(cancel_losers=False) leaves losing duplicates "
                    "running: the straggler's copy is paid in full even "
                    "after a winner replies — keep loser cancellation on, "
                    "or don't hedge",
                )
        if isinstance(child, (ast.For, ast.While)):
            for stmt in ast.walk(child):
                if not isinstance(stmt, ast.Expr) or not isinstance(
                    stmt.value, ast.Call
                ):
                    continue
                call = stmt.value
                if _call_name(call.func) == "call" and len(call.args) >= 2:
                    emit(
                        call.lineno,
                        call.col_offset,
                        "duplicated send discards its RpcEvent: a "
                        "fire-and-forget copy has no cancellation path, so "
                        "the duplicates keep loading the slow link after a "
                        "winner replies — keep the handle and cancel_send() "
                        "the losers",
                    )
    return findings


def _kwarg_is_false(call: ast.Call, name: str) -> bool:
    for keyword in call.keywords:
        if (
            keyword.arg == name
            and isinstance(keyword.value, ast.Constant)
            and keyword.value.value is False
        ):
            return True
    return False
