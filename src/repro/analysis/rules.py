"""The depfast-lint rule engine: eleven static rules in two families.

**Fail-slow tolerance** (DF001–DF007) turns the paper's §3.1 anti-pattern
discussion into compile-time findings:

* **DF001 solo-wait** — a basic-Event inter-node wait in replica-group
  code: the statically-visible version of the SPG's red edge. Dedicated
  (per-peer stream) coroutines are exempt, mirroring the runtime checker.
* **DF002 unbounded-wait** — an inter-node wait with no ``timeout_ms``:
  there is no bound on how long a fail-slow source parks the coroutine.
* **DF003 blocking-call** — ``time.sleep`` / file IO / socket IO inside a
  coroutine body: blocks the scheduler thread, not just the one task.
* **DF004 event-leak** — an event constructed and then never waited on,
  triggered, composed, stored or passed along. Interprocedural: an event
  built any number of helper hops away and dropped at the call site is an
  orphan too, while an event a callee demonstrably consumes is not.
* **DF005 tight-quorum** — ``k == n``: nominally a quorum, actually an
  all-wait; every straggler is on the critical path.
* **DF006 yield-starvation** — a loop with no wait point whose condition
  the body cannot change: a busy-wait that starves cooperative peers.
* **DF007 fire-and-forget-hedge** — duplicated sends with no cancellation
  path: a ``HedgedCall`` that opts out of loser cancellation, or a loop
  that fires ``endpoint.call`` copies and drops the returned events.

**Determinism sanitizer** (DF008–DF011) guards the golden-trace-hash
infrastructure everything else rests on: one stray wall-clock read or
hash-ordered iteration feeding a send loop silently breaks bit-for-bit
reproducibility.

* **DF008 wall-clock-read** — ``time.time()`` and friends in sim-driven
  code; virtual time comes from the kernel, never the host.
* **DF009 unseeded-random** — module-level ``random.*`` calls; all
  randomness must flow from :mod:`repro.sim.rng` streams.
* **DF010 unordered-iteration** — iterating a ``set`` (or filesystem-
  ordered listing) and sending/spawning/scheduling per element without
  ``sorted()``: event order then depends on hash seed, not the program.
* **DF011 stale-read-across-yield** — a mutable ``self.`` field
  snapshotted before a yield and relied on after it with no revalidation:
  the cooperative-runtime analog of a data race (terms change, leaders
  fall, logs truncate while the coroutine is parked).

Rules only fire on *resolved* facts; expressions the data-flow pass could
not identify never produce findings.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.model import (
    EVENT_CONSTRUCTORS,
    EventShape,
    Finding,
    FunctionScan,
    WaitSite,
)
from repro.analysis.resolve import _call_name, callee_ref
from repro.analysis.scanner import ModuleScan, _iter_own_nodes

# Call targets treated as blocking the OS thread (DF003). Matching is on
# the dotted tail, e.g. ``time.sleep`` or a bare ``open``.
_BLOCKING_CALLS = {
    "time.sleep",
    "open",
    "os.read",
    "os.write",
    "os.fsync",
    "socket.socket",
    "subprocess.run",
    "subprocess.check_output",
    "subprocess.Popen",
    "urllib.request.urlopen",
    "requests.get",
    "requests.post",
    "input",
}

# Backwards-compatible alias; the canonical set lives in model.py so the
# interprocedural fixpoint shares it.
_EVENT_CONSTRUCTORS = EVENT_CONSTRUCTORS


def run_rules(scans: Iterable[ModuleScan]) -> List[Finding]:
    findings: List[Finding] = []
    for scan in scans:
        findings.extend(_scan_findings(scan))
    findings.sort(key=Finding.sort_key)
    return findings


def _scan_findings(scan: ModuleScan) -> List[Finding]:
    findings: List[Finding] = []
    mutable_attrs = _mutable_class_attrs(scan)
    set_attrs = _set_valued_class_attrs(scan)
    for func, node in _function_nodes(scan):
        for site in func.wait_sites:
            findings.extend(_check_wait_site(site))
        if func.is_coroutine:
            findings.extend(_df003_blocking_calls(scan, func, node))
            findings.extend(_df006_starving_loops(scan, func, node))
            findings.extend(
                _df011_stale_reads(scan, func, node, mutable_attrs)
            )
        findings.extend(_df004_event_leaks(scan, func, node))
        findings.extend(_df005_tight_quorums(scan, func, node))
        findings.extend(_df007_fire_and_forget_hedges(scan, func, node))
        findings.extend(_df008_wall_clock_reads(scan, func, node))
        findings.extend(_df009_unseeded_random(scan, func, node))
        findings.extend(_df010_unordered_iteration(scan, func, node, set_attrs))
    # Apply suppressions.
    for finding in findings:
        if scan.suppressions.allows(finding.rule_id, finding.lineno):
            finding.suppressed = True
    return findings


def _function_nodes(scan: ModuleScan):
    for func in scan.functions:
        if func.node is not None:
            yield func, func.node


def _resolve_call_target(
    scan: ModuleScan, func: FunctionScan, call: ast.Call
) -> Optional[FunctionScan]:
    """Resolve a call through the scan's program call graph, if analyzed."""
    if scan.program is None:
        return None
    ref = callee_ref(call.func)
    if ref is None:
        return None
    return scan.program.resolve_name(func, ref[0], ref[1])


# ---------------------------------------------------------------------------
# Wait-site rules (DF001, DF002)
# ---------------------------------------------------------------------------


def _check_wait_site(site: WaitSite) -> List[Finding]:
    findings: List[Finding] = []
    shape = site.shape
    if site.replica and not site.dedicated and _has_solo_remote(shape):
        findings.append(
            Finding(
                rule_id="DF001",
                path=site.path,
                lineno=site.lineno,
                col=site.col,
                qualname=site.qualname,
                message=(
                    f"solo inter-node wait on {shape.describe()} in "
                    "replica-group code: one fail-slow peer stalls this "
                    "coroutine (use a QuorumEvent, or a dedicated per-peer "
                    "stream)"
                ),
            )
        )
    if shape.remote and not site.has_timeout:
        findings.append(
            Finding(
                rule_id="DF002",
                path=site.path,
                lineno=site.lineno,
                col=site.col,
                qualname=site.qualname,
                message=(
                    f"unbounded inter-node wait on {shape.describe()}: pass "
                    "timeout_ms so a fail-slow source cannot park this "
                    "coroutine forever"
                ),
            )
        )
    return findings


def _has_solo_remote(shape: EventShape) -> bool:
    """A basic (1/1) remote dependency anywhere in the wait's shape tree."""
    if shape.is_basic() and shape.remote:
        return True
    if shape.kind == "and":
        # And needs *every* child: a basic remote child is critical.
        return any(_has_solo_remote(child) for child in shape.children)
    if shape.kind == "or" and shape.children:
        # Or tolerates slow branches unless every branch shares the need.
        return all(_has_solo_remote(child) for child in shape.children)
    return False


# ---------------------------------------------------------------------------
# DF003 — blocking calls inside coroutines
# ---------------------------------------------------------------------------


def _dotted_name(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _df003_blocking_calls(scan: ModuleScan, func, node: ast.AST) -> List[Finding]:
    findings = []
    for child in _iter_own_nodes(node):
        if not isinstance(child, ast.Call):
            continue
        dotted = _dotted_name(child.func)
        if dotted in _BLOCKING_CALLS:
            findings.append(
                Finding(
                    rule_id="DF003",
                    path=scan.path,
                    lineno=child.lineno,
                    col=child.col_offset,
                    qualname=func.qualname,
                    message=(
                        f"blocking call {dotted}() inside coroutine: this "
                        "stalls the scheduler for every coroutine on the "
                        "node — use runtime.sleep()/io helpers instead"
                    ),
                )
            )
    return findings


# ---------------------------------------------------------------------------
# DF004 — constructed-but-orphaned events (interprocedural)
# ---------------------------------------------------------------------------


def _df004_event_leaks(scan: ModuleScan, func, node: ast.AST) -> List[Finding]:
    findings = []
    assignments = []  # (name, lineno, col, description)
    for child in _iter_own_nodes(node):
        if not isinstance(child, ast.Assign) or len(child.targets) != 1:
            continue
        target = child.targets[0]
        if not isinstance(target, ast.Name) or not isinstance(child.value, ast.Call):
            continue
        ctor = _call_name(child.value.func)
        if ctor in EVENT_CONSTRUCTORS:
            assignments.append((target.id, child.lineno, child.col_offset, ctor))
        else:
            callee = _resolve_call_target(scan, func, child.value)
            if callee is not None and callee.leaks_return:
                assignments.append(
                    (
                        target.id,
                        child.lineno,
                        child.col_offset,
                        f"fresh event returned by {callee.qualname}",
                    )
                )
    # Count *loads* of each name across the whole function; a constructed
    # event whose variable is never read again can never trigger a waiter.
    loads: Set[str] = set()
    for child in _iter_own_nodes(node):
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load):
            loads.add(child.id)
    for name, lineno, col, ctor in assignments:
        if name not in loads:
            findings.append(
                Finding(
                    rule_id="DF004",
                    path=scan.path,
                    lineno=lineno,
                    col=col,
                    qualname=func.qualname,
                    message=(
                        f"event {name!r} ({ctor}) is constructed but never "
                        "waited on, triggered, or composed — an orphaned "
                        "event leaves any future waiter parked forever"
                    ),
                )
            )
    # Dropped fresh-returning calls: ``self._make_event(...)`` as a bare
    # expression statement, where the (transitive) callee returns an event
    # it never consumed. The event is born orphaned at this call site.
    for child in _iter_own_nodes(node):
        if not isinstance(child, ast.Expr) or not isinstance(child.value, ast.Call):
            continue
        callee = _resolve_call_target(scan, func, child.value)
        if callee is not None and callee.leaks_return:
            findings.append(
                Finding(
                    rule_id="DF004",
                    path=scan.path,
                    lineno=child.lineno,
                    col=child.col_offset,
                    qualname=func.qualname,
                    message=(
                        f"{callee.qualname}() returns a freshly-constructed "
                        "event that is dropped here — neither this caller "
                        "nor the callee ever waits on, triggers, or stores "
                        "it, so any coroutine parked on it waits forever"
                    ),
                )
            )
    return findings


# ---------------------------------------------------------------------------
# DF005 — tight quorums (k == n)
# ---------------------------------------------------------------------------


def _df005_tight_quorums(scan: ModuleScan, func, node: ast.AST) -> List[Finding]:
    findings = []
    for child in _iter_own_nodes(node):
        if not isinstance(child, ast.Call):
            continue
        name = _call_name(child.func)
        if name not in ("QuorumEvent", "QuorumCall"):
            continue
        from repro.analysis.resolve import ShapeResolver

        resolver = ShapeResolver()
        shape = resolver.resolve(child)
        if isinstance(shape, EventShape) and shape.is_quorum() and shape.tight:
            findings.append(
                Finding(
                    rule_id="DF005",
                    path=scan.path,
                    lineno=child.lineno,
                    col=child.col_offset,
                    qualname=func.qualname,
                    message=(
                        f"tight quorum ({shape.k_expr} of {shape.n_expr}): "
                        "k == n puts every member on the critical path — a "
                        "single straggler delays the wait; use k < n or an "
                        "Or-composition with an abort branch"
                    ),
                )
            )
    return findings


# ---------------------------------------------------------------------------
# DF006 — scheduler-starving loops
# ---------------------------------------------------------------------------


def _df006_starving_loops(scan: ModuleScan, func, node: ast.AST) -> List[Finding]:
    findings = []
    for child in _iter_own_nodes(node):
        if not isinstance(child, ast.While):
            continue
        if _loop_has_wait(child) or _loop_can_exit(child):
            continue
        findings.append(
            Finding(
                rule_id="DF006",
                path=scan.path,
                lineno=child.lineno,
                col=child.col_offset,
                qualname=func.qualname,
                message=(
                    "loop has no wait point and its body cannot change the "
                    "loop condition: it busy-waits, starving every other "
                    "coroutine on this scheduler — yield a wait (or the "
                    "YIELD reschedule sentinel) inside the loop"
                ),
            )
        )
    return findings


def _loop_has_wait(loop: ast.While) -> bool:
    for node in ast.walk(loop):
        if isinstance(node, (ast.Yield, ast.YieldFrom, ast.Await)):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False  # nested defs end the coroutine's own frame
    return False


def _loop_can_exit(loop: ast.While) -> bool:
    """True if the loop body can terminate the loop: an explicit break /
    return / raise, or a mutation of something named in the condition."""
    for node in ast.walk(loop):
        if isinstance(node, (ast.Break, ast.Return, ast.Raise)):
            return True
    condition_names = _dotted_names(loop.test)
    if not condition_names:
        return False  # e.g. ``while True`` with no break
    for node in ast.walk(loop):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                dotted = _dotted_name(target)
                if dotted is not None and dotted in condition_names:
                    return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            dotted = _dotted_name(node.func.value)
            if dotted is not None and dotted in condition_names:
                return True  # method call on a condition operand may mutate it
    return False


def _dotted_names(expr: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(expr):
        dotted = _dotted_name(node)
        if dotted is not None:
            names.add(dotted)
    return names


# ---------------------------------------------------------------------------
# DF007 — uncancellable hedges (fire-and-forget duplicates)
# ---------------------------------------------------------------------------

# Constructors that configure hedged/duplicated sends; ``cancel_losers=False``
# on either disables the cancellation half of the race.
_HEDGE_CONSTRUCTORS = {"HedgedCall", "HedgePolicy"}


def _df007_fire_and_forget_hedges(
    scan: ModuleScan, func, node: ast.AST
) -> List[Finding]:
    findings = []
    seen: Set[tuple] = set()

    def emit(lineno: int, col: int, message: str) -> None:
        if (lineno, col) in seen:
            return
        seen.add((lineno, col))
        findings.append(
            Finding(
                rule_id="DF007",
                path=scan.path,
                lineno=lineno,
                col=col,
                qualname=func.qualname,
                message=message,
            )
        )

    for child in _iter_own_nodes(node):
        if isinstance(child, ast.Call):
            name = _call_name(child.func)
            if name in _HEDGE_CONSTRUCTORS and _kwarg_is_false(
                child, "cancel_losers"
            ):
                emit(
                    child.lineno,
                    child.col_offset,
                    f"{name}(cancel_losers=False) leaves losing duplicates "
                    "running: the straggler's copy is paid in full even "
                    "after a winner replies — keep loser cancellation on, "
                    "or don't hedge",
                )
        if isinstance(child, (ast.For, ast.While)):
            for stmt in ast.walk(child):
                if not isinstance(stmt, ast.Expr) or not isinstance(
                    stmt.value, ast.Call
                ):
                    continue
                call = stmt.value
                if _call_name(call.func) == "call" and len(call.args) >= 2:
                    emit(
                        call.lineno,
                        call.col_offset,
                        "duplicated send discards its RpcEvent: a "
                        "fire-and-forget copy has no cancellation path, so "
                        "the duplicates keep loading the slow link after a "
                        "winner replies — keep the handle and cancel_send() "
                        "the losers",
                    )
    return findings


def _kwarg_is_false(call: ast.Call, name: str) -> bool:
    for keyword in call.keywords:
        if (
            keyword.arg == name
            and isinstance(keyword.value, ast.Constant)
            and keyword.value.value is False
        ):
            return True
    return False


# ---------------------------------------------------------------------------
# DF008 — wall-clock reads (determinism sanitizer)
# ---------------------------------------------------------------------------

# Exact dotted names that read the host's clock. ``self.clock.now`` and
# other project abstractions deliberately do not match.
_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "date.today",
}


def _df008_wall_clock_reads(scan: ModuleScan, func, node: ast.AST) -> List[Finding]:
    findings = []
    for child in _iter_own_nodes(node):
        if not isinstance(child, ast.Call):
            continue
        dotted = _dotted_name(child.func)
        if dotted in _WALL_CLOCK_CALLS:
            findings.append(
                Finding(
                    rule_id="DF008",
                    path=scan.path,
                    lineno=child.lineno,
                    col=child.col_offset,
                    qualname=func.qualname,
                    message=(
                        f"wall-clock read {dotted}() in sim-driven code: "
                        "real time leaks into the deterministic simulation "
                        "and golden trace hashes diverge between runs — "
                        "use the kernel's virtual clock (kernel.now)"
                    ),
                )
            )
    return findings


# ---------------------------------------------------------------------------
# DF009 — unseeded randomness (determinism sanitizer)
# ---------------------------------------------------------------------------


def _df009_unseeded_random(scan: ModuleScan, func, node: ast.AST) -> List[Finding]:
    findings = []
    for child in _iter_own_nodes(node):
        if not isinstance(child, ast.Call):
            continue
        dotted = _dotted_name(child.func)
        if dotted is None:
            continue
        flagged = False
        if dotted.startswith(("random.", "np.random.", "numpy.random.")):
            # ``random.Random(seed)`` constructs an explicitly-seeded
            # stream (how repro.sim.rng builds its registry) — fine.
            tail = dotted.rsplit(".", 1)[1]
            flagged = not (tail == "Random" and (child.args or child.keywords))
        if flagged:
            findings.append(
                Finding(
                    rule_id="DF009",
                    path=scan.path,
                    lineno=child.lineno,
                    col=child.col_offset,
                    qualname=func.qualname,
                    message=(
                        f"{dotted}() draws from the shared, unseeded "
                        "module-level generator: two runs with the same "
                        "seed diverge — draw from a named repro.sim.rng "
                        "RngRegistry stream instead"
                    ),
                )
            )
    return findings


# ---------------------------------------------------------------------------
# DF010 — unordered iteration feeding sends (determinism sanitizer)
# ---------------------------------------------------------------------------

_UNORDERED_CONSTRUCTORS = {"set", "frozenset"}
# Filesystem-order listings: element order is whatever the OS returns.
_FS_ORDER_CALLS = {"listdir", "scandir", "glob", "iglob"}
_SET_METHODS = {"union", "intersection", "difference", "symmetric_difference"}
# Calls inside the loop body whose *order of invocation* becomes event
# order in the simulation (sends, spawns, timer scheduling).
_ORDER_SINKS = {
    "send",
    "spawn",
    "schedule",
    "call",
    "call_at",
    "call_later",
    "trigger",
    "enqueue",
}


def _set_valued_class_attrs(scan: ModuleScan) -> Set[Tuple[str, str]]:
    """``(class_name, attr)`` pairs assigned a set anywhere in the class."""
    attrs: Set[Tuple[str, str]] = set()
    for func in scan.functions:
        if func.class_name is None or func.node is None:
            continue
        for node in _iter_own_nodes(func.node):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            value = node.value
            if value is None or not _is_set_expr(value, set(), set(), None):
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attrs.add((func.class_name, target.attr))
    return attrs


def _is_set_expr(
    expr: ast.AST,
    set_locals: Set[str],
    set_attrs: Set[Tuple[str, str]],
    class_name: Optional[str],
) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        name = _call_name(expr.func)
        if name in _UNORDERED_CONSTRUCTORS or name in _FS_ORDER_CALLS:
            return True
        if name in _SET_METHODS and isinstance(expr.func, ast.Attribute):
            return True
        return False
    if isinstance(expr, ast.Name):
        return expr.id in set_locals
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and class_name is not None
    ):
        return (class_name, expr.attr) in set_attrs
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(
            expr.left, set_locals, set_attrs, class_name
        ) or _is_set_expr(expr.right, set_locals, set_attrs, class_name)
    return False


def _df010_unordered_iteration(
    scan: ModuleScan,
    func,
    node: ast.AST,
    set_attrs: Set[Tuple[str, str]],
) -> List[Finding]:
    findings = []
    # Locals assigned a set-shaped value anywhere in the function.
    set_locals: Set[str] = set()
    for child in _iter_own_nodes(node):
        if isinstance(child, ast.Assign):
            if _is_set_expr(child.value, set_locals, set_attrs, func.class_name):
                for target in child.targets:
                    if isinstance(target, ast.Name):
                        set_locals.add(target.id)
    for child in _iter_own_nodes(node):
        if not isinstance(child, ast.For):
            continue
        if not _is_set_expr(child.iter, set_locals, set_attrs, func.class_name):
            continue
        sink = _first_order_sink(child)
        if sink is None:
            continue
        findings.append(
            Finding(
                rule_id="DF010",
                path=scan.path,
                lineno=child.lineno,
                col=child.col_offset,
                qualname=func.qualname,
                message=(
                    "iterating an unordered collection and calling "
                    f"{sink}() per element: iteration order is "
                    "hash-randomized, so the event schedule differs run "
                    "to run — wrap the iterable in sorted()"
                ),
            )
        )
    return findings


def _first_order_sink(loop: ast.For) -> Optional[str]:
    for node in ast.walk(loop):
        if isinstance(node, ast.Call):
            name = _call_name(node.func)
            if name in _ORDER_SINKS:
                return name
    return None


# ---------------------------------------------------------------------------
# DF011 — stale reads across yield points (determinism sanitizer)
# ---------------------------------------------------------------------------


def _mutable_class_attrs(scan: ModuleScan) -> Dict[str, Set[str]]:
    """Per class: ``self.`` attributes assigned outside ``__init__`` —
    shared state that can change while a coroutine is parked."""
    mutable: Dict[str, Set[str]] = {}
    for func in scan.functions:
        if func.class_name is None or func.node is None:
            continue
        if func.name == "__init__":
            continue
        for node in _iter_own_nodes(func.node):
            if not isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    mutable.setdefault(func.class_name, set()).add(target.attr)
    return mutable


def _df011_stale_reads(
    scan: ModuleScan,
    func,
    node: ast.AST,
    mutable_attrs: Dict[str, Set[str]],
) -> List[Finding]:
    # Only replica-group coroutines: that is where shared state (terms,
    # leadership, logs) changes underneath parked coroutines.
    if func.class_name is None or not (func.replica or func.replica_context):
        return []
    attrs = mutable_attrs.get(func.class_name, set())
    if not attrs:
        return []
    snapshots = []  # (var, attr, lineno)
    yields: List[int] = []
    loads: Dict[str, List[int]] = {}
    stores: Dict[str, List[int]] = {}
    attr_loads: Dict[str, List[int]] = {}
    for child in _iter_own_nodes(node):
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            yields.append(child.lineno)
        elif isinstance(child, ast.Name):
            target = loads if isinstance(child.ctx, ast.Load) else stores
            target.setdefault(child.id, []).append(child.lineno)
        elif (
            isinstance(child, ast.Attribute)
            and isinstance(child.ctx, ast.Load)
            and isinstance(child.value, ast.Name)
            and child.value.id == "self"
        ):
            attr_loads.setdefault(child.attr, []).append(child.lineno)
        if isinstance(child, ast.Assign) and len(child.targets) == 1:
            target = child.targets[0]
            value = child.value
            if (
                isinstance(target, ast.Name)
                and isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id == "self"
                and value.attr in attrs
            ):
                snapshots.append((target.id, value.attr, child.lineno))
    if not snapshots or not yields:
        return []
    yields.sort()
    findings = []
    flagged: Set[Tuple[str, int]] = set()
    for var, attr, taken_at in snapshots:
        first_yield = next((y for y in yields if y > taken_at), None)
        if first_yield is None:
            continue
        # The snapshot dies at its next re-assignment (refreshed value).
        kills = [
            line
            for line in stores.get(var, [])
            if line > taken_at and line != taken_at
        ]
        horizon = min(kills) if kills else float("inf")
        if horizon <= first_yield:
            continue  # refreshed before ever crossing a yield
        stale_uses = [
            line
            for line in loads.get(var, [])
            if first_yield < line < horizon
        ]
        if not stale_uses:
            continue
        # Revalidation: the function re-reads self.<attr> after the yield
        # (typically to compare against the snapshot and bail out).
        if any(line > first_yield for line in attr_loads.get(attr, [])):
            continue
        use = min(stale_uses)
        if (var, taken_at) in flagged:
            continue
        flagged.add((var, taken_at))
        findings.append(
            Finding(
                rule_id="DF011",
                path=scan.path,
                lineno=taken_at,
                col=0,
                qualname=func.qualname,
                message=(
                    f"{var!r} snapshots self.{attr} here and is relied on "
                    f"after a yield (line {use}) without revalidation: "
                    f"self.{attr} can change while this coroutine is "
                    "parked — re-read it after resuming, or compare and "
                    "bail out on mismatch"
                ),
            )
        )
    return findings
