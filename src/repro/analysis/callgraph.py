"""Whole-program call graph over a set of :class:`ModuleScan` s.

The graph maps *call sites* to :class:`FunctionScan` s:

* ``self.helper(...)`` resolves through the enclosing class, then its
  base classes (same module, then classes imported by name);
* bare ``helper(...)`` resolves to a module-level function of the same
  module, then to a ``from mod import helper`` binding;
* ``rt.spawn(self._loop(...), ...)`` coroutine spawn sites are edges too,
  so dedication and replica context flow into spawned coroutines.

Resolution is deliberately conservative: a call the graph cannot resolve
is simply absent (no edge), and downstream analyses treat the callee as
opaque — the linter never reasons from guessed targets.

On top of the edges the graph computes three whole-program facts:

* **dedication** — the program-wide fixpoint of PR 3's per-module rule: a
  function is dedicated when it is a ``dedication=...`` spawn target or
  when every caller/spawner is itself dedicated;
* **replica context** — reachability from replica-class methods, so a
  wait site factored into a helper module still counts as replica-group
  code (this is what lets DF001 and the static SPG's ``group`` scope
  cross module boundaries);
* **boundary context** — reachability from non-replica code (clients,
  drivers, the txn coordinator), the complementary scope.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.model import CallSite, FunctionScan


class Program:
    """Index + call graph over every scanned module."""

    def __init__(self, scans: Iterable["ModuleScan"]):
        # Deterministic order regardless of how paths were given.
        self.scans = sorted(scans, key=lambda s: s.path)
        self.functions: List[FunctionScan] = []
        # (module, name) -> module-level function.
        self._module_funcs: Dict[Tuple[str, str], FunctionScan] = {}
        # (module, class_name, method_name) -> method.
        self._methods: Dict[Tuple[str, str, str], FunctionScan] = {}
        # (module, local_name) -> module path it was imported from.
        self._imports: Dict[Tuple[str, str], str] = {}
        # (module, class_name) -> base-class name list (source order).
        self._class_bases: Dict[Tuple[str, str], List[str]] = {}
        # class name -> [(module, class_name)] for cross-module base lookup.
        self._classes_by_name: Dict[str, List[Tuple[str, str]]] = {}
        # Resolved edges, built lazily by resolve_all().
        self._callers: Dict[int, List[FunctionScan]] = {}
        self._callees: Dict[int, List[FunctionScan]] = {}
        self._spawns: Dict[int, List[Tuple[FunctionScan, bool]]] = {}
        self._index()
        self._link()

    # ------------------------------------------------------------------
    # Index construction
    # ------------------------------------------------------------------
    def _index(self) -> None:
        for scan in self.scans:
            for func in scan.functions:
                func.module = scan.module
                func.path = scan.path
                self.functions.append(func)
                if func.class_name is None and "." not in func.qualname:
                    self._module_funcs[(scan.module, func.name)] = func
                elif (
                    func.class_name is not None
                    and func.qualname.endswith(f"{func.class_name}.{func.name}")
                    and func.qualname.count(".") >= 1
                ):
                    key = (scan.module, func.class_name, func.name)
                    # First definition wins (overloads don't exist; a nested
                    # def sharing the name would shadow, so keep the method).
                    self._methods.setdefault(key, func)
            for node in scan.tree.body:
                if isinstance(node, ast.ImportFrom) and node.module:
                    for alias in node.names:
                        local = alias.asname or alias.name
                        self._imports[(scan.module, local)] = node.module
            for node in ast.walk(scan.tree):
                if isinstance(node, ast.ClassDef):
                    bases = []
                    for base in node.bases:
                        if isinstance(base, ast.Name):
                            bases.append(base.id)
                        elif isinstance(base, ast.Attribute):
                            bases.append(base.attr)
                    self._class_bases[(scan.module, node.name)] = bases
                    self._classes_by_name.setdefault(node.name, []).append(
                        (scan.module, node.name)
                    )
        self.functions.sort(key=lambda f: (f.path, f.lineno, f.qualname))

    # ------------------------------------------------------------------
    # Call-site resolution
    # ------------------------------------------------------------------
    def resolve_call(
        self, caller: FunctionScan, site: CallSite
    ) -> Optional[FunctionScan]:
        return self.resolve_name(caller, site.name, site.is_self)

    def resolve_name(
        self, caller: FunctionScan, name: str, is_self: bool
    ) -> Optional[FunctionScan]:
        if is_self:
            if caller.class_name is None:
                return None
            return self._resolve_method(caller.module, caller.class_name, name)
        func = self._module_funcs.get((caller.module, name))
        if func is not None:
            return func
        source = self._imports.get((caller.module, name))
        if source is not None:
            resolved = self._module_funcs.get((source, name))
            if resolved is not None:
                return resolved
            # Scanned-from-elsewhere roots (tests, tools) produce module
            # names with extra leading components; an import of `pkg.mod`
            # still means the scanned `...pkg.mod` when that is unique.
            full = self._resolve_module(source)
            if full is not None:
                return self._module_funcs.get((full, name))
        return None

    def _resolve_module(self, source: str) -> Optional[str]:
        candidates = sorted(
            {
                module
                for (module, _name) in self._module_funcs
                if module.endswith("." + source)
            }
        )
        return candidates[0] if len(candidates) == 1 else None

    def _resolve_method(
        self,
        module: str,
        class_name: str,
        name: str,
        seen: Optional[Set[Tuple[str, str]]] = None,
    ) -> Optional[FunctionScan]:
        seen = seen or set()
        if (module, class_name) in seen:
            return None
        seen.add((module, class_name))
        func = self._methods.get((module, class_name, name))
        if func is not None:
            return func
        for base in self._class_bases.get((module, class_name), []):
            owner = self._find_class(module, base)
            if owner is not None:
                found = self._resolve_method(owner[0], owner[1], name, seen)
                if found is not None:
                    return found
        return None

    def _find_class(self, module: str, name: str) -> Optional[Tuple[str, str]]:
        if (module, name) in self._class_bases:
            return (module, name)
        source = self._imports.get((module, name))
        if source is not None and (source, name) in self._class_bases:
            return (source, name)
        candidates = self._classes_by_name.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------
    def _link(self) -> None:
        for func in self.functions:
            resolved: List[FunctionScan] = []
            for site in func.call_sites:
                callee = self.resolve_call(func, site)
                if callee is not None:
                    resolved.append(callee)
                    self._callers.setdefault(id(callee), []).append(func)
            self._callees[id(func)] = resolved
            self._spawns[id(func)] = []
            if func.node is not None:
                for target, dedicated in self._spawn_targets(func):
                    self._spawns[id(func)].append((target, dedicated))
                    self._callers.setdefault(id(target), []).append(func)

    def _spawn_targets(self, func: FunctionScan):
        from repro.analysis.resolve import _call_name

        for node in ast.walk(func.node):
            if not isinstance(node, ast.Call) or _call_name(node.func) != "spawn":
                continue
            if not node.args or not isinstance(node.args[0], ast.Call):
                continue
            target_func = node.args[0].func
            if isinstance(target_func, ast.Attribute) and (
                isinstance(target_func.value, ast.Name)
                and target_func.value.id == "self"
            ):
                callee = self.resolve_name(func, target_func.attr, True)
            elif isinstance(target_func, ast.Name):
                callee = self.resolve_name(func, target_func.id, False)
            else:
                callee = None
            if callee is None:
                continue
            dedication = next(
                (kw.value for kw in node.keywords if kw.arg == "dedication"),
                None,
            )
            dedicated = dedication is not None and not (
                isinstance(dedication, ast.Constant) and dedication.value is None
            )
            yield callee, dedicated

    def callees_of(self, func: FunctionScan) -> List[FunctionScan]:
        return self._callees.get(id(func), [])

    def spawns_of(self, func: FunctionScan) -> List[Tuple[FunctionScan, bool]]:
        return self._spawns.get(id(func), [])

    def callers_of(self, func: FunctionScan) -> List[FunctionScan]:
        return self._callers.get(id(func), [])

    # ------------------------------------------------------------------
    # Whole-program facts
    # ------------------------------------------------------------------
    def propagate_dedication(self) -> None:
        """Program-wide version of the PR 3 per-module rule."""
        roots: Set[int] = set()
        for func in self.functions:
            for target, dedicated in self.spawns_of(func):
                if dedicated:
                    roots.add(id(target))
        dedicated: Set[int] = set(roots)
        changed = True
        while changed:
            changed = False
            for func in self.functions:
                if id(func) in dedicated:
                    continue
                callers = self.callers_of(func)
                if callers and all(id(c) in dedicated for c in callers):
                    dedicated.add(id(func))
                    changed = True
        for func in self.functions:
            if id(func) in dedicated:
                func.dedicated = True
                for site in func.wait_sites:
                    site.dedicated = True

    def propagate_contexts(self) -> None:
        """Flow replica/boundary calling contexts through the edges."""
        replica_seeds = [f for f in self.functions if f.replica]
        boundary_seeds = [f for f in self.functions if not f.replica]
        for seeds, attr in (
            (replica_seeds, "replica_context"),
            (boundary_seeds, "boundary_context"),
        ):
            reached: Set[int] = set()
            stack = list(seeds)
            while stack:
                func = stack.pop()
                if id(func) in reached:
                    continue
                reached.add(id(func))
                setattr(func, attr, True)
                for callee in self.callees_of(func):
                    if id(callee) not in reached:
                        stack.append(callee)
                for target, _dedicated in self.spawns_of(func):
                    if id(target) not in reached:
                        stack.append(target)
        # A wait site inherits replica context from its calling contexts:
        # helper-factored waits count as replica-group code.
        for func in self.functions:
            if func.replica_context and not func.replica:
                for site in func.wait_sites:
                    site.replica = True
