"""AST scanner: walk generator coroutines and extract their wait points.

One :class:`ModuleScan` per file. The scanner

* finds every function and whether it is a *coroutine* (contains a
  ``yield``), mirroring how the runtime spawns generator coroutines;
* detects **replica-group classes** — classes that guard group membership
  (``if node_id not in group: raise``) or compute a ``self.peers`` list —
  which is where the paper's §3.1 quorum-only property applies;
* marks **dedicated** coroutines: generator functions spawned with
  ``dedication=...`` (plus their exclusive callees), the static analog of
  the runtime checker's per-peer-stream exemption;
* resolves each ``yield`` wait point's event expression through
  :mod:`repro.analysis.resolve` into a :class:`WaitSite`;
* parses ``# depfast: allow(DFnnn)`` / ``# depfast: allow-file(DFnnn)``
  suppression comments.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.model import (
    EventShape,
    FunctionScan,
    Suppressions,
    WaitExpr,
    WaitSite,
)
from repro.analysis.resolve import ShapeResolver, _call_name

_ALLOW_RE = re.compile(r"#\s*depfast:\s*(allow|allow-file)\(([^)]*)\)")
_RULE_SPLIT_RE = re.compile(r"[,\s]+")


@dataclass
class ModuleScan:
    """Everything the analysis knows about one source file."""

    path: str
    module: str
    tree: ast.Module
    source_lines: List[str]
    functions: List[FunctionScan] = field(default_factory=list)
    suppressions: Suppressions = field(default_factory=Suppressions)
    # qualname -> FunctionScan for call-graph lookups.
    by_name: Dict[str, FunctionScan] = field(default_factory=dict)


class ScanError(RuntimeError):
    """Raised when a path cannot be scanned (missing, unparsable)."""


# ---------------------------------------------------------------------------
# Path collection
# ---------------------------------------------------------------------------


def collect_files(paths: Iterable[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in ("__pycache__", ".git")
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        files.append(os.path.join(dirpath, filename))
        elif os.path.isfile(path) and path.endswith(".py"):
            files.append(path)
        else:
            raise ScanError(f"not a python file or directory: {path}")
    return files


def _module_name(path: str) -> str:
    parts = os.path.normpath(path).split(os.sep)
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    name = "/".join(parts)
    name = name[:-3] if name.endswith(".py") else name
    return name.replace("/", ".").removesuffix(".__init__")


# ---------------------------------------------------------------------------
# Suppression comments
# ---------------------------------------------------------------------------


def parse_suppressions(source_lines: List[str]) -> Suppressions:
    suppressions = Suppressions()
    for index, line in enumerate(source_lines, start=1):
        match = _ALLOW_RE.search(line)
        if not match:
            continue
        rules = {
            rule.strip().upper()
            for rule in _RULE_SPLIT_RE.split(match.group(2))
            if rule.strip()
        }
        if match.group(1) == "allow-file":
            suppressions.file_rules |= rules
            continue
        suppressions.line_rules.setdefault(index, set()).update(rules)
        if line.lstrip().startswith("#"):
            # A standalone comment suppresses the next *code* line, skipping
            # the rest of the comment block (justifications span lines).
            target = index + 1
            while target <= len(source_lines):
                stripped = source_lines[target - 1].strip()
                if stripped and not stripped.startswith("#"):
                    break
                target += 1
            if target <= len(source_lines):
                suppressions.line_rules.setdefault(target, set()).update(rules)
    return suppressions


# ---------------------------------------------------------------------------
# Class / function discovery
# ---------------------------------------------------------------------------


def _contains_yield(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if _owner_function(func, node):
                return True
    return False


def _iter_own_nodes(func: ast.AST):
    """Walk a function's AST without descending into nested functions."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _owner_function(func: ast.AST, target: ast.AST) -> bool:
    return any(node is target for node in _iter_own_nodes(func))


def _class_is_replica(cls: ast.ClassDef) -> bool:
    """Replica-group code: a class whose constructor asserts membership in
    a group list, or which derives a ``self.peers`` list."""
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr == "peers"
                ):
                    return True
        if isinstance(node, ast.If) and isinstance(node.test, ast.Compare):
            if any(isinstance(op, ast.NotIn) for op in node.test.ops) and any(
                isinstance(child, ast.Raise) for child in node.body
            ):
                return True
    return False


def _callees(func: ast.AST) -> Set[str]:
    """Bare names of self-methods / local functions this function calls."""
    names: Set[str] = set()
    for node in _iter_own_nodes(func):
        if isinstance(node, ast.Call):
            target = node.func
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                names.add(target.attr)
            elif isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _dedicated_spawn_targets(tree: ast.Module) -> Set[str]:
    """Functions spawned with ``dedication=...`` anywhere in the module."""
    targets: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or _call_name(node.func) != "spawn":
            continue
        dedication = next(
            (kw.value for kw in node.keywords if kw.arg == "dedication"), None
        )
        if dedication is None or (
            isinstance(dedication, ast.Constant) and dedication.value is None
        ):
            continue
        if node.args and isinstance(node.args[0], ast.Call):
            name = _call_name(node.args[0].func)
            if name is not None:
                targets.add(name)
    return targets


# ---------------------------------------------------------------------------
# Wait-site extraction (ordered statement walk)
# ---------------------------------------------------------------------------


class _FunctionWalker:
    """Processes one function's statements in source order, resolving the
    event expression of every ``yield`` against the running environment."""

    def __init__(
        self,
        scan: ModuleScan,
        func_scan: FunctionScan,
        func_node: ast.AST,
        return_shapes: Dict[str, EventShape],
    ):
        self.scan = scan
        self.func = func_scan
        self.resolver = ShapeResolver(return_shapes)
        self.return_shape: Optional[EventShape] = None
        self.unresolved_yields = 0
        self._walk(func_node.body)

    # -- statement dispatch -------------------------------------------
    def _walk(self, stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            self._statement(stmt)

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        self._extract_yields(stmt)
        self._observe_calls(stmt)
        if isinstance(stmt, ast.Assign) and not self._has_yield(stmt.value):
            for target in stmt.targets:
                self.resolver.assign(target, stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if not self._has_yield(stmt.value):
                self.resolver.assign(stmt.target, stmt.value)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            resolved = self.resolver.resolve(stmt.value)
            if isinstance(resolved, EventShape):
                self.return_shape = resolved
        # Recurse into nested blocks with the same environment (no branch
        # merging: protocol code is overwhelmingly straight-line per block).
        for block in ("body", "orelse", "finalbody"):
            children = getattr(stmt, block, None)
            if children and not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                self._walk(children)
        for handler in getattr(stmt, "handlers", []) or []:
            self._walk(handler.body)

    # -- helpers -------------------------------------------------------
    def _statement_expressions(self, stmt: ast.stmt):
        """Expression roots of a statement, excluding its nested blocks."""
        for name, value in ast.iter_fields(stmt):
            if name in ("body", "orelse", "finalbody", "handlers"):
                continue
            if isinstance(value, ast.expr):
                yield value
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.expr):
                        yield item

    def _iter_exprs(self, stmt: ast.stmt):
        for root in self._statement_expressions(stmt):
            stack = [root]
            while stack:
                node = stack.pop()
                if isinstance(node, ast.Lambda):
                    continue
                yield node
                stack.extend(ast.iter_child_nodes(node))

    def _has_yield(self, expr: ast.AST) -> bool:
        return any(
            isinstance(node, (ast.Yield, ast.YieldFrom)) for node in ast.walk(expr)
        )

    def _extract_yields(self, stmt: ast.stmt) -> None:
        yields = [
            node
            for node in self._iter_exprs(stmt)
            if isinstance(node, ast.Yield) and node.value is not None
        ]
        for node in sorted(yields, key=lambda item: (item.lineno, item.col_offset)):
            resolved = self.resolver.resolve(node.value)
            if isinstance(resolved, WaitExpr):
                shape, has_timeout = resolved.shape, resolved.has_timeout
            elif isinstance(resolved, EventShape):
                shape, has_timeout = resolved, False  # ``yield event`` shorthand
            else:
                self.unresolved_yields += 1
                continue
            self.func.wait_sites.append(
                WaitSite(
                    path=self.scan.path,
                    module=self.scan.module,
                    qualname=self.func.qualname,
                    lineno=node.lineno,
                    col=node.col_offset,
                    shape=shape,
                    has_timeout=has_timeout,
                    dedicated=self.func.dedicated,
                    replica=self.func.replica,
                )
            )

    def _observe_calls(self, stmt: ast.stmt) -> None:
        calls = [node for node in self._iter_exprs(stmt) if isinstance(node, ast.Call)]
        for call in sorted(calls, key=lambda item: (item.lineno, item.col_offset)):
            self.resolver.observe_call(call)


# ---------------------------------------------------------------------------
# Module scan
# ---------------------------------------------------------------------------


def scan_module(path: str) -> ModuleScan:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        tree = ast.parse(source, filename=path)
    except (OSError, SyntaxError) as exc:
        raise ScanError(f"cannot scan {path}: {exc}") from exc
    source_lines = source.splitlines()
    scan = ModuleScan(
        path=path,
        module=_module_name(path),
        tree=tree,
        source_lines=source_lines,
        suppressions=parse_suppressions(source_lines),
    )

    functions: List[Tuple[ast.AST, FunctionScan]] = []

    def visit_body(body, class_name: Optional[str], replica: bool, prefix: str):
        for node in body:
            if isinstance(node, ast.ClassDef):
                visit_body(
                    node.body,
                    node.name,
                    _class_is_replica(node),
                    f"{prefix}{node.name}.",
                )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                func_scan = FunctionScan(
                    qualname=f"{prefix}{node.name}",
                    name=node.name,
                    lineno=node.lineno,
                    end_lineno=getattr(node, "end_lineno", node.lineno),
                    is_coroutine=_contains_yield(node),
                    class_name=class_name,
                    replica=replica,
                    callees=_callees(node),
                )
                functions.append((node, func_scan))
                scan.functions.append(func_scan)
                scan.by_name[func_scan.name] = func_scan
                visit_body(node.body, class_name, replica, f"{prefix}{node.name}.")

    visit_body(tree.body, None, False, "")

    # Dedication: spawn targets with dedication=..., closed over functions
    # reachable *only* from dedicated coroutines.
    _propagate_dedication(scan, _dedicated_spawn_targets(tree))

    # def-line suppressions extend over the whole function body.
    for _node, func_scan in functions:
        rules = scan.suppressions.line_rules.get(func_scan.lineno)
        if rules:
            scan.suppressions.span_rules.append(
                (func_scan.lineno, func_scan.end_lineno, set(rules))
            )

    # Pass 1: infer helper return shapes; pass 2: extract wait sites.
    return_shapes: Dict[str, EventShape] = {}
    for node, func_scan in functions:
        walker = _FunctionWalker(scan, func_scan, node, {})
        func_scan.wait_sites.clear()
        if walker.return_shape is not None:
            return_shapes[func_scan.name] = walker.return_shape
    for node, func_scan in functions:
        func_scan.wait_sites.clear()
        _FunctionWalker(scan, func_scan, node, return_shapes)
    return scan


def _propagate_dedication(scan: ModuleScan, roots: Set[str]) -> None:
    """A function is dedicated if it is a dedicated spawn target, or if
    every function that calls it is itself dedicated (fixpoint)."""
    callers: Dict[str, Set[str]] = {}
    for func in scan.functions:
        for callee in func.callees:
            callers.setdefault(callee, set()).add(func.name)
    dedicated: Set[str] = set(roots)
    changed = True
    while changed:
        changed = False
        for func in scan.functions:
            if func.name in dedicated:
                continue
            calling = callers.get(func.name, set())
            if calling and calling <= dedicated:
                dedicated.add(func.name)
                changed = True
    for func in scan.functions:
        if func.name in dedicated:
            func.dedicated = True
            for site in func.wait_sites:
                site.dedicated = True


def scan_paths(paths: Iterable[str]) -> List[ModuleScan]:
    return [scan_module(path) for path in collect_files(paths)]
