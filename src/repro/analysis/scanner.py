"""AST scanner: parse modules and extract the structural facts the
whole-program analysis runs on.

One :class:`ModuleScan` per file. The scanner

* finds every function and whether it is a *coroutine* (contains a
  ``yield``), mirroring how the runtime spawns generator coroutines;
* detects **replica-group classes** — classes that guard group membership
  (``if node_id not in group: raise``) or compute a ``self.peers`` list —
  which is where the paper's §3.1 quorum-only property applies;
* records every resolvable **call site** (``self.method`` dispatch and
  bare-name calls) so :mod:`repro.analysis.callgraph` can link the
  program together;
* parses ``# depfast: allow(DFnnn)`` / ``# depfast: allow-file(DFnnn)``
  suppression comments.

Shape resolution itself — wait sites, dedication, interprocedural
summaries — happens in :mod:`repro.analysis.interproc`, which
:func:`scan_module` / :func:`scan_paths` invoke so a freshly-scanned
module always carries its wait sites.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.model import (
    CallSite,
    FunctionScan,
    Suppressions,
)

_ALLOW_RE = re.compile(r"#\s*depfast:\s*(allow|allow-file)\(([^)]*)\)")
_RULE_SPLIT_RE = re.compile(r"[,\s]+")


@dataclass
class ModuleScan:
    """Everything the analysis knows about one source file."""

    path: str
    module: str
    tree: ast.Module
    source_lines: List[str]
    functions: List[FunctionScan] = field(default_factory=list)
    suppressions: Suppressions = field(default_factory=Suppressions)
    # qualname -> FunctionScan for call-graph lookups.
    by_name: Dict[str, FunctionScan] = field(default_factory=dict)
    # The Program this scan was last analyzed under (set by analyze()).
    program: Optional[object] = None


class ScanError(RuntimeError):
    """Raised when a path cannot be scanned (missing, unparsable)."""


# ---------------------------------------------------------------------------
# Path collection
# ---------------------------------------------------------------------------


def collect_files(paths: Iterable[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in ("__pycache__", ".git")
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        files.append(os.path.join(dirpath, filename))
        elif os.path.isfile(path) and path.endswith(".py"):
            files.append(path)
        else:
            raise ScanError(f"not a python file or directory: {path}")
    # Whole-program results must not depend on argument order: the same
    # file set always analyzes in the same sequence.
    seen: Set[str] = set()
    ordered: List[str] = []
    for file in sorted(files):
        if file not in seen:
            seen.add(file)
            ordered.append(file)
    return ordered


def _module_name(path: str) -> str:
    parts = os.path.normpath(path).split(os.sep)
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    name = "/".join(parts)
    name = name[:-3] if name.endswith(".py") else name
    return name.replace("/", ".").removesuffix(".__init__")


# ---------------------------------------------------------------------------
# Suppression comments
# ---------------------------------------------------------------------------


def parse_suppressions(source_lines: List[str]) -> Suppressions:
    suppressions = Suppressions()
    for index, line in enumerate(source_lines, start=1):
        match = _ALLOW_RE.search(line)
        if not match:
            continue
        rules = {
            rule.strip().upper()
            for rule in _RULE_SPLIT_RE.split(match.group(2))
            if rule.strip()
        }
        if match.group(1) == "allow-file":
            suppressions.file_rules |= rules
            continue
        suppressions.line_rules.setdefault(index, set()).update(rules)
        if line.lstrip().startswith("#"):
            # A standalone comment suppresses the next *code* line, skipping
            # the rest of the comment block (justifications span lines).
            target = index + 1
            while target <= len(source_lines):
                stripped = source_lines[target - 1].strip()
                if stripped and not stripped.startswith("#"):
                    break
                target += 1
            if target <= len(source_lines):
                suppressions.line_rules.setdefault(target, set()).update(rules)
    return suppressions


# ---------------------------------------------------------------------------
# Class / function discovery
# ---------------------------------------------------------------------------


def _contains_yield(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if _owner_function(func, node):
                return True
    return False


def _iter_own_nodes(func: ast.AST):
    """Walk a function's AST without descending into nested functions."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _owner_function(func: ast.AST, target: ast.AST) -> bool:
    return any(node is target for node in _iter_own_nodes(func))


def _class_is_replica(cls: ast.ClassDef) -> bool:
    """Replica-group code: a class whose constructor asserts membership in
    a group list, or which derives a ``self.peers`` list."""
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr == "peers"
                ):
                    return True
        if isinstance(node, ast.If) and isinstance(node.test, ast.Compare):
            if any(isinstance(op, ast.NotIn) for op in node.test.ops) and any(
                isinstance(child, ast.Raise) for child in node.body
            ):
                return True
    return False


def _call_sites(func: ast.AST) -> List[CallSite]:
    """Resolvable call sites: ``self.method(...)`` and bare ``name(...)``,
    in deterministic source order."""
    sites: List[CallSite] = []
    for node in _iter_own_nodes(func):
        if not isinstance(node, ast.Call):
            continue
        target = node.func
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            sites.append(
                CallSite(target.attr, True, node.lineno, node.col_offset)
            )
        elif isinstance(target, ast.Name):
            sites.append(
                CallSite(target.id, False, node.lineno, node.col_offset)
            )
    sites.sort(key=lambda site: (site.lineno, site.col, site.name))
    return sites


def _param_names(node: ast.AST) -> List[str]:
    args = node.args
    names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    names += [a.arg for a in args.kwonlyargs]
    return names


# ---------------------------------------------------------------------------
# Module scan
# ---------------------------------------------------------------------------


def parse_module(path: str) -> ModuleScan:
    """Parse one file and extract structure; no shape analysis yet."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        tree = ast.parse(source, filename=path)
    except (OSError, SyntaxError) as exc:
        raise ScanError(f"cannot scan {path}: {exc}") from exc
    source_lines = source.splitlines()
    scan = ModuleScan(
        path=path,
        module=_module_name(path),
        tree=tree,
        source_lines=source_lines,
        suppressions=parse_suppressions(source_lines),
    )

    def visit_body(body, class_name: Optional[str], replica: bool, prefix: str):
        for node in body:
            if isinstance(node, ast.ClassDef):
                visit_body(
                    node.body,
                    node.name,
                    _class_is_replica(node),
                    f"{prefix}{node.name}.",
                )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                func_scan = FunctionScan(
                    qualname=f"{prefix}{node.name}",
                    name=node.name,
                    lineno=node.lineno,
                    end_lineno=getattr(node, "end_lineno", node.lineno),
                    is_coroutine=_contains_yield(node),
                    class_name=class_name,
                    replica=replica,
                    callees={site.name for site in _call_sites(node)},
                    module=scan.module,
                    path=scan.path,
                    node=node,
                    param_names=_param_names(node),
                    call_sites=_call_sites(node),
                )
                scan.functions.append(func_scan)
                scan.by_name[func_scan.name] = func_scan
                visit_body(node.body, class_name, replica, f"{prefix}{node.name}.")

    visit_body(tree.body, None, False, "")

    # def-line suppressions extend over the whole function body.
    for func_scan in scan.functions:
        rules = scan.suppressions.line_rules.get(func_scan.lineno)
        if rules:
            scan.suppressions.span_rules.append(
                (func_scan.lineno, func_scan.end_lineno, set(rules))
            )
    return scan


def scan_module(path: str) -> ModuleScan:
    """Parse + analyze one file as its own single-module program."""
    from repro.analysis.interproc import analyze

    scan = parse_module(path)
    analyze([scan])
    return scan


def scan_paths(paths: Iterable[str], xfunc: bool = True) -> List[ModuleScan]:
    """Parse + analyze a file set as one whole program (the default), or
    per-module with ``xfunc=False``."""
    from repro.analysis.interproc import analyze

    scans = [parse_module(path) for path in collect_files(paths)]
    analyze(scans, xfunc=xfunc)
    return scans
