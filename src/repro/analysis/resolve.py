"""Intra-function data-flow: resolve expressions to event shapes.

The resolver walks one function body in source order keeping a small
abstract environment ``name -> EventShape``. It understands the event
constructors of :mod:`repro.events`, the RPC layer's ``endpoint.call`` /
``QuorumCall`` idioms, ``.wait(timeout_ms=...)`` descriptors, quorum
``.add(child)`` accumulation, and one level of interprocedural return-shape
propagation (``rpc = self._send_append(...)`` resolves through the helper's
``return`` statement). Anything else resolves to ``UNKNOWN`` — the linter
only ever flags what it resolved with confidence, never what it could not.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Union

from repro.analysis.model import UNKNOWN, EventShape, WaitExpr, local_shape

Resolved = Union[EventShape, WaitExpr, object]  # object == UNKNOWN sentinel

# Constructor name -> event kind for basic events.
_BASIC_CONSTRUCTORS = {
    "Event": "event",
    "ValueEvent": "value",
    "RpcEvent": "rpc",
}
_LOCAL_CONSTRUCTORS = {
    "TimerEvent": "timer",
    "SharedIntEvent": "shared_int",
    "DiskEvent": "disk",
    "CpuEvent": "cpu",
    "NeverEvent": "never",
}
# Method names whose call yields a local (same-node) wait shape.
_LOCAL_METHODS = {"sleep", "compute", "timer", "sync", "read", "write", "fsync"}

_LOCAL_SOURCE_EXPRS = frozenset(
    {"None", "self.id", "self.node", "self.node_id", "self.node.node_id"}
)


def unparse(node: Optional[ast.AST]) -> str:
    if node is None:
        return "None"
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - malformed nodes
        return "<expr>"


def source_is_remote(expr: Optional[ast.AST]) -> bool:
    """Heuristic: does this ``source=`` expression denote another node?"""
    if expr is None:
        return False
    text = unparse(expr)
    return text not in _LOCAL_SOURCE_EXPRS


def _call_name(func: ast.AST) -> Optional[str]:
    """Terminal name of a call target: ``QuorumEvent`` / ``wait`` / ...."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _kwarg(call: ast.Call, name: str) -> Optional[ast.AST]:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def _is_none(node: Optional[ast.AST]) -> bool:
    return node is None or (isinstance(node, ast.Constant) and node.value is None)


def exprs_equal(a: Optional[str], b: Optional[str]) -> bool:
    return a is not None and b is not None and a == b


def callee_ref(func: ast.AST) -> Optional[tuple]:
    """``(name, is_self)`` for call targets the call graph can resolve:
    bare names and ``self.method``. Anything else returns ``None``."""
    if isinstance(func, ast.Name):
        return (func.id, False)
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
    ):
        return (func.attr, True)
    return None


class ShapeResolver:
    """Resolves expressions against an abstract environment.

    ``return_shapes`` maps helper-function bare names (methods of the same
    class or module functions) to the shape their ``return`` statement
    resolves to, enabling ``rpc = self._helper(...)`` to see through one
    call level. ``oracle`` is the interprocedural upgrade: an object with
    ``callee_return(call)`` / ``self_attr(attr)`` hooks backed by the
    whole-program fixpoint tables, letting shapes flow through any number
    of call hops and through ``self.`` attributes.
    """

    def __init__(
        self,
        return_shapes: Optional[Dict[str, EventShape]] = None,
        oracle: Optional[object] = None,
    ):
        self.env: Dict[str, EventShape] = {}
        self.return_shapes = return_shapes or {}
        self.oracle = oracle

    # ------------------------------------------------------------------
    # Statement effects
    # ------------------------------------------------------------------
    def assign(self, target: ast.AST, value: ast.AST) -> None:
        """Apply ``target = value`` to the environment."""
        shape = self.resolve(value)
        if isinstance(target, ast.Name):
            if isinstance(shape, EventShape):
                self.env[target.id] = shape
            else:
                self.env.pop(target.id, None)

    def observe_call(self, call: ast.Call) -> None:
        """Track quorum ``.add(child)`` accumulation on known variables."""
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "add"
            and isinstance(func.value, ast.Name)
        ):
            held = self.env.get(func.value.id)
            if held is not None and held.kind in ("quorum", "and", "or"):
                held.added_children += len(call.args)
                for arg in call.args:
                    child = self.resolve(arg)
                    if isinstance(child, EventShape):
                        held.children.append(child)
                        if child.remote:
                            held.remote = True
                            held.sources.extend(child.sources)

    # ------------------------------------------------------------------
    # Expression resolution
    # ------------------------------------------------------------------
    def resolve(self, node: ast.AST) -> Resolved:
        if isinstance(node, ast.Name):
            return self.env.get(node.id, UNKNOWN)
        if isinstance(node, ast.Attribute):
            # ``call.event`` on a QuorumCall-like shape is the quorum itself.
            if node.attr == "event":
                inner = self.resolve(node.value)
                if isinstance(inner, EventShape) and inner.is_quorum():
                    return inner
            # ``self.attr`` reads resolve through the class-wide attribute
            # table when the interprocedural oracle is wired in.
            if (
                self.oracle is not None
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                shape = self.oracle.self_attr(node.attr)
                if shape is not None:
                    return shape
            return UNKNOWN
        if isinstance(node, ast.Await):
            return self.resolve(node.value)
        if isinstance(node, ast.Call):
            return self._resolve_call(node)
        return UNKNOWN

    def _resolve_call(self, call: ast.Call) -> Resolved:
        name = _call_name(call.func)
        if name is None:
            return UNKNOWN

        if name == "wait":
            return self._resolve_wait(call)
        if name in _BASIC_CONSTRUCTORS:
            return self._resolve_basic(call, _BASIC_CONSTRUCTORS[name])
        if name in _LOCAL_CONSTRUCTORS:
            return local_shape(_LOCAL_CONSTRUCTORS[name])
        if name == "QuorumEvent":
            return self._resolve_quorum_event(call)
        if name == "QuorumCall":
            return self._resolve_quorum_call(call)
        if name in ("AndEvent", "OrEvent"):
            return self._resolve_compound(call, "and" if name == "AndEvent" else "or")
        if name == "call" and call.args:
            # endpoint.call(target, method, ...) — an outbound RPC.
            target = unparse(call.args[0])
            return EventShape(kind="rpc", sources=[target], remote=True)
        if name in _LOCAL_METHODS:
            return local_shape()
        # Interprocedural propagation: self._helper(...) or module_fn(...)
        # whose (fixpoint) return summary resolved to a shape. The oracle
        # sees through any number of hops and across modules; the legacy
        # ``return_shapes`` map keeps single-module one-hop behavior for
        # callers that construct a resolver directly.
        if self.oracle is not None:
            returned = self.oracle.callee_return(call)
            if returned is not None:
                return returned
        returned = self.return_shapes.get(name)
        if returned is not None:
            return returned.clone()
        return UNKNOWN

    def _resolve_wait(self, call: ast.Call) -> Resolved:
        assert isinstance(call.func, ast.Attribute)
        receiver = self.resolve(call.func.value)
        if not isinstance(receiver, EventShape):
            return UNKNOWN
        timeout = _kwarg(call, "timeout_ms")
        if timeout is None and call.args:
            timeout = call.args[0]
        return WaitExpr(shape=receiver, has_timeout=not _is_none(timeout))

    def _resolve_basic(self, call: ast.Call, kind: str) -> EventShape:
        if kind == "rpc":
            # RpcEvent(method, to_node) — to_node is positional arg 1 or kw.
            target = _kwarg(call, "to_node")
            if target is None and len(call.args) > 1:
                target = call.args[1]
            return EventShape(
                kind=kind,
                sources=[unparse(target)] if target is not None else [],
                remote=target is not None,
            )
        source = _kwarg(call, "source")
        if source is None or _is_none(source):
            return EventShape(kind=kind, remote=False)
        return EventShape(
            kind=kind, sources=[unparse(source)], remote=source_is_remote(source)
        )

    def _resolve_quorum_event(self, call: ast.Call) -> EventShape:
        k = _kwarg(call, "quorum")
        if k is None and call.args:
            k = call.args[0]
        n = _kwarg(call, "n_total")
        if n is None and len(call.args) > 1:
            n = call.args[1]
        k_expr = unparse(k) if k is not None else None
        n_expr = unparse(n) if n is not None and not _is_none(n) else None
        return EventShape(
            kind="quorum",
            k_expr=k_expr,
            n_expr=n_expr,
            tight=_statically_tight(k, n, k_expr, n_expr),
            remote=False,  # children decide; .add() calls update this
        )

    def _resolve_quorum_call(self, call: ast.Call) -> EventShape:
        # QuorumCall(endpoint, targets, method, ..., quorum=k): a broadcast
        # whose n is the target count.
        targets = call.args[1] if len(call.args) > 1 else _kwarg(call, "targets")
        k = _kwarg(call, "quorum")
        k_expr = unparse(k) if k is not None else "1"
        n_expr = f"len({unparse(targets)})" if targets is not None else None
        tight = exprs_equal(k_expr, n_expr)
        if not tight and k is not None and targets is not None:
            tight = _constant_eq_len(k, targets)
        return EventShape(
            kind="quorum",
            sources=[unparse(targets)] if targets is not None else [],
            remote=True,
            k_expr=k_expr,
            n_expr=n_expr,
            tight=tight,
        )

    def _resolve_compound(self, call: ast.Call, kind: str) -> EventShape:
        children: List[EventShape] = []
        sources: List[str] = []
        remote = False
        for arg in call.args:
            child = self.resolve(arg)
            if isinstance(child, EventShape):
                children.append(child)
                if child.remote:
                    remote = True
                    sources.extend(child.sources)
            else:
                children.append(EventShape(kind="unknown"))
        return EventShape(kind=kind, children=children, sources=sources, remote=remote)


def _statically_tight(
    k: Optional[ast.AST],
    n: Optional[ast.AST],
    k_expr: Optional[str],
    n_expr: Optional[str],
) -> Optional[bool]:
    """True when ``k == n`` is certain, False when ``k < n`` is plausible,
    None when nothing is known (no n at construction time)."""
    if n is None or n_expr is None:
        return None
    if exprs_equal(k_expr, n_expr):
        return True
    if (
        isinstance(k, ast.Constant)
        and isinstance(n, ast.Constant)
        and isinstance(k.value, int)
        and isinstance(n.value, int)
    ):
        return k.value >= n.value
    return False


def _constant_eq_len(k: ast.AST, targets: ast.AST) -> bool:
    """``quorum=len(peers)`` over ``targets=peers`` — tight by construction."""
    return (
        isinstance(k, ast.Call)
        and _call_name(k.func) == "len"
        and len(k.args) == 1
        and unparse(k.args[0]) == unparse(targets)
    )
