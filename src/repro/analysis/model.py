"""Data model for the static fail-slow tolerance analysis (depfast-lint).

The analyzer mirrors the *runtime* verification vocabulary of
:mod:`repro.trace`: a coroutine blocks at **wait sites**, each wait is on
an **event shape** (basic vs quorum vs And/Or composition, local vs
remote source, bounded vs unbounded), and the paper's §3.1 property —
"code that only uses QuorumEvent and has no other waiting points" — is a
predicate over those shapes. Here the shapes come from the AST instead of
from a trace, which is what makes the check shift-left: anti-patterns are
findings at authoring time, before any simulation runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

# Severity levels. ``error`` findings fail the default lint run; ``warning``
# findings fail only under ``--strict``.
ERROR = "error"
WARNING = "warning"


@dataclass
class Rule:
    """One lint rule: id, severity and a one-line description."""

    rule_id: str
    severity: str
    title: str
    description: str


RULES: Dict[str, Rule] = {
    rule.rule_id: rule
    for rule in (
        Rule(
            "DF001",
            ERROR,
            "solo-wait",
            "basic-Event inter-node wait in replica-group code: one "
            "fail-slow peer stalls the waiter (the paper's red edge)",
        ),
        Rule(
            "DF002",
            ERROR,
            "unbounded-wait",
            "inter-node wait with no timeout: a fail-slow source can park "
            "the coroutine forever",
        ),
        Rule(
            "DF003",
            ERROR,
            "blocking-call",
            "blocking call (time.sleep / file IO / network IO) inside a "
            "coroutine body: stalls the whole scheduler, not one task",
        ),
        Rule(
            "DF004",
            WARNING,
            "event-leak",
            "event constructed but never triggered, waited on, or composed: "
            "any coroutine parked on it later waits forever",
        ),
        Rule(
            "DF005",
            WARNING,
            "tight-quorum",
            "quorum with k == n: every member is on the critical path, so "
            "the quorum degenerates to an all-wait",
        ),
        Rule(
            "DF006",
            ERROR,
            "yield-starvation",
            "loop with no wait point and no way to make progress: busy-waits "
            "and starves the cooperative scheduler",
        ),
        Rule(
            "DF007",
            WARNING,
            "fire-and-forget-hedge",
            "hedged/duplicated send with no cancellation path: losing copies "
            "run to completion and re-impose the straggler's cost",
        ),
        Rule(
            "DF008",
            WARNING,
            "wall-clock-read",
            "wall-clock read (time.time / monotonic / datetime.now) in "
            "sim-driven code: real time leaks into virtual time and every "
            "golden trace hash silently diverges",
        ),
        Rule(
            "DF009",
            WARNING,
            "unseeded-random",
            "module-level random.* call outside repro.sim.rng: draws from "
            "the shared unseeded generator, so two runs with the same seed "
            "make different choices",
        ),
        Rule(
            "DF010",
            WARNING,
            "unordered-iteration",
            "iteration over a set (or other unordered collection) whose "
            "element order flows into a send/spawn/schedule call: iteration "
            "order is hash-randomized, so event order differs run to run — "
            "wrap the iterable in sorted()",
        ),
        Rule(
            "DF011",
            WARNING,
            "stale-read-across-yield",
            "shared self. field snapshotted before a yield and relied on "
            "after it without revalidation: the field can change while the "
            "coroutine is parked (the cooperative-runtime analog of a race)",
        ),
    )
}

# Rule families: the determinism sanitizer (DF008-DF011) guards the golden
# trace hashes; everything earlier guards fail-slow tolerance itself.
SANITIZER_RULES = frozenset({"DF008", "DF009", "DF010", "DF011"})


# ---------------------------------------------------------------------------
# Event shapes — the static analog of Event.wait_edges()
# ---------------------------------------------------------------------------

# Shape kinds; these intentionally match the runtime ``Event.kind`` strings
# so the static↔runtime SPG diff can line the two worlds up.
BASIC_KINDS = frozenset({"event", "value", "rpc"})
LOCAL_KINDS = frozenset({"timer", "shared_int", "disk", "cpu", "never", "local"})
COMPOUND_KINDS = frozenset({"and", "or"})

# Source expressions that statically denote "this node" — waits sourced at
# self are local (disk, CPU, own promises) and draw no SPG edge.
LOCAL_SOURCE_EXPRS = frozenset(
    {"None", "self.id", "self.node", "self.node_id", "self.node.node_id"}
)

# Event constructors tracked for ownership analysis (DF004 leaks) and
# fresh-event provenance in the interprocedural fixpoint.
EVENT_CONSTRUCTORS = frozenset(
    {
        "Event",
        "ValueEvent",
        "RpcEvent",
        "SharedIntEvent",
        "QuorumEvent",
        "AndEvent",
        "OrEvent",
        "NeverEvent",
    }
)


@dataclass
class EventShape:
    """Statically-resolved structure of one event expression.

    ``k_expr``/``n_expr`` are the unparsed quorum arguments (``None`` when
    not a quorum); ``tight`` is True when ``k == n`` is statically certain.
    ``sources`` holds the unparsed source expressions of basic events;
    ``remote`` is True when at least one dependency leaves this node.
    """

    kind: str
    sources: List[str] = field(default_factory=list)
    remote: bool = False
    k_expr: Optional[str] = None
    n_expr: Optional[str] = None
    tight: Optional[bool] = None
    children: List["EventShape"] = field(default_factory=list)
    # How many .add() calls were observed on this (quorum) shape; used to
    # infer n when n_total is not given.
    added_children: int = 0

    def is_basic(self) -> bool:
        return self.kind in BASIC_KINDS

    def is_quorum(self) -> bool:
        return self.kind == "quorum"

    def is_local(self) -> bool:
        return not self.remote

    def clone(self) -> "EventShape":
        """Deep copy, so one summary table entry feeds many call sites
        without sharing mutable quorum state (``.add()`` accounting)."""
        return EventShape(
            kind=self.kind,
            sources=list(self.sources),
            remote=self.remote,
            k_expr=self.k_expr,
            n_expr=self.n_expr,
            tight=self.tight,
            children=[child.clone() for child in self.children],
            added_children=self.added_children,
        )

    def describe(self) -> str:
        if self.is_quorum():
            k = self.k_expr or "?"
            n = self.n_expr or (str(self.added_children) if self.added_children else "?")
            return f"quorum({k} of {n})"
        if self.kind in COMPOUND_KINDS:
            inner = ", ".join(child.describe() for child in self.children)
            return f"{self.kind}({inner})"
        if self.sources:
            return f"{self.kind}[source={', '.join(self.sources)}]"
        return self.kind


def local_shape(kind: str = "local") -> EventShape:
    return EventShape(kind=kind, remote=False)


UNKNOWN = object()  # sentinel: expression did not resolve to an event


@dataclass
class WaitExpr:
    """A resolved ``<event>.wait(...)`` (or bare event) expression."""

    shape: EventShape
    has_timeout: bool


# ---------------------------------------------------------------------------
# Scan results
# ---------------------------------------------------------------------------


@dataclass
class WaitSite:
    """One ``yield <wait>`` in a coroutine, with its resolved shape."""

    path: str
    module: str
    qualname: str
    lineno: int
    col: int
    shape: EventShape
    has_timeout: bool
    dedicated: bool
    replica: bool  # enclosing class is replica-group code (directly or via
    # an interprocedural calling context)


@dataclass(frozen=True)
class CallSite:
    """One statically-resolvable call expression inside a function body.

    ``is_self`` distinguishes ``self.helper(...)`` (method dispatch through
    the enclosing class) from a bare ``helper(...)`` (module function or
    imported name). Calls through other receivers (``self.ep.call``) are
    not call-graph edges — the shape resolver models those structurally.
    """

    name: str
    is_self: bool
    lineno: int
    col: int


@dataclass
class FunctionScan:
    """Static facts about one function definition, plus the summaries the
    interprocedural fixpoint computes for it."""

    qualname: str
    name: str
    lineno: int
    end_lineno: int
    is_coroutine: bool
    class_name: Optional[str]
    replica: bool
    dedicated: bool = False
    callees: Set[str] = field(default_factory=set)
    wait_sites: List[WaitSite] = field(default_factory=list)
    # -- whole-program fields (populated by scanner + callgraph) --------
    module: str = ""
    path: str = ""
    node: Optional[object] = None  # the ast.FunctionDef, for the rules pass
    param_names: List[str] = field(default_factory=list)
    call_sites: List[CallSite] = field(default_factory=list)
    # Replica context inherited through the call graph: some replica-class
    # method (transitively) calls this function.
    replica_context: bool = False
    # Reachable from non-replica code too (client/driver side).
    boundary_context: bool = False
    # -- interprocedural summaries --------------------------------------
    # The shape this function's ``return`` resolves to, after the fixpoint.
    return_shape: Optional[EventShape] = None
    # True when the returned event is freshly constructed here (or by a
    # leaking callee) and this function neither waits, triggers, stores,
    # nor composes it: dropping the call's result orphans the event.
    leaks_return: bool = False
    # Parameter names this function consumes (waits/triggers/stores/adds).
    consumed_params: Set[str] = field(default_factory=set)


@dataclass
class Suppressions:
    """`# depfast: allow(...)` carve-outs for one file.

    Mirrors the runtime checker's ``dedication`` exemption: the author
    asserts a flagged wait is deliberate, and the justification rides in
    the trailing comment text.
    """

    file_rules: Set[str] = field(default_factory=set)
    line_rules: Dict[int, Set[str]] = field(default_factory=dict)
    # Function spans (start, end) -> rules, from allow() on a `def` line.
    span_rules: List[Tuple[int, int, Set[str]]] = field(default_factory=list)

    def allows(self, rule_id: str, lineno: int) -> bool:
        if rule_id in self.file_rules:
            return True
        if rule_id in self.line_rules.get(lineno, set()):
            return True
        for start, end, rules in self.span_rules:
            if start <= lineno <= end and rule_id in rules:
                return True
        return False


@dataclass
class Finding:
    """One rule violation (possibly suppressed by an allow comment)."""

    rule_id: str
    path: str
    lineno: int
    col: int
    qualname: str
    message: str
    suppressed: bool = False
    # Present in an accepted ``--baseline`` file: reported, but does not
    # fail the run (only *new* findings gate).
    baselined: bool = False

    @property
    def severity(self) -> str:
        return RULES[self.rule_id].severity

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.lineno, self.col, self.rule_id)
