"""Interprocedural event-shape dataflow: a shared fixpoint over the
whole-program call graph.

Shapes flow along three channels until nothing changes:

* **returns** — what a function's ``return`` statement resolves to, so
  ``rpc = self._h1(peer)`` sees through ``_h1 -> _h2 -> endpoint.call``
  no matter how many hops deep the event is built;
* **parameters** — shapes passed at resolved call sites bind to the
  callee's parameter names, so a helper that waits on an event handed in
  by its caller gets a real wait site (and DF001/DF002 can fire there);
* **``self.`` attributes** — ``self.commit_gate = QuorumEvent(...)`` in
  one method is visible to ``yield self.commit_gate.wait()`` in another.

The shape domain is a flat lattice per table entry: *bottom* (no shape
yet) -> one concrete :class:`EventShape` -> *conflict* (two structurally
different shapes met; resolves to unknown). Every entry therefore changes
at most twice, which bounds the fixpoint; ``MAX_PASSES`` is a belt-and-
braces cap on top (mutually-recursive helpers hit conflict or stabilize
well before it). Findings only ever come from *resolved* facts, so
conflict never produces a false positive — only a missed finding.

Alongside shapes, the fixpoint computes the ownership summaries DF004
needs: ``leaks_return`` (the function returns a freshly-constructed event
it never waits on, triggers, stores, or composes — dropping the call's
result orphans the event) and ``consumed_params`` (parameters the
function does consume, transitively through further resolved calls).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.callgraph import Program
from repro.analysis.model import (
    EVENT_CONSTRUCTORS,
    EventShape,
    FunctionScan,
    WaitExpr,
    WaitSite,
)
from repro.analysis.resolve import ShapeResolver, _call_name, callee_ref

MAX_PASSES = 12

_CONFLICT = object()

# Method calls on an event variable that constitute consumption: the event
# is waited on, triggered, composed, or cancelled — it has an owner.
_CONSUMING_METHODS = frozenset(
    {"wait", "trigger", "add", "cancel", "cancel_send", "set", "abort"}
)


class ShapeTables:
    """The shared fixpoint state: per-function return shapes, per-parameter
    incoming shapes, and per-class ``self.`` attribute shapes."""

    def __init__(self) -> None:
        self._returns: Dict[int, object] = {}
        self._params: Dict[Tuple[int, str], object] = {}
        self._attrs: Dict[Tuple[str, str, str], object] = {}
        self.changed = False
        self.passes = 0

    # -- joins ----------------------------------------------------------
    def _join(self, store: dict, key, shape: EventShape) -> None:
        old = store.get(key)
        if old is _CONFLICT:
            return
        if old is None:
            store[key] = shape.clone()
            self.changed = True
        elif old != shape:
            store[key] = _CONFLICT
            self.changed = True

    def join_return(self, func: FunctionScan, shape: EventShape) -> None:
        self._join(self._returns, id(func), shape)

    def join_param(self, func: FunctionScan, name: str, shape: EventShape) -> None:
        self._join(self._params, (id(func), name), shape)

    def join_attr(
        self, module: str, class_name: str, attr: str, shape: EventShape
    ) -> None:
        self._join(self._attrs, (module, class_name, attr), shape)

    # -- lookups --------------------------------------------------------
    @staticmethod
    def _get(store: dict, key) -> Optional[EventShape]:
        value = store.get(key)
        if value is None or value is _CONFLICT:
            return None
        return value

    def return_of(self, func: FunctionScan) -> Optional[EventShape]:
        return self._get(self._returns, id(func))

    def param_of(self, func: FunctionScan, name: str) -> Optional[EventShape]:
        return self._get(self._params, (id(func), name))

    def attr_of(
        self, module: str, class_name: str, attr: str
    ) -> Optional[EventShape]:
        return self._get(self._attrs, (module, class_name, attr))


class _Oracle:
    """Per-function adapter the :class:`ShapeResolver` consults."""

    def __init__(self, program: Program, tables: ShapeTables, func: FunctionScan):
        self.program = program
        self.tables = tables
        self.func = func

    def resolve_callee(self, call: ast.Call) -> Optional[FunctionScan]:
        ref = callee_ref(call.func)
        if ref is None:
            return None
        return self.program.resolve_name(self.func, ref[0], ref[1])

    def callee_return(self, call: ast.Call) -> Optional[EventShape]:
        callee = self.resolve_callee(call)
        if callee is None:
            return None
        shape = self.tables.return_of(callee)
        return shape.clone() if shape is not None else None

    def self_attr(self, attr: str) -> Optional[EventShape]:
        if self.func.class_name is None:
            return None
        shape = self.tables.attr_of(self.func.module, self.func.class_name, attr)
        return shape.clone() if shape is not None else None


class FunctionWalker:
    """Processes one function's statements in source order, resolving the
    event expression of every ``yield`` against the running environment
    (seeded with the fixpoint's parameter shapes) and feeding assignments
    to ``self.`` attributes and arguments at resolved call sites back
    into the tables."""

    def __init__(
        self,
        scan,
        func_scan: FunctionScan,
        func_node: ast.AST,
        program: Program,
        tables: ShapeTables,
    ):
        self.scan = scan
        self.func = func_scan
        self.program = program
        self.tables = tables
        self.oracle = _Oracle(program, tables, func_scan)
        self.resolver = ShapeResolver(oracle=self.oracle)
        for param in func_scan.param_names:
            incoming = tables.param_of(func_scan, param)
            if incoming is not None:
                self.resolver.env[param] = incoming.clone()
        self.return_shape: Optional[EventShape] = None
        # Fresh-event provenance for the DF004 ownership summary.
        self._fresh: Set[str] = set()
        self._returned_exprs: List[ast.expr] = []
        self.unresolved_yields = 0
        self._walk(func_node.body)
        self._summarize(func_node)

    # -- statement dispatch -------------------------------------------
    def _walk(self, stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            self._statement(stmt)

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        self._extract_yields(stmt)
        self._observe_calls(stmt)
        if isinstance(stmt, ast.Assign) and not self._has_yield(stmt.value):
            for target in stmt.targets:
                self._assign(target, stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if not self._has_yield(stmt.value):
                self._assign(stmt.target, stmt.value)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            self._returned_exprs.append(stmt.value)
            resolved = self.resolver.resolve(stmt.value)
            if isinstance(resolved, EventShape):
                self.return_shape = resolved
                self.tables.join_return(self.func, resolved)
        # Recurse into nested blocks with the same environment (no branch
        # merging: protocol code is overwhelmingly straight-line per block).
        for block in ("body", "orelse", "finalbody"):
            children = getattr(stmt, block, None)
            if children and not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                self._walk(children)
        for handler in getattr(stmt, "handlers", []) or []:
            self._walk(handler.body)

    def _assign(self, target: ast.AST, value: ast.AST) -> None:
        self.resolver.assign(target, value)
        # ``self.x = <event>`` feeds the class-wide attribute table.
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and self.func.class_name is not None
        ):
            shape = self.resolver.resolve(value)
            if isinstance(shape, EventShape):
                self.tables.join_attr(
                    self.func.module, self.func.class_name, target.attr, shape
                )
        # Fresh-event provenance: a name bound to a constructor call or to
        # a call of a helper whose return leaks a fresh event.
        if isinstance(target, ast.Name) and isinstance(value, ast.Call):
            if self._is_fresh_event_call(value):
                self._fresh.add(target.id)
            else:
                self._fresh.discard(target.id)
        elif isinstance(target, ast.Name):
            self._fresh.discard(target.id)

    def _is_fresh_event_call(self, call: ast.Call) -> bool:
        name = _call_name(call.func)
        if name in EVENT_CONSTRUCTORS:
            return True
        callee = self.oracle.resolve_callee(call)
        return callee is not None and callee.leaks_return

    # -- helpers -------------------------------------------------------
    def _statement_expressions(self, stmt: ast.stmt):
        """Expression roots of a statement, excluding its nested blocks."""
        for name, value in ast.iter_fields(stmt):
            if name in ("body", "orelse", "finalbody", "handlers"):
                continue
            if isinstance(value, ast.expr):
                yield value
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.expr):
                        yield item

    def _iter_exprs(self, stmt: ast.stmt):
        for root in self._statement_expressions(stmt):
            stack = [root]
            while stack:
                node = stack.pop()
                if isinstance(node, ast.Lambda):
                    continue
                yield node
                stack.extend(ast.iter_child_nodes(node))

    def _has_yield(self, expr: ast.AST) -> bool:
        return any(
            isinstance(node, (ast.Yield, ast.YieldFrom)) for node in ast.walk(expr)
        )

    def _extract_yields(self, stmt: ast.stmt) -> None:
        yields = [
            node
            for node in self._iter_exprs(stmt)
            if isinstance(node, ast.Yield) and node.value is not None
        ]
        for node in sorted(yields, key=lambda item: (item.lineno, item.col_offset)):
            resolved = self.resolver.resolve(node.value)
            if isinstance(resolved, WaitExpr):
                shape, has_timeout = resolved.shape, resolved.has_timeout
            elif isinstance(resolved, EventShape):
                shape, has_timeout = resolved, False  # ``yield event`` shorthand
            else:
                self.unresolved_yields += 1
                continue
            self.func.wait_sites.append(
                WaitSite(
                    path=self.scan.path,
                    module=self.scan.module,
                    qualname=self.func.qualname,
                    lineno=node.lineno,
                    col=node.col_offset,
                    shape=shape,
                    has_timeout=has_timeout,
                    dedicated=self.func.dedicated,
                    replica=self.func.replica,
                )
            )

    def _observe_calls(self, stmt: ast.stmt) -> None:
        calls = [node for node in self._iter_exprs(stmt) if isinstance(node, ast.Call)]
        for call in sorted(calls, key=lambda item: (item.lineno, item.col_offset)):
            self.resolver.observe_call(call)
            self._flow_arguments(call)

    def _flow_arguments(self, call: ast.Call) -> None:
        """Bind resolved argument shapes to the callee's parameters."""
        callee = self.oracle.resolve_callee(call)
        if callee is None:
            return
        params = list(callee.param_names)
        ref = callee_ref(call.func)
        if params and params[0] == "self" and ref is not None and ref[1]:
            params = params[1:]
        for index, arg in enumerate(call.args):
            if index >= len(params):
                break
            shape = self.resolver.resolve(arg)
            if isinstance(shape, EventShape):
                self.tables.join_param(callee, params[index], shape)
        for keyword in call.keywords:
            if keyword.arg is None or keyword.arg not in callee.param_names:
                continue
            shape = self.resolver.resolve(keyword.value)
            if isinstance(shape, EventShape):
                self.tables.join_param(callee, keyword.arg, shape)

    # ------------------------------------------------------------------
    # Ownership summaries (DF004)
    # ------------------------------------------------------------------
    def _summarize(self, func_node: ast.AST) -> None:
        consumed = self._consumed_names(func_node)
        params = set(self.func.param_names) - {"self"}
        consumed_params = params & consumed
        leaks = False
        for expr in self._returned_exprs:
            if isinstance(expr, ast.Call) and self._is_fresh_event_call(expr):
                leaks = True
            elif (
                isinstance(expr, ast.Name)
                and expr.id in self._fresh
                and expr.id not in consumed
            ):
                leaks = True
        if leaks != self.func.leaks_return:
            self.func.leaks_return = leaks
            self.tables.changed = True
        if consumed_params != self.func.consumed_params:
            self.func.consumed_params = set(consumed_params)
            self.tables.changed = True

    def _consumed_names(self, func_node: ast.AST) -> Set[str]:
        """Names this function consumes: waited on, triggered, composed,
        stored, yielded, or passed to a consuming (or opaque) callee."""
        from repro.analysis.scanner import _iter_own_nodes

        consumed: Set[str] = set()
        for node in _iter_own_nodes(func_node):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.attr in _CONSUMING_METHODS
                ):
                    consumed.add(func.value.id)
                callee = self.oracle.resolve_callee(node)
                for index, arg in enumerate(node.args):
                    if not isinstance(arg, ast.Name):
                        continue
                    if callee is None:
                        # Opaque target: assume it takes ownership. The
                        # linter flags orphans it is sure about, only.
                        consumed.add(arg.id)
                    else:
                        params = list(callee.param_names)
                        ref = callee_ref(node.func)
                        if params and params[0] == "self" and ref and ref[1]:
                            params = params[1:]
                        if (
                            index < len(params)
                            and params[index] in callee.consumed_params
                        ):
                            consumed.add(arg.id)
                for keyword in node.keywords:
                    if isinstance(keyword.value, ast.Name):
                        if callee is None or (
                            keyword.arg is not None
                            and keyword.arg in callee.consumed_params
                        ):
                            consumed.add(keyword.value.id)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if not isinstance(target, (ast.Attribute, ast.Subscript)):
                        continue
                    value = node.value
                    if isinstance(value, ast.Name):
                        consumed.add(value.id)  # stored into self/container
            elif isinstance(node, ast.Yield) and isinstance(node.value, ast.Name):
                consumed.add(node.value.id)
        return consumed


# ---------------------------------------------------------------------------
# The shared fixpoint
# ---------------------------------------------------------------------------


def analyze(scans: Iterable["ModuleScan"], xfunc: bool = True) -> Program:
    """Run the whole-program analysis over ``scans``; returns the call
    graph. Mutates the scans in place: wait sites, dedication, calling
    contexts, and interprocedural summaries all land on the
    :class:`FunctionScan` s.

    ``xfunc=False`` is the escape hatch: every module is analyzed as its
    own one-file program (the PR 3 scope), so shapes never cross module
    boundaries. The fixpoint itself still runs — helper returns within a
    file keep resolving regardless of definition order."""
    scans = list(scans)
    if not xfunc and len(scans) > 1:
        for scan in scans:
            analyze([scan], xfunc=True)
        return Program(scans)  # edges only; per-module facts already set
    program = Program(scans)
    tables = ShapeTables()
    by_path = {scan.path: scan for scan in scans}

    for _iteration in range(MAX_PASSES):
        tables.changed = False
        for func in program.functions:
            if func.node is None:
                continue
            func.wait_sites.clear()
            FunctionWalker(by_path[func.path], func, func.node, program, tables)
        tables.passes += 1
        if not tables.changed:
            break

    for func in program.functions:
        func.return_shape = tables.return_of(func)

    program.propagate_dedication()
    program.propagate_contexts()
    for scan in scans:
        scan.program = program
    return program
