"""Write-ahead log with group commit.

An RSM node appends log entries and must fsync before acknowledging:
``append`` buffers bytes, ``sync`` flushes everything buffered in one disk
operation (group commit), returning a :class:`~repro.events.basic.DiskEvent`
to wait on. ``append_and_sync`` is the common one-shot.
"""

from __future__ import annotations

from repro.events.basic import DiskEvent
from repro.runtime.io_helper import IoHelperPool


class WriteAheadLog:
    """Durable append-only log for one node."""

    def __init__(self, io: IoHelperPool, name: str = "wal"):
        self.io = io
        self.name = name
        self.buffered_bytes = 0
        self.durable_bytes = 0
        self.appended_entries = 0
        self.syncs = 0

    def append(self, n_bytes: int) -> None:
        """Buffer an entry; not durable until :meth:`sync` completes."""
        if n_bytes < 0:
            raise ValueError(f"negative entry size {n_bytes}")
        self.buffered_bytes += n_bytes
        self.appended_entries += 1

    def sync(self) -> DiskEvent:
        """Flush all buffered bytes (group commit); wait on the result."""
        flushing = self.buffered_bytes
        self.buffered_bytes = 0
        self.syncs += 1
        event = self.io.fsync(pending_bytes=flushing)
        event.subscribe(lambda _ev: self._mark_durable(flushing))
        return event

    def append_and_sync(self, n_bytes: int) -> DiskEvent:
        """Append one entry and immediately flush it."""
        self.append(n_bytes)
        return self.sync()

    def read(self, n_bytes: int) -> DiskEvent:
        """Read ``n_bytes`` of old log data back from disk (cache miss path)."""
        if n_bytes < 0:
            raise ValueError(f"negative read size {n_bytes}")
        return self.io.read(n_bytes)

    def _mark_durable(self, n_bytes: int) -> None:
        self.durable_bytes += n_bytes
