"""Write-ahead log with group commit.

An RSM node appends log entries and must fsync before acknowledging:
``append`` buffers bytes, ``sync`` flushes everything buffered in one disk
operation (group commit), returning an event to wait on. ``append_and_sync``
is the common one-shot.

Two contracts matter to the layers above:

* A sync with an **empty buffer is a no-op**: it returns a pre-completed
  event without touching the disk. A real barrier would still queue the
  4 KiB flush-cache cost and — worse — emit an fsync trace point with no
  payload behind it, biasing the per-resource attribution baseline
  toward tiny latencies.
* ``sync(on_durable=...)`` invokes the callback only when the covered
  bytes actually reached the platter. Subclasses that defer the flush
  (the write-behind circuit breaker) hold the callback until the real
  fsync completes, so durability bookkeeping upstream stays honest.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.events.base import Event
from repro.runtime.io_helper import IoHelperPool


class WriteAheadLog:
    """Durable append-only log for one node."""

    def __init__(
        self,
        io: IoHelperPool,
        name: str = "wal",
        node: Optional[str] = None,
        tracer=None,
    ):
        self.io = io
        self.name = name
        self.node = node or io.node
        self.tracer = tracer
        self.buffered_bytes = 0
        self.durable_bytes = 0
        self.appended_entries = 0
        self.syncs = 0
        self.noop_syncs = 0

    def _now(self) -> float:
        return self.io.disk.kernel.now

    def append(self, n_bytes: int) -> None:
        """Buffer an entry; not durable until :meth:`sync` completes."""
        if n_bytes < 0:
            raise ValueError(f"negative entry size {n_bytes}")
        self.buffered_bytes += n_bytes
        self.appended_entries += 1

    def sync(self, on_durable: Optional[Callable[[], None]] = None) -> Event:
        """Flush all buffered bytes (group commit); wait on the result.

        ``on_durable`` fires exactly when the flushed bytes are on stable
        storage — for an empty buffer that is immediately (there was
        nothing to lose), otherwise at fsync completion.
        """
        flushing = self.buffered_bytes
        if flushing == 0:
            self.noop_syncs += 1
            ack = Event(name=f"{self.name}:sync-noop")
            ack.trigger(self._now())
            if on_durable is not None:
                on_durable()
            return ack
        self.buffered_bytes = 0
        self.syncs += 1
        return self._issue_fsync(flushing, on_durable)

    def _issue_fsync(
        self, flushing: int, on_durable: Optional[Callable[[], None]]
    ) -> Event:
        """Submit one real fsync of ``flushing`` bytes to the disk."""
        issued_at = self._now()
        if self.tracer is not None and self.node is not None:
            self.tracer.on_fsync_begin(self.node, flushing, issued_at)
        event = self.io.fsync(pending_bytes=flushing)

        def _done(_ev) -> None:
            self._mark_durable(flushing)
            self._report_fsync(flushing, issued_at)
            if on_durable is not None:
                on_durable()

        event.subscribe(_done)
        return event

    def append_and_sync(self, n_bytes: int) -> Event:
        """Append one entry and immediately flush it."""
        self.append(n_bytes)
        return self.sync()

    def read(self, n_bytes: int) -> Event:
        """Read ``n_bytes`` of old log data back from disk (cache miss path)."""
        if n_bytes < 0:
            raise ValueError(f"negative read size {n_bytes}")
        return self.io.read(n_bytes)

    def retire(self) -> None:
        """The owning process is gone: stop all background activity.

        The base WAL has none to stop; the write-behind subclass cancels
        its drain timers and drops the queue (those bytes died with the
        process). Either way any in-flight fsync dies too — reported so
        attributors tracking fsync ages drop their stale entries.
        """
        if self.tracer is not None and self.node is not None:
            self.tracer.on_fsync_abort(self.node, self._now())

    def _mark_durable(self, n_bytes: int) -> None:
        self.durable_bytes += n_bytes

    def _report_fsync(self, n_bytes: int, issued_at: float) -> None:
        if self.tracer is not None and self.node is not None:
            now = self._now()
            self.tracer.on_fsync_complete(self.node, n_bytes, now - issued_at, now)
