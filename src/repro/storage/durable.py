"""Simulated stable storage for a consensus node (survives restarts).

The simulation's :class:`~repro.storage.wal.WriteAheadLog` accounts disk
*timing* (bytes, fsyncs); this module accounts disk *contents*: which Raft
metadata, log entries and snapshot would actually be readable after a
crash. One :class:`DurableRaftState` outlives its node's process — it is
held by whoever deploys the group and handed back to the replacement
:class:`~repro.raft.node.RaftNode` on restart, which recovers by snapshot
load + WAL replay.

Durability discipline mirrors the WAL's group commit: entries are *staged*
when the node appends them to the WAL buffer and become *durable* only
when the fsync covering them completes (``begin_sync`` captures the
covered suffix; ``commit_sync`` marks it). An entry staged but not yet
synced at crash time is lost — exactly the window real Raft tolerates,
because such entries were never acknowledged.

When two syncs overlap, the staged set an fsync captured can go stale: an
entry re-staged (overwritten, or appended at a recycled index) after
``begin_sync`` holds bytes the in-flight fsync never saw. ``begin_sync``
therefore returns ``(index, staging_seq)`` pairs and ``commit_sync`` only
marks an index durable if its staging sequence is unchanged — otherwise a
crash between the two fsyncs would over-report what is on disk. Plain
``int`` items are still accepted (marked unconditionally) for callers that
serialize their syncs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple


class DurableRaftState:
    """What one Raft node would find on its disk after a reboot."""

    def __init__(self, node_id: str):
        self.node_id = node_id
        # Raft metadata (persisted synchronously in real Raft; modelled as
        # a free metadata write here — it is tens of bytes).
        self.term = 0
        self.voted_for: Optional[str] = None
        # Snapshot: state-machine image + the log boundary it covers.
        self.snapshot_index = 0
        self.snapshot_term = 0
        self.snapshot: Optional[dict] = None
        # Log entries: index -> (entry, durable?). Entries are generic
        # objects with .index/.term attributes to avoid an import cycle
        # with repro.raft.types.
        self._entries: Dict[int, Tuple[Any, bool]] = {}
        # index -> staging sequence number, bumped every time the slot is
        # (re)staged; lets an overlapping fsync detect that its captured
        # set went stale (see commit_sync).
        self._staged_seq: Dict[int, int] = {}
        self._seq = 0
        self.recoveries = 0
        self.lost_on_recovery = 0  # staged-but-unsynced entries dropped

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    def save_term(self, term: int, voted_for: Optional[str]) -> None:
        self.term = term
        self.voted_for = voted_for

    # ------------------------------------------------------------------
    # Log entries
    # ------------------------------------------------------------------
    def stage_entries(self, entries) -> None:
        """Record entries written to the WAL buffer (not yet fsynced).

        Mirrors the follower's ``append_or_overwrite``: a conflicting term
        at some index invalidates everything from that index on.
        """
        for entry in entries:
            existing = self._entries.get(entry.index)
            if existing is not None and existing[0].term != entry.term:
                for index in [i for i in self._entries if i >= entry.index]:
                    del self._entries[index]
                    self._staged_seq.pop(index, None)
            self._entries[entry.index] = (entry, False)
            self._seq += 1
            self._staged_seq[entry.index] = self._seq

    def begin_sync(self) -> List[Tuple[int, int]]:
        """Snapshot the staged-entry set an fsync is about to cover.

        Returns ``(index, staging_seq)`` pairs; pass them back verbatim to
        :meth:`commit_sync` when the fsync completes.
        """
        return [
            (index, self._staged_seq[index])
            for index, (_e, durable) in self._entries.items()
            if not durable
        ]

    def commit_sync(self, covered: List) -> None:
        """The fsync completed: entries it covered are now durable.

        ``(index, seq)`` items are marked only if the slot has not been
        re-staged since ``begin_sync`` captured them — an entry written
        after the fsync's snapshot holds bytes that flush never saw.
        Plain ``int`` items are marked unconditionally.
        """
        for item in covered:
            if isinstance(item, tuple):
                index, seq = item
                if self._staged_seq.get(index) != seq:
                    continue
            else:
                index = item
            entry = self._entries.get(index)
            if entry is not None:
                self._entries[index] = (entry[0], True)

    # ------------------------------------------------------------------
    # Snapshot + compaction
    # ------------------------------------------------------------------
    def save_snapshot(self, last_index: int, last_term: int, state: dict) -> None:
        """Persist a state-machine snapshot and drop covered log entries."""
        if last_index < self.snapshot_index:
            return  # stale
        self.snapshot_index = last_index
        self.snapshot_term = last_term
        self.snapshot = state
        for index in [i for i in self._entries if i <= last_index]:
            del self._entries[index]
            self._staged_seq.pop(index, None)

    def clear_log(self) -> None:
        """Drop all log entries (an installed snapshot replaced them)."""
        self._entries.clear()
        self._staged_seq.clear()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recovered_entries(self) -> List[Any]:
        """The contiguous durable log suffix above the snapshot, in order.

        Replay stops at the first gap or non-durable entry — bytes past a
        torn write are unreadable. Anything dropped is counted in
        ``lost_on_recovery``.
        """
        entries = []
        index = self.snapshot_index + 1
        while index in self._entries:
            entry, durable = self._entries[index]
            if not durable:
                break
            entries.append(entry)
            index += 1
        self.lost_on_recovery += sum(
            1 for i in self._entries if i >= index
        )
        for stale in [i for i in self._entries if i >= index]:
            del self._entries[stale]
            self._staged_seq.pop(stale, None)
        return entries

    def has_state(self) -> bool:
        return bool(self._entries) or self.snapshot is not None or self.term > 0

    def durable_count(self) -> int:
        return sum(1 for _e, durable in self._entries.values() if durable)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DurableRaftState {self.node_id} term={self.term} "
            f"snap@{self.snapshot_index} entries={len(self._entries)}>"
        )
