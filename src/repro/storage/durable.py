"""Simulated stable storage for a consensus node (survives restarts).

The simulation's :class:`~repro.storage.wal.WriteAheadLog` accounts disk
*timing* (bytes, fsyncs); this module accounts disk *contents*: which Raft
metadata, log entries and snapshot would actually be readable after a
crash. One :class:`DurableRaftState` outlives its node's process — it is
held by whoever deploys the group and handed back to the replacement
:class:`~repro.raft.node.RaftNode` on restart, which recovers by snapshot
load + WAL replay.

Durability discipline mirrors the WAL's group commit: entries are *staged*
when the node appends them to the WAL buffer and become *durable* only
when the fsync covering them completes (``begin_sync`` captures the
covered suffix; ``commit_sync`` marks it). An entry staged but not yet
synced at crash time is lost — exactly the window real Raft tolerates,
because such entries were never acknowledged.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple


class DurableRaftState:
    """What one Raft node would find on its disk after a reboot."""

    def __init__(self, node_id: str):
        self.node_id = node_id
        # Raft metadata (persisted synchronously in real Raft; modelled as
        # a free metadata write here — it is tens of bytes).
        self.term = 0
        self.voted_for: Optional[str] = None
        # Snapshot: state-machine image + the log boundary it covers.
        self.snapshot_index = 0
        self.snapshot_term = 0
        self.snapshot: Optional[dict] = None
        # Log entries: index -> (entry, durable?). Entries are generic
        # objects with .index/.term attributes to avoid an import cycle
        # with repro.raft.types.
        self._entries: Dict[int, Tuple[Any, bool]] = {}
        self.recoveries = 0
        self.lost_on_recovery = 0  # staged-but-unsynced entries dropped

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    def save_term(self, term: int, voted_for: Optional[str]) -> None:
        self.term = term
        self.voted_for = voted_for

    # ------------------------------------------------------------------
    # Log entries
    # ------------------------------------------------------------------
    def stage_entries(self, entries) -> None:
        """Record entries written to the WAL buffer (not yet fsynced).

        Mirrors the follower's ``append_or_overwrite``: a conflicting term
        at some index invalidates everything from that index on.
        """
        for entry in entries:
            existing = self._entries.get(entry.index)
            if existing is not None and existing[0].term != entry.term:
                for index in [i for i in self._entries if i >= entry.index]:
                    del self._entries[index]
            self._entries[entry.index] = (entry, False)

    def begin_sync(self) -> List[int]:
        """Snapshot the staged-entry set an fsync is about to cover."""
        return [index for index, (_e, durable) in self._entries.items() if not durable]

    def commit_sync(self, covered: List[int]) -> None:
        """The fsync completed: entries it covered are now durable."""
        for index in covered:
            entry = self._entries.get(index)
            if entry is not None:
                self._entries[index] = (entry[0], True)

    # ------------------------------------------------------------------
    # Snapshot + compaction
    # ------------------------------------------------------------------
    def save_snapshot(self, last_index: int, last_term: int, state: dict) -> None:
        """Persist a state-machine snapshot and drop covered log entries."""
        if last_index < self.snapshot_index:
            return  # stale
        self.snapshot_index = last_index
        self.snapshot_term = last_term
        self.snapshot = state
        for index in [i for i in self._entries if i <= last_index]:
            del self._entries[index]

    def clear_log(self) -> None:
        """Drop all log entries (an installed snapshot replaced them)."""
        self._entries.clear()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recovered_entries(self) -> List[Any]:
        """The contiguous durable log suffix above the snapshot, in order.

        Replay stops at the first gap or non-durable entry — bytes past a
        torn write are unreadable. Anything dropped is counted in
        ``lost_on_recovery``.
        """
        entries = []
        index = self.snapshot_index + 1
        while index in self._entries:
            entry, durable = self._entries[index]
            if not durable:
                break
            entries.append(entry)
            index += 1
        self.lost_on_recovery += sum(
            1 for i in self._entries if i >= index
        )
        for stale in [i for i in self._entries if i >= index]:
            del self._entries[stale]
        return entries

    def has_state(self) -> bool:
        return bool(self._entries) or self.snapshot is not None or self.term > 0

    def durable_count(self) -> int:
        return sum(1 for _e, durable in self._entries.values() if durable)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DurableRaftState {self.node_id} term={self.term} "
            f"snap@{self.snapshot_index} entries={len(self._entries)}>"
        )
