"""In-memory cache of recent log entries (TiDB raftstore's ``EntryCache``).

The leader replicates from this cache; when a follower lags behind the
cache's retention window the leader must read the evicted entries back
from disk. In TiDB that read happens *synchronously on the single
raftstore thread*, blocking every region the thread serves — the first
root-cause pattern of §2.2. The cache itself just answers hit/miss; the
blocking behaviour lives in the baseline implementation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Optional, Tuple


class EntryCache:
    """Bounded index→entry cache evicting the oldest indices first."""

    def __init__(self, max_entries: int = 1024):
        if max_entries < 1:
            raise ValueError("cache must hold at least one entry")
        self.max_entries = max_entries
        self._entries: "OrderedDict[int, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def put(self, index: int, entry: Any) -> None:
        """Insert an entry; evicts the lowest index when over capacity."""
        self._entries[index] = entry
        self._entries.move_to_end(index)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def get(self, index: int) -> Tuple[bool, Optional[Any]]:
        """Return (hit, entry). A miss means the entry was evicted to disk."""
        if index in self._entries:
            self.hits += 1
            return True, self._entries[index]
        self.misses += 1
        return False, None

    def lowest_cached_index(self) -> Optional[int]:
        if not self._entries:
            return None
        return next(iter(self._entries))

    def contains_range(self, first: int, last: int) -> bool:
        """True iff every index in [first, last] is cached."""
        return all(index in self._entries for index in range(first, last + 1))
