"""Storage substrate: write-ahead log, entry cache, KV state machine.

Disk timing itself is modelled by :class:`repro.sim.resources.DiskResource`
(one per node); this package provides the durable-log abstractions RSMs
build on, including the TiDB-style :class:`EntryCache` whose evictions
force the leader into synchronous disk reads — the first root-cause
pattern of §2.2.
"""

from repro.storage.durable import DurableRaftState
from repro.storage.entry_cache import EntryCache
from repro.storage.kvstore import KvOp, KvStore
from repro.storage.wal import WriteAheadLog

__all__ = ["DurableRaftState", "EntryCache", "KvOp", "KvStore", "WriteAheadLog"]
