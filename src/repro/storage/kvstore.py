"""The replicated state machine's state: a key-value store.

Commands are plain tuples so they hash/compare cheaply; the store applies
them in commit order and remembers the apply count, which tests use to
check that replicas converge.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

# A command: ("put", key, value) | ("get", key) | ("delete", key).
KvOp = Tuple[str, ...]


class KvStore:
    """Deterministic in-memory KV state machine."""

    def __init__(self):
        self._data: Dict[str, Any] = {}
        self.applied = 0

    def apply(self, op: KvOp) -> Optional[Any]:
        """Apply one committed command; returns the op's result."""
        kind = op[0]
        if kind == "put":
            _, key, value = op
            self._data[key] = value
            result = None
        elif kind == "get":
            _, key = op
            result = self._data.get(key)
        elif kind == "delete":
            _, key = op
            result = self._data.pop(key, None)
        elif kind == "noop":
            result = None
        else:
            raise ValueError(f"unknown op kind {kind!r}")
        self.applied += 1
        return result

    def get(self, key: str) -> Optional[Any]:
        """Local read (not linearizable; use the service for client reads)."""
        return self._data.get(key)

    def __len__(self) -> int:
        return len(self._data)

    def checksum(self) -> int:
        """Order-insensitive digest of the state, for replica comparison."""
        return hash(frozenset((k, repr(v)) for k, v in self._data.items()))

    # ------------------------------------------------------------------
    # Snapshots (log compaction support)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """A self-contained copy of the state for snapshot transfer."""
        return {"data": dict(self._data), "applied": self.applied}

    def restore_state(self, state: dict) -> None:
        """Replace the whole state with a received snapshot."""
        self._data = dict(state["data"])
        self.applied = state["applied"]

    def estimated_bytes(self) -> int:
        """Serialized size estimate, used for snapshot transfer timing."""
        return 128 + sum(
            len(str(key)) + len(str(value)) + 16 for key, value in self._data.items()
        )
