"""The replicated state machine's state: a key-value store.

Commands are plain tuples so they hash/compare cheaply; the store applies
them in commit order and remembers the apply count, which tests use to
check that replicas converge.

Client sessions ("Building on Quicksand": retries + idempotence over
unreliable parts) ride on a wrapper command::

    ("csess", session_id, request_id, inner_op)

The store remembers, per session, the highest request id applied and its
result. A retry of an already-applied request returns the cached result
without re-applying — exactly-once semantics for at-least-once clients.
Request ids must be issued in order per session (one outstanding request
per session, the closed-loop client model). Session state is part of the
snapshot, so dedup survives compaction, snapshot install and recovery.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Optional, Tuple

# A command: ("put", key, value) | ("get", key) | ("delete", key)
#          | ("noop",) | ("csess", session_id, request_id, inner_op).
KvOp = Tuple[str, ...]


class KvStore:
    """Deterministic in-memory KV state machine with client sessions."""

    def __init__(self):
        self._data: Dict[str, Any] = {}
        self.applied = 0
        # session_id -> (last applied request id, its result).
        self._sessions: Dict[str, Tuple[int, Any]] = {}
        # Verifier state: every request id actually applied, per session.
        # ``double_applies`` counts applies of an already-applied id — it
        # stays 0 unless the dedup discipline is broken.
        self._applied_rids: Dict[str, set] = {}
        self.double_applies = 0
        self.duplicates_deduped = 0

    def apply(self, op: KvOp) -> Optional[Any]:
        """Apply one committed command; returns the op's result."""
        kind = op[0]
        if kind == "csess":
            _, session_id, request_id, inner = op
            cached = self._sessions.get(session_id)
            if cached is not None and request_id <= cached[0]:
                # A retry the log already holds: do not re-apply.
                self.duplicates_deduped += 1
                self.applied += 1
                return cached[1]
            result = self.apply(inner)
            self._sessions[session_id] = (request_id, result)
            applied_rids = self._applied_rids.setdefault(session_id, set())
            if request_id in applied_rids:
                self.double_applies += 1
            applied_rids.add(request_id)
            return result
        if kind == "put":
            _, key, value = op
            self._data[key] = value
            result = None
        elif kind == "get":
            _, key = op
            result = self._data.get(key)
        elif kind == "delete":
            _, key = op
            result = self._data.pop(key, None)
        elif kind == "noop":
            result = None
        else:
            raise ValueError(f"unknown op kind {kind!r}")
        self.applied += 1
        return result

    def get(self, key: str) -> Optional[Any]:
        """Local read (not linearizable; use the service for client reads)."""
        return self._data.get(key)

    def __len__(self) -> int:
        return len(self._data)

    def checksum(self) -> int:
        """Order-insensitive digest of the state, for replica comparison."""
        return hash(frozenset((k, repr(v)) for k, v in self._data.items()))

    def stable_digest(self) -> str:
        """Run-to-run stable digest (``checksum`` depends on PYTHONHASHSEED)."""
        digest = hashlib.sha256()
        for key in sorted(self._data):
            digest.update(repr((key, self._data[key])).encode())
        for session in sorted(self._sessions):
            digest.update(repr((session, self._sessions[session][0])).encode())
        return digest.hexdigest()[:16]

    # ------------------------------------------------------------------
    # Session introspection (chaos verdicts)
    # ------------------------------------------------------------------
    def session_last_rid(self, session_id: str) -> int:
        cached = self._sessions.get(session_id)
        return cached[0] if cached is not None else 0

    def session_ids(self):
        return sorted(self._sessions)

    def exactly_once_violations(self) -> int:
        """Request ids applied more than once (0 unless dedup is broken)."""
        return self.double_applies

    # ------------------------------------------------------------------
    # Snapshots (log compaction support)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """A self-contained copy of the state for snapshot transfer."""
        return {
            "data": dict(self._data),
            "applied": self.applied,
            "sessions": dict(self._sessions),
            "applied_rids": {sid: set(rids) for sid, rids in self._applied_rids.items()},
        }

    def restore_state(self, state: dict) -> None:
        """Replace the whole state with a received snapshot."""
        self._data = dict(state["data"])
        self.applied = state["applied"]
        self._sessions = dict(state.get("sessions", {}))
        self._applied_rids = {
            sid: set(rids) for sid, rids in state.get("applied_rids", {}).items()
        }

    def estimated_bytes(self) -> int:
        """Serialized size estimate, used for snapshot transfer timing."""
        return (
            128
            + sum(
                len(str(key)) + len(str(value)) + 16
                for key, value in self._data.items()
            )
            + 24 * len(self._sessions)
        )
