"""Closed-loop client driver.

Each simulated client is one coroutine on a client node: generate an
operation, send it to the (believed) leader, wait for the reply, record
the latency, repeat — the YCSB client model. Redirects and timeouts are
handled by :class:`KvServiceClient`, which every RSM implementation in
this repo speaks to through the same ``client_request`` RPC contract:

* request payload: ``{"op": <kv op>}``
* reply: ``{"ok": True, "result": ...}`` on success,
  ``{"redirect": <node id or None>}`` if the callee is not the leader,
  ``{"error": <str>}`` on failure.

Two opt-in robustness features (both off by default so the calibrated
fail-slow experiments keep their seed behaviour) make clients safe under
chaos:

* **Client sessions** — with ``session_id`` set, every mutation is
  wrapped as ``("csess", session_id, request_id, op)`` and retried under
  the *same* request id, so the state machine's session table
  deduplicates a retry whose first attempt actually committed
  (exactly-once effects over an at-least-once wire).
* **Backoff** — with ``backoff_ms`` set, timeouts back off
  exponentially (capped) instead of hammering a partitioned or
  recovering cluster.

A :class:`~repro.trace.linearize.HistoryRecorder` can be attached to
record each *logical* operation (one interval across all retries) for
linearizability checking.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.sim.metrics import LatencyRecorder
from repro.storage.kvstore import KvOp
from repro.trace.linearize import HistoryRecorder
from repro.workload.stats import WorkloadReport
from repro.workload.ycsb import YcsbWorkload

BACKOFF_CAP_MS = 500.0


class KvServiceClient:
    """Leader-tracking KV client bound to one client node."""

    MAX_ATTEMPTS = 8

    def __init__(
        self,
        node: Node,
        server_ids: List[str],
        request_timeout_ms: float = 2000.0,
        session_id: Optional[str] = None,
        backoff_ms: float = 0.0,
        max_attempts: Optional[int] = None,
        history: Optional[HistoryRecorder] = None,
    ):
        if not server_ids:
            raise ValueError("need at least one server")
        self.node = node
        self.server_ids = list(server_ids)
        self.request_timeout_ms = request_timeout_ms
        self.session_id = session_id
        self.backoff_ms = backoff_ms
        self.max_attempts = max_attempts if max_attempts is not None else self.MAX_ATTEMPTS
        self.history = history
        self._leader_hint = self.server_ids[0]
        self._next_rid = 0
        self.redirects = 0
        self.timeouts = 0

    def execute(self, op: KvOp, size_bytes: int) -> Generator:
        """Generator: run one operation; returns (ok, result)."""
        wire_op = op
        if self.session_id is not None and op[0] in ("put", "delete"):
            # One request id per *logical* op: every retry reuses it, so a
            # retry of an already-committed attempt dedups at the RSM.
            self._next_rid += 1
            wire_op = ("csess", self.session_id, self._next_rid, op)
        op_id = None
        if self.history is not None:
            op_id = self.history.invoke(
                self.session_id or self.node.node_id, op, self.node.runtime.now
            )
        backoff = self.backoff_ms
        for _attempt in range(self.max_attempts):
            target = self._leader_hint
            event = self.node.endpoint.call(
                target, "client_request", {"op": wire_op}, size_bytes=size_bytes
            )
            result = yield event.wait(timeout_ms=self.request_timeout_ms)
            if result.timed_out or not event.ok:
                self.timeouts += 1
                self._rotate_leader_hint()
                if backoff > 0:
                    yield self.node.runtime.sleep(backoff)
                    backoff = min(backoff * 2, BACKOFF_CAP_MS)
                continue
            reply = event.reply
            if reply.get("ok"):
                if self.history is not None:
                    self.history.complete(
                        op_id, reply.get("result"), self.node.runtime.now
                    )
                return True, reply.get("result")
            redirect = reply.get("redirect")
            if redirect:
                self.redirects += 1
                self._leader_hint = redirect
                continue
            # Explicit error or leader-unknown: back off briefly and retry.
            self.redirects += 1
            self._rotate_leader_hint()
            yield self.node.runtime.sleep(max(10.0, backoff))
            if backoff > 0:
                backoff = min(backoff * 2, BACKOFF_CAP_MS)
        if self.history is not None:
            self.history.abandon(op_id)
        return False, None

    def _rotate_leader_hint(self) -> None:
        index = self.server_ids.index(self._leader_hint)
        self._leader_hint = self.server_ids[(index + 1) % len(self.server_ids)]


class ClosedLoopDriver:
    """Spawns N closed-loop client coroutines and records latencies."""

    def __init__(
        self,
        cluster: Cluster,
        server_ids: List[str],
        workload: YcsbWorkload,
        n_clients: int = 64,
        n_client_nodes: int = 1,
        think_time_ms: float = 0.0,
        request_timeout_ms: float = 2000.0,
        client_ids: Optional[List[str]] = None,
        sessions: bool = False,
        backoff_ms: float = 0.0,
        max_attempts: Optional[int] = None,
        history: Optional[HistoryRecorder] = None,
    ):
        if n_clients < 1 or n_client_nodes < 1:
            raise ValueError("need at least one client and one client node")
        if client_ids is not None and len(client_ids) != n_client_nodes:
            raise ValueError("client_ids must match n_client_nodes")
        self.cluster = cluster
        self.server_ids = list(server_ids)
        self.workload = workload
        self.n_clients = n_clients
        self.think_time_ms = think_time_ms
        self.request_timeout_ms = request_timeout_ms
        self.sessions = sessions
        self.backoff_ms = backoff_ms
        self.max_attempts = max_attempts
        self.history = history
        self.recorder = LatencyRecorder("client-latency")
        self.errors = 0
        self.completed = 0
        self._stopped = False
        self.clients: List[KvServiceClient] = []
        self.client_nodes: List[Node] = []
        for i in range(n_client_nodes):
            client_id = client_ids[i] if client_ids is not None else self._free_client_id()
            node = cluster.add_client(client_id)
            node.start()
            self.client_nodes.append(node)

    def _free_client_id(self) -> str:
        """Next unused cN name (several drivers may share one cluster)."""
        index = 1
        while f"c{index}" in self.cluster.clients or f"c{index}" in self.cluster.nodes:
            index += 1
        return f"c{index}"

    def start(self) -> None:
        """Spawn all client coroutines (they run until the sim stops)."""
        stagger_rng = self.cluster.rng.stream("client-stagger")
        for i in range(self.n_clients):
            node = self.client_nodes[i % len(self.client_nodes)]
            client = KvServiceClient(
                node,
                self.server_ids,
                request_timeout_ms=self.request_timeout_ms,
                session_id=f"{node.node_id}#{i}" if self.sessions else None,
                backoff_ms=self.backoff_ms,
                max_attempts=self.max_attempts,
                history=self.history,
            )
            self.clients.append(client)
            # Staggered starts break the lockstep a simultaneous launch of
            # identical closed-loop clients would otherwise settle into.
            delay = stagger_rng.uniform(0.0, 20.0)
            node.runtime.spawn(
                self._client_loop(client, delay), name=f"client-{i}"
            )

    def stop(self) -> None:
        """Ask clients to exit after their in-flight operation finishes.

        Used by the chaos harness to quiesce traffic before convergence
        checks; the steady-state experiments never stop.
        """
        self._stopped = True

    def _client_loop(self, client: KvServiceClient, initial_delay_ms: float) -> Generator:
        runtime = client.node.runtime
        if initial_delay_ms > 0:
            yield runtime.sleep(initial_delay_ms)
        while not self._stopped:
            op, size_bytes = self.workload.next_op()
            started = runtime.now
            ok, _result = yield from client.execute(op, size_bytes)
            if ok:
                self.completed += 1
                self.recorder.record(runtime.now, runtime.now - started)
            else:
                self.errors += 1
            if self.think_time_ms > 0:
                yield runtime.sleep(self.think_time_ms)

    def report(self, window_start_ms: float, window_end_ms: float) -> WorkloadReport:
        return WorkloadReport.from_recorder(
            self.recorder,
            window_start_ms,
            window_end_ms,
            errors=self.errors,
            crashed_nodes=self.cluster.crashed_nodes(),
        )
