"""Closed-loop client driver.

Each simulated client is one coroutine on a client node: generate an
operation, send it to the (believed) leader, wait for the reply, record
the latency, repeat — the YCSB client model. Redirects and timeouts are
handled by :class:`KvServiceClient`, which every RSM implementation in
this repo speaks to through the same ``client_request`` RPC contract:

* request payload: ``{"op": <kv op>}``
* reply: ``{"ok": True, "result": ...}`` on success,
  ``{"redirect": <node id or None>}`` if the callee is not the leader,
  ``{"error": <str>}`` on failure.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.sim.metrics import LatencyRecorder
from repro.storage.kvstore import KvOp
from repro.workload.stats import WorkloadReport
from repro.workload.ycsb import YcsbWorkload


class KvServiceClient:
    """Leader-tracking KV client bound to one client node."""

    MAX_ATTEMPTS = 8

    def __init__(
        self,
        node: Node,
        server_ids: List[str],
        request_timeout_ms: float = 2000.0,
    ):
        if not server_ids:
            raise ValueError("need at least one server")
        self.node = node
        self.server_ids = list(server_ids)
        self.request_timeout_ms = request_timeout_ms
        self._leader_hint = self.server_ids[0]
        self.redirects = 0
        self.timeouts = 0

    def execute(self, op: KvOp, size_bytes: int) -> Generator:
        """Generator: run one operation; returns (ok, result)."""
        for _attempt in range(self.MAX_ATTEMPTS):
            target = self._leader_hint
            event = self.node.endpoint.call(
                target, "client_request", {"op": op}, size_bytes=size_bytes
            )
            result = yield event.wait(timeout_ms=self.request_timeout_ms)
            if result.timed_out or not event.ok:
                self.timeouts += 1
                self._rotate_leader_hint()
                continue
            reply = event.reply
            if reply.get("ok"):
                return True, reply.get("result")
            redirect = reply.get("redirect")
            if redirect:
                self.redirects += 1
                self._leader_hint = redirect
                continue
            # Explicit error or leader-unknown: back off briefly and retry.
            self.redirects += 1
            self._rotate_leader_hint()
            yield self.node.runtime.sleep(10.0)
        return False, None

    def _rotate_leader_hint(self) -> None:
        index = self.server_ids.index(self._leader_hint)
        self._leader_hint = self.server_ids[(index + 1) % len(self.server_ids)]


class ClosedLoopDriver:
    """Spawns N closed-loop client coroutines and records latencies."""

    def __init__(
        self,
        cluster: Cluster,
        server_ids: List[str],
        workload: YcsbWorkload,
        n_clients: int = 64,
        n_client_nodes: int = 1,
        think_time_ms: float = 0.0,
        request_timeout_ms: float = 2000.0,
        client_ids: Optional[List[str]] = None,
    ):
        if n_clients < 1 or n_client_nodes < 1:
            raise ValueError("need at least one client and one client node")
        if client_ids is not None and len(client_ids) != n_client_nodes:
            raise ValueError("client_ids must match n_client_nodes")
        self.cluster = cluster
        self.server_ids = list(server_ids)
        self.workload = workload
        self.n_clients = n_clients
        self.think_time_ms = think_time_ms
        self.request_timeout_ms = request_timeout_ms
        self.recorder = LatencyRecorder("client-latency")
        self.errors = 0
        self.completed = 0
        self.client_nodes: List[Node] = []
        for i in range(n_client_nodes):
            client_id = client_ids[i] if client_ids is not None else self._free_client_id()
            node = cluster.add_client(client_id)
            node.start()
            self.client_nodes.append(node)

    def _free_client_id(self) -> str:
        """Next unused cN name (several drivers may share one cluster)."""
        index = 1
        while f"c{index}" in self.cluster.clients or f"c{index}" in self.cluster.nodes:
            index += 1
        return f"c{index}"

    def start(self) -> None:
        """Spawn all client coroutines (they run until the sim stops)."""
        stagger_rng = self.cluster.rng.stream("client-stagger")
        for i in range(self.n_clients):
            node = self.client_nodes[i % len(self.client_nodes)]
            client = KvServiceClient(
                node, self.server_ids, request_timeout_ms=self.request_timeout_ms
            )
            # Staggered starts break the lockstep a simultaneous launch of
            # identical closed-loop clients would otherwise settle into.
            delay = stagger_rng.uniform(0.0, 20.0)
            node.runtime.spawn(
                self._client_loop(client, delay), name=f"client-{i}"
            )

    def _client_loop(self, client: KvServiceClient, initial_delay_ms: float) -> Generator:
        runtime = client.node.runtime
        if initial_delay_ms > 0:
            yield runtime.sleep(initial_delay_ms)
        while True:
            op, size_bytes = self.workload.next_op()
            started = runtime.now
            ok, _result = yield from client.execute(op, size_bytes)
            if ok:
                self.completed += 1
                self.recorder.record(runtime.now, runtime.now - started)
            else:
                self.errors += 1
            if self.think_time_ms > 0:
                yield runtime.sleep(self.think_time_ms)

    def report(self, window_start_ms: float, window_end_ms: float) -> WorkloadReport:
        return WorkloadReport.from_recorder(
            self.recorder,
            window_start_ms,
            window_end_ms,
            errors=self.errors,
            crashed_nodes=self.cluster.crashed_nodes(),
        )
