"""Key-choice distributions, YCSB-style.

The zipfian generator follows the standard Gray et al. rejection-free
construction used by YCSB: constant-time sampling after an O(n) zeta
precomputation, with the usual scrambling left to the caller (we hash the
rank into the key name, which serves the same purpose of spreading hot
keys across the keyspace).
"""

from __future__ import annotations

import math
import random


class UniformKeys:
    """Uniform key choice over ``record_count`` records."""

    def __init__(self, record_count: int, rng: random.Random):
        if record_count < 1:
            raise ValueError("need at least one record")
        self.record_count = record_count
        self.rng = rng

    def next_rank(self) -> int:
        return self.rng.randrange(self.record_count)


class ZipfianKeys:
    """Zipfian key choice (YCSB's default skewed distribution)."""

    def __init__(self, record_count: int, rng: random.Random, theta: float = 0.99):
        if record_count < 1:
            raise ValueError("need at least one record")
        if not 0 < theta < 1:
            raise ValueError("theta must be in (0, 1)")
        self.record_count = record_count
        self.rng = rng
        self.theta = theta
        self._zetan = self._zeta(record_count, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        denominator = 1 - self._zeta2 / self._zetan
        if denominator == 0.0:
            # record_count <= 2: the continuous branch never applies a
            # meaningful skew; the two explicit branches in next_rank
            # cover ranks 0 and 1.
            self._eta = 0.0
        else:
            self._eta = (1 - (2.0 / record_count) ** (1 - theta)) / denominator

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next_rank(self) -> int:
        u = self.rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        rank = int(self.record_count * (self._eta * u - self._eta + 1) ** self._alpha)
        return min(rank, self.record_count - 1)


def key_name(rank: int) -> str:
    """Spread ranks over the keyspace (YCSB's key scrambling).

    Uses a fixed multiplicative mix rather than ``hash()``: the built-in
    is salted per process (PYTHONHASHSEED), which would make key names —
    and therefore state digests — differ between runs of the same seed.
    """
    mixed = (rank + 1) * 0x9E3779B97F4A7C15 & 0xFFFFFFFFFFFFFFFF
    mixed ^= mixed >> 29
    return f"user{mixed & 0xFFFFFFFFFFFF:012x}"
