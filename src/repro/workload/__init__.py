"""YCSB-like workload generation and closed-loop clients (§2.1).

The paper drives each system with a YCSB *update* workload (writes go
through majority replication, which is where fail-slow followers matter)
from a few hundred closed-loop clients. This package provides the key
distributions, the operation generator, the closed-loop driver and the
measurement report (throughput, average latency, P99 — the three metrics
of Figures 1 and 3).
"""

from repro.workload.distributions import UniformKeys, ZipfianKeys
from repro.workload.driver import ClosedLoopDriver, KvServiceClient
from repro.workload.stats import WorkloadReport
from repro.workload.ycsb import YcsbWorkload

__all__ = [
    "ClosedLoopDriver",
    "KvServiceClient",
    "UniformKeys",
    "WorkloadReport",
    "YcsbWorkload",
    "ZipfianKeys",
]
