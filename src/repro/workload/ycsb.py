"""The YCSB-like operation generator.

The paper's measurement workload is update-only over 500K records
("we focus on writes because a write involves a majority of nodes"), so
``update_fraction`` defaults to 1.0; mixes are supported for the examples
and extension experiments.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from repro.storage.kvstore import KvOp
from repro.workload.distributions import UniformKeys, ZipfianKeys, key_name


class YcsbWorkload:
    """Generates (operation, request_size_bytes) pairs."""

    def __init__(
        self,
        rng: random.Random,
        record_count: int = 500_000,
        value_size: int = 100,
        update_fraction: float = 1.0,
        distribution: str = "zipfian",
    ):
        if not 0 <= update_fraction <= 1:
            raise ValueError("update fraction must be in [0, 1]")
        if value_size < 1:
            raise ValueError("value size must be positive")
        self.rng = rng
        self.record_count = record_count
        self.value_size = value_size
        self.update_fraction = update_fraction
        if distribution == "zipfian":
            self._keys = ZipfianKeys(record_count, rng)
        elif distribution == "uniform":
            self._keys = UniformKeys(record_count, rng)
        else:
            raise ValueError(f"unknown distribution {distribution!r}")
        self.generated = 0

    def next_op(self) -> Tuple[KvOp, int]:
        """One operation plus its request payload size in bytes."""
        self.generated += 1
        key = key_name(self._keys.next_rank())
        if self.rng.random() < self.update_fraction:
            value = f"v{self.generated}".ljust(self.value_size, "x")
            return ("put", key, value), self.value_size + len(key)
        return ("get", key), len(key)
