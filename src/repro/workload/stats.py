"""Measurement reports: throughput + latency over a steady-state window."""

from __future__ import annotations

from repro.sim.metrics import LatencyRecorder, LatencySummary


class WorkloadReport:
    """The three Figure 1/3 metrics for one run, plus bookkeeping."""

    def __init__(
        self,
        throughput_ops_s: float,
        latency: LatencySummary,
        window_ms: float,
        errors: int = 0,
        crashed_nodes=(),
    ):
        self.throughput_ops_s = throughput_ops_s
        self.latency = latency
        self.window_ms = window_ms
        self.errors = errors
        self.crashed_nodes = list(crashed_nodes)

    @property
    def avg_latency_ms(self) -> float:
        return self.latency.mean

    @property
    def p99_latency_ms(self) -> float:
        return self.latency.p99

    @property
    def crashed(self) -> bool:
        return bool(self.crashed_nodes)

    @classmethod
    def from_recorder(
        cls,
        recorder: LatencyRecorder,
        window_start_ms: float,
        window_end_ms: float,
        errors: int = 0,
        crashed_nodes=(),
    ) -> "WorkloadReport":
        window_ms = window_end_ms - window_start_ms
        if window_ms <= 0:
            raise ValueError("measurement window must have positive length")
        summary = recorder.summary(window_start_ms, window_end_ms)
        throughput = summary.count / (window_ms / 1000.0)
        return cls(throughput, summary, window_ms, errors=errors, crashed_nodes=crashed_nodes)

    def normalized_to(self, baseline: "WorkloadReport") -> dict:
        """Figure 1's normalization: this run relative to its no-fault run."""

        def ratio(value: float, base: float) -> float:
            return value / base if base > 0 else 0.0

        return {
            "throughput": ratio(self.throughput_ops_s, baseline.throughput_ops_s),
            "avg_latency": ratio(self.avg_latency_ms, baseline.avg_latency_ms),
            "p99_latency": ratio(self.p99_latency_ms, baseline.p99_latency_ms),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        crash = f" CRASHED={self.crashed_nodes}" if self.crashed else ""
        return (
            f"<WorkloadReport {self.throughput_ops_s:.0f} ops/s "
            f"avg={self.avg_latency_ms:.2f}ms p99={self.p99_latency_ms:.2f}ms"
            f" errs={self.errors}{crash}>"
        )
