"""The DepFast runtime (§3.3): coroutines, a scheduler, I/O helpers.

A :class:`Runtime` instance is what one server process runs: it owns a
cooperative :class:`Scheduler` (suspending/resuming coroutines on events),
convenience constructors for timers and CPU work, and an
:class:`IoHelperPool` that performs disk writes/fsyncs off the coroutine
path. Multiple runtime instances share one simulation kernel — one per
node in a cluster.
"""

from repro.runtime.coroutine import Coroutine, CoroutineKilled, CoroutineState
from repro.runtime.io_helper import IoHelperPool
from repro.runtime.runtime import Runtime
from repro.runtime.scheduler import Scheduler, SchedulerError

__all__ = [
    "Coroutine",
    "CoroutineKilled",
    "CoroutineState",
    "IoHelperPool",
    "Runtime",
    "Scheduler",
    "SchedulerError",
]
