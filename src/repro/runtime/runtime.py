"""The per-node DepFast runtime instance.

"A DepFast runtime instance consists of four major components: coroutines,
events, a scheduler, and I/O helper threads" (§3.3). :class:`Runtime` ties
those to a node's simulated resources and offers the convenience
constructors server code uses: ``spawn``, ``sleep``, ``compute`` and the
I/O helpers.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.events.base import WaitDescriptor
from repro.events.basic import CpuEvent, TimerEvent
from repro.runtime.coroutine import Coroutine
from repro.runtime.io_helper import IoHelperPool
from repro.runtime.scheduler import Scheduler
from repro.sim.kernel import Kernel
from repro.sim.resources import CpuResource, DiskResource


class Runtime:
    """One server process's runtime: scheduler + event constructors + I/O."""

    def __init__(
        self,
        kernel: Kernel,
        node: Optional[str] = None,
        cpu: Optional[CpuResource] = None,
        disk: Optional[DiskResource] = None,
        tracer: Any = None,
    ):
        self.kernel = kernel
        self.node = node
        self.cpu = cpu
        self.scheduler = Scheduler(kernel, node=node, tracer=tracer)
        self.io = IoHelperPool(disk, node=node) if disk is not None else None
        self._crashed = False

    @property
    def now(self) -> float:
        return self.kernel.now

    @property
    def crashed(self) -> bool:
        return self._crashed

    # ------------------------------------------------------------------
    # Tasks
    # ------------------------------------------------------------------
    def spawn(
        self, gen: Generator, name: str = "", dedication: Optional[str] = None
    ) -> Coroutine:
        """Launch a task; analog of the paper's ``Coroutine::Create``.

        ``dedication`` marks a task that exists solely to serve one remote
        peer (see :class:`~repro.runtime.coroutine.Coroutine`).
        """
        return self.scheduler.spawn(gen, name=name, dedication=dedication)

    def crash(self) -> None:
        """Stop this runtime: all coroutines die, no new ones may start."""
        self._crashed = True
        self.scheduler.stop()

    # ------------------------------------------------------------------
    # Event constructors
    # ------------------------------------------------------------------
    def timer(self, delay_ms: float, name: str = "timer") -> TimerEvent:
        return TimerEvent(self.kernel, delay_ms, name=name)

    def sleep(self, delay_ms: float) -> WaitDescriptor:
        """``yield runtime.sleep(ms)`` — a plain virtual-time delay."""
        return self.timer(delay_ms, name="sleep").wait()

    def compute(self, cost_ms: float, name: str = "compute") -> WaitDescriptor:
        """``yield runtime.compute(ms)`` — occupy this node's CPU queue.

        This is how handler processing cost is charged: the coroutine is
        delayed by queueing + service time on the (possibly throttled) CPU.
        """
        if self.cpu is None:
            raise RuntimeError(f"runtime {self.node!r} has no CPU resource")
        return CpuEvent(self.cpu, cost_ms, name=name, source=self.node).wait()
