"""Coroutine objects — the unit of task execution (§3.1).

A DepFast coroutine wraps a Python generator. The generator expresses the
task's logic *synchronously* (the paper's antidote to shredded callback
code) and yields :class:`~repro.events.base.WaitDescriptor` objects at its
wait points; the scheduler resumes it with a
:class:`~repro.events.base.WaitResult`.
"""

from __future__ import annotations

import enum
from typing import Any, Generator, Optional


class CoroutineKilled(Exception):
    """Raised inside a generator when its node crashes or it is killed."""


class CoroutineState(enum.Enum):
    CREATED = "created"
    RUNNABLE = "runnable"
    WAITING = "waiting"
    FINISHED = "finished"
    FAILED = "failed"
    KILLED = "killed"


class Coroutine:
    """One cooperative task. Created via ``Scheduler.spawn`` / ``Runtime.spawn``."""

    def __init__(
        self,
        coro_id: int,
        gen: Generator,
        name: str = "",
        node: Optional[str] = None,
        dedication: Optional[str] = None,
    ):
        self.coro_id = coro_id
        self.gen = gen
        self.name = name or f"coro-{coro_id}"
        self.node = node
        # A coroutine *dedicated* to one remote peer (e.g. a catch-up
        # stream) may wait on that peer alone: its waits propagate the
        # peer's slowness only to work done on the peer's own behalf.
        # The fail-slow tolerance checker exempts such waits.
        self.dedication = dedication
        self.state = CoroutineState.CREATED
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self.spawned_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        # Total virtual time this coroutine spent suspended on events;
        # maintained by the scheduler, consumed by trace analysis.
        self.total_wait_ms = 0.0
        self.wait_count = 0

    def alive(self) -> bool:
        return self.state in (
            CoroutineState.CREATED,
            CoroutineState.RUNNABLE,
            CoroutineState.WAITING,
        )

    def kill(self) -> None:
        """Terminate the coroutine (node crash). Idempotent."""
        if not self.alive():
            return
        self.state = CoroutineState.KILLED
        try:
            # Closing the generator raises GeneratorExit at its suspension
            # point, running any finally-blocks in the task body.
            self.gen.close()
        except ValueError:
            # The generator is currently executing (the kill originated
            # from code it called). The scheduler notices the KILLED state
            # when the frame next yields and closes it then.
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = f"@{self.node}" if self.node else ""
        return f"<Coroutine {self.name}{where} {self.state.value}>"
