"""The cooperative scheduler: suspends and resumes coroutines on events.

Each runtime instance has one scheduler "in charge of suspending and
resuming the execution of all coroutines" (§3.3). Scheduling is
cooperative: a coroutine runs until it yields a wait descriptor (or
returns), so there is no preemption — slow *CPU work* is modelled
explicitly through :class:`~repro.events.basic.CpuEvent`, not by letting a
coroutine spin.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from repro.events.base import YIELD, Event, WaitDescriptor, WaitResult, as_wait
from repro.runtime.coroutine import Coroutine, CoroutineState
from repro.sim.kernel import Kernel, ScheduledCall


class SchedulerError(RuntimeError):
    """Raised on scheduler protocol violations."""


class _PendingWait:
    """Bookkeeping for one suspended coroutine: event + optional timeout."""

    __slots__ = ("coro", "event", "timer", "active", "started_at")

    def __init__(self, coro: Coroutine, event: Event, started_at: float):
        self.coro = coro
        self.event = event
        self.timer: Optional[ScheduledCall] = None
        self.active = True
        self.started_at = started_at


class Scheduler:
    """Drives coroutines for one runtime instance.

    ``tracer`` (any object with the :class:`repro.trace.tracepoints.Tracer`
    hook methods) observes spawns, wait begins/ends and completions —
    that's the instrumentation the SPG and the fail-slow checker are built
    from.
    """

    def __init__(self, kernel: Kernel, node: Optional[str] = None, tracer: Any = None):
        self.kernel = kernel
        self.node = node
        self.tracer = tracer
        self.coroutines: List[Coroutine] = []
        self.failures: List[Coroutine] = []
        # Called with the failed coroutine when a task raises; if unset the
        # exception propagates out of the kernel loop (loud by default).
        self.on_error: Optional[Callable[[Coroutine], None]] = None
        self._next_id = 0
        self._stopped = False

    # ------------------------------------------------------------------
    # Spawning
    # ------------------------------------------------------------------
    def spawn(self, gen: Generator, name: str = "", dedication: Optional[str] = None) -> Coroutine:
        """Launch a coroutine from a generator; starts at the current time."""
        if self._stopped:
            raise SchedulerError(f"scheduler on {self.node!r} is stopped")
        if not hasattr(gen, "send"):
            raise SchedulerError(
                f"spawn needs a generator, got {type(gen).__name__} "
                "(did you forget to call the generator function?)"
            )
        self._next_id += 1
        coro = Coroutine(
            self._next_id, gen, name=name, node=self.node, dedication=dedication
        )
        coro.spawned_at = self.kernel.now
        coro.state = CoroutineState.RUNNABLE
        self.coroutines.append(coro)
        if self.tracer is not None:
            self.tracer.on_spawn(coro, self.kernel.now)
        self.kernel.call_soon(self._step, coro, None)
        return coro

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Kill all live coroutines and refuse new spawns (node crash)."""
        self._stopped = True
        for coro in self.coroutines:
            coro.kill()

    def live_count(self) -> int:
        return sum(1 for coro in self.coroutines if coro.alive())

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def _step(self, coro: Coroutine, send_value: Optional[WaitResult]) -> None:
        if not coro.alive():
            return
        coro.state = CoroutineState.RUNNABLE
        try:
            yielded = coro.gen.send(send_value)
        except StopIteration as stop:
            self._finish(coro, stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - task bodies may raise anything
            self._fail(coro, exc)
            return
        if not coro.alive():
            # Killed from code it called (e.g. its node OOM-crashed while
            # it was sending); finish the teardown now that it yielded.
            coro.gen.close()
            return
        if yielded is YIELD:
            self.kernel.call_soon(self._step, coro, None)
            return
        descriptor = as_wait(yielded)
        self._suspend(coro, descriptor)

    def _suspend(self, coro: Coroutine, descriptor: WaitDescriptor) -> None:
        event = descriptor.event
        coro.state = CoroutineState.WAITING
        coro.wait_count += 1
        pending = _PendingWait(coro, event, self.kernel.now)
        if self.tracer is not None:
            self.tracer.on_wait_start(coro, event, self.kernel.now, descriptor.timeout_ms)

        def on_trigger(_event: Event) -> None:
            if not pending.active:
                return
            pending.active = False
            if pending.timer is not None:
                pending.timer.cancel()
            self._resume(pending, timed_out=False)

        if descriptor.timeout_ms is not None:

            def on_timeout() -> None:
                if not pending.active:
                    return
                pending.active = False
                event.unsubscribe(on_trigger)
                event.timed_out = True
                self._resume(pending, timed_out=True)

            pending.timer = self.kernel.schedule(descriptor.timeout_ms, on_timeout)

        event.subscribe(on_trigger)

    def _resume(self, pending: _PendingWait, timed_out: bool) -> None:
        coro = pending.coro
        waited = self.kernel.now - pending.started_at
        coro.total_wait_ms += waited
        if self.tracer is not None:
            self.tracer.on_wait_end(coro, pending.event, self.kernel.now, timed_out)
        result = WaitResult(pending.event, timed_out, waited)
        self.kernel.call_soon(self._step, coro, result)

    def _finish(self, coro: Coroutine, result: Any) -> None:
        coro.state = CoroutineState.FINISHED
        coro.result = result
        coro.finished_at = self.kernel.now
        if self.tracer is not None:
            self.tracer.on_finish(coro, self.kernel.now)

    def _fail(self, coro: Coroutine, exc: BaseException) -> None:
        coro.state = CoroutineState.FAILED
        coro.exception = exc
        coro.finished_at = self.kernel.now
        self.failures.append(coro)
        if self.tracer is not None:
            self.tracer.on_finish(coro, self.kernel.now)
        if self.on_error is not None:
            self.on_error(coro)
        else:
            raise exc
