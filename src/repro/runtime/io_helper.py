"""I/O helper threads (§3.3).

"The I/O helper threads run in the background to deal with synchronous I/O
events, e.g., the fsync calls that ensure that all disk writes have arrived
at disks." Here the pool submits operations to the node's simulated disk
and hands back :class:`~repro.events.basic.DiskEvent` objects, so the
coroutine path never blocks on the device — it *waits on an event* instead,
which keeps the wait observable and composable.
"""

from __future__ import annotations

from typing import Optional

from repro.events.basic import DiskEvent
from repro.sim.resources import DiskResource

# Cost charged for an fsync barrier on top of the bytes being flushed;
# models command overhead / FLUSH CACHE latency on the device.
FSYNC_BARRIER_BYTES = 4096


class IoHelperPool:
    """Background disk I/O on behalf of one runtime instance."""

    def __init__(self, disk: DiskResource, node: Optional[str] = None):
        self.disk = disk
        self.node = node
        self.inflight = 0
        self.completed = 0

    def write(self, n_bytes: int) -> DiskEvent:
        """Buffered write of ``n_bytes``; durable only after :meth:`fsync`."""
        return self._submit(n_bytes, "write")

    def read(self, n_bytes: int) -> DiskEvent:
        return self._submit(n_bytes, "read")

    def fsync(self, pending_bytes: int = 0) -> DiskEvent:
        """Flush ``pending_bytes`` of buffered writes to stable storage."""
        return self._submit(pending_bytes + FSYNC_BARRIER_BYTES, "fsync")

    def _submit(self, n_bytes: int, op: str) -> DiskEvent:
        self.inflight += 1
        event = DiskEvent(self.disk, n_bytes, op=op, source=self.node)
        event.subscribe(self._one_done)
        return event

    def _one_done(self, _event: DiskEvent) -> None:
        self.inflight -= 1
        self.completed += 1
