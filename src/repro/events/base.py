"""Event base class and the coroutine⇄scheduler wait protocol.

A coroutine blocks by ``yield``-ing a :class:`WaitDescriptor`, produced by
:meth:`Event.wait`. The scheduler parks the coroutine until the event
triggers (or the per-wait timeout fires) and resumes it with a
:class:`WaitResult` — the Python analog of the paper's::

    rpc_event.Wait();           // possible slowness
    if (rpc_event.timeout()) { ... }

Events are single-shot: :meth:`trigger` is idempotent and a triggered event
stays ready forever. Compound events subscribe to their children as
*parents* and re-evaluate their own readiness on each child trigger.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

# Sentinel a coroutine can yield to cooperatively reschedule itself at the
# current virtual time without waiting on any event.
YIELD = object()


class EventError(RuntimeError):
    """Raised for event-protocol misuse (e.g. waiting on a foreign child)."""


class WaitDescriptor:
    """What a coroutine yields: an event plus an optional timeout."""

    __slots__ = ("event", "timeout_ms")

    def __init__(self, event: "Event", timeout_ms: Optional[float]):
        self.event = event
        self.timeout_ms = timeout_ms

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Wait on {self.event!r} timeout={self.timeout_ms}>"


class WaitResult:
    """What a coroutine receives back when it resumes from a wait."""

    __slots__ = ("event", "timed_out", "waited_ms")

    def __init__(self, event: "Event", timed_out: bool, waited_ms: float):
        self.event = event
        self.timed_out = timed_out
        self.waited_ms = waited_ms

    @property
    def ready(self) -> bool:
        return self.event.ready()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WaitResult timed_out={self.timed_out} waited={self.waited_ms:.3f}ms>"


class Event:
    """A single-shot waitable condition — the universal wait point.

    Attributes used by the tracing layer (:mod:`repro.trace`):

    * ``source`` — identifier of the component expected to trigger this
      event (a peer node id for RPCs, the local node for disk/timers).
      This is what slowness-propagation edges are drawn from.
    * ``timed_out`` — set to True whenever a wait on this event expires;
      mirrors the paper's ``event.timeout()`` accessor.
    """

    kind = "event"

    # Events are the most-allocated objects in a run (one per RPC, timer,
    # disk op, inbox receive); slots keep them dict-free. Subclasses must
    # declare their own __slots__ (possibly empty) to stay that way.
    __slots__ = (
        "name",
        "source",
        "timed_out",
        "_triggered",
        "_waiters",
        "_parents",
        "triggered_at",
    )

    def __init__(self, name: str = "", source: Optional[str] = None):
        self.name = name
        self.source = source
        self.timed_out = False
        self._triggered = False
        self._waiters: List[Callable[["Event"], None]] = []
        self._parents: List["Event"] = []
        self.triggered_at: Optional[float] = None

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def ready(self) -> bool:
        """True once the event has triggered (never resets)."""
        return self._triggered

    def trigger(self, now: Optional[float] = None) -> None:
        """Fire the event; idempotent. Notifies waiters and parent events."""
        if self._triggered:
            return
        self._triggered = True
        self.triggered_at = now
        parents = list(self._parents)
        waiters = self._waiters
        self._waiters = []
        for parent in parents:
            parent.child_triggered(self)
        for notify in waiters:
            notify(self)

    # ------------------------------------------------------------------
    # Waiting
    # ------------------------------------------------------------------
    def wait(self, timeout_ms: Optional[float] = None) -> WaitDescriptor:
        """Produce the descriptor a coroutine yields to block on this event."""
        if timeout_ms is not None and timeout_ms < 0:
            raise EventError(f"negative timeout {timeout_ms}")
        return WaitDescriptor(self, timeout_ms)

    def subscribe(self, notify: Callable[["Event"], None]) -> None:
        """Low-level: call ``notify(self)`` on trigger (immediately if ready).

        Used by the scheduler and by callback-style code; coroutines should
        use :meth:`wait` instead.
        """
        if self._triggered:
            notify(self)
        else:
            self._waiters.append(notify)

    def unsubscribe(self, notify: Callable[["Event"], None]) -> None:
        """Remove a subscription added by :meth:`subscribe` (no-op if absent)."""
        try:
            self._waiters.remove(notify)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Compound-event plumbing
    # ------------------------------------------------------------------
    def add_parent(self, parent: "Event") -> None:
        """Register a compound event observing this one."""
        if self._triggered:
            parent.child_triggered(self)
        else:
            self._parents.append(parent)

    def remove_parent(self, parent: "Event") -> None:
        try:
            self._parents.remove(parent)
        except ValueError:
            pass

    def child_triggered(self, child: "Event") -> None:
        """Hook for compound events; basic events never have children."""
        raise EventError(f"{type(self).__name__} cannot have child events")

    # ------------------------------------------------------------------
    # SPG metadata
    # ------------------------------------------------------------------
    def wait_edges(self) -> List[tuple]:
        """(source, k, n) tuples describing whom a waiter depends on.

        A basic event is a 1/1 dependency on its source; compound events
        override this to express quorum semantics. Events with no source
        (pure local conditions) contribute no edges.
        """
        if self.source is None:
            return []
        return [(self.source, 1, 1)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "ready" if self._triggered else "pending"
        label = self.name or type(self).__name__
        return f"<{label} {state}>"


def as_wait(target: Any) -> WaitDescriptor:
    """Normalize a yielded value into a WaitDescriptor.

    Coroutines may yield an :class:`Event` directly (shorthand for
    ``event.wait()``) or an explicit descriptor.
    """
    if isinstance(target, WaitDescriptor):
        return target
    if isinstance(target, Event):
        return target.wait()
    raise EventError(f"coroutine yielded non-waitable {target!r}")
