"""Compound events: AndEvent, OrEvent and the paper's QuorumEvent (§3.1–3.2).

Compound events observe child events and derive their own readiness; they
nest arbitrarily (an AndEvent of QuorumEvents, an OrEvent of a QuorumEvent
and a TimerEvent, …). ``QuorumEvent`` is the key fail-slow building block:
a coroutine that waits on it proceeds as soon as *any* quorum of children
has triggered acceptably, so no single fail-slow child sits on the critical
path.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.events.base import Event, EventError


class CompoundEvent(Event):
    """Base for events whose readiness derives from child events.

    Readiness is evaluated *lazily* at observation points (``ready()``,
    ``subscribe``/wait) in addition to eagerly on child triggers. Laziness
    matters during incremental construction: adding an already-triggered
    child to a half-built AndEvent must not fire it before the remaining
    children are attached.
    """

    kind = "compound"

    __slots__ = ("children",)

    def __init__(self, name: str = ""):
        super().__init__(name=name)
        self.children: List[Event] = []

    def add(self, child: Event) -> "CompoundEvent":
        """Attach a child; returns self so adds can be chained."""
        if child is self:
            raise EventError("an event cannot contain itself")
        self.children.append(child)
        self._on_child_added(child)
        if child.ready():
            # Record the child's outcome but defer the readiness decision
            # to the next observation or child trigger.
            self._on_child_triggered(child)
        else:
            child.add_parent(self)
        return self

    def ready(self) -> bool:
        if not self._triggered and self.check_ready():
            self.trigger()
        return self._triggered

    def subscribe(self, notify) -> None:
        self.ready()  # lazy evaluation before parking a waiter
        super().subscribe(notify)

    def check_ready(self) -> bool:
        """Evaluate the composite condition over current child states."""
        raise NotImplementedError

    def child_triggered(self, child: Event) -> None:
        self._on_child_triggered(child)
        if not self._triggered and self.check_ready():
            self.trigger(child.triggered_at)

    # -- subclass hooks -------------------------------------------------
    def _on_child_added(self, child: Event) -> None:
        pass

    def _on_child_triggered(self, child: Event) -> None:
        pass


class AndEvent(CompoundEvent):
    """Triggered when *all* children have triggered."""

    kind = "and"

    __slots__ = ()

    def __init__(self, *children: Event, name: str = "and"):
        super().__init__(name=name)
        for child in children:
            self.add(child)

    def check_ready(self) -> bool:
        return bool(self.children) and all(child.ready() for child in self.children)

    def wait_edges(self) -> List[tuple]:
        edges: List[tuple] = []
        for child in self.children:
            edges.extend(child.wait_edges())
        return edges


class OrEvent(CompoundEvent):
    """Triggered when *any* child has triggered.

    After the wait, inspect each child's ``ready()`` to see which branch
    fired — exactly the fast-path/slow-path pattern of §3.2.
    """

    kind = "or"

    __slots__ = ()

    def __init__(self, *children: Event, name: str = "or"):
        super().__init__(name=name)
        for child in children:
            self.add(child)

    def check_ready(self) -> bool:
        return any(child.ready() for child in self.children)

    def wait_edges(self) -> List[tuple]:
        # An Or-wait depends on its alternatives only weakly: the waiter
        # needs 1 of n branches, so each branch's edges get a "1-of-n"
        # discount. Exception: a source that is *critical in every branch*
        # (its edge has k >= total, so that branch cannot complete without
        # it) cannot be routed around by picking another branch — its edges
        # keep their original k/n and stay on the critical path.
        branch_edges = [child.wait_edges() for child in self.children]
        critical_per_branch = [
            {source for source, k, total in edges if k >= total}
            for edges in branch_edges
        ]
        unavoidable = (
            set.intersection(*critical_per_branch) if critical_per_branch else set()
        )
        n = len(self.children)
        edges: List[tuple] = []
        for child_edges in branch_edges:
            for source, k, total in child_edges:
                if source in unavoidable and k >= total:
                    edges.append((source, k, total))
                else:
                    edges.append((source, k, max(total, n)))
        return edges


class QuorumEvent(CompoundEvent):
    """Triggered once ``quorum`` children have triggered *acceptably*.

    ``classify(child) -> bool`` decides whether a triggered child counts
    toward the quorum (True → ok, False → reject); the default counts every
    trigger. Rejects are tracked so callers — or a second QuorumEvent over
    the same children with the inverse classifier — can express
    "minority-plus-one-reject" conditions precisely (§3.2).

    ``n_total`` (defaults to the number of children when first waited on)
    enables :meth:`definitely_failed`: true once so many children rejected
    that the quorum can no longer be reached.
    """

    kind = "quorum"

    __slots__ = (
        "quorum",
        "n_total",
        "_classify",
        "n_ok",
        "n_reject",
        "ok_children",
        "reject_children",
    )

    def __init__(
        self,
        quorum: int,
        n_total: Optional[int] = None,
        classify: Optional[Callable[[Event], bool]] = None,
        name: str = "quorum",
    ):
        super().__init__(name=name)
        if quorum < 1:
            raise EventError(f"quorum must be >= 1, got {quorum}")
        if n_total is not None and n_total < quorum:
            raise EventError(f"n_total {n_total} < quorum {quorum}")
        self.quorum = quorum
        self.n_total = n_total
        self._classify = classify
        self.n_ok = 0
        self.n_reject = 0
        self.ok_children: List[Event] = []
        self.reject_children: List[Event] = []

    # -- counting --------------------------------------------------------
    def add_ok(self, now: Optional[float] = None) -> None:
        """Count an acceptance directly (callback-style users)."""
        self.n_ok += 1
        if not self.ready() and self.check_ready():
            self.trigger(now)

    def add_reject(self) -> None:
        """Count a rejection directly."""
        self.n_reject += 1

    def _on_child_triggered(self, child: Event) -> None:
        accepted = True if self._classify is None else bool(self._classify(child))
        if accepted:
            self.n_ok += 1
            self.ok_children.append(child)
        else:
            self.n_reject += 1
            self.reject_children.append(child)

    def check_ready(self) -> bool:
        return self.n_ok >= self.quorum

    # -- state -------------------------------------------------------------
    def total(self) -> int:
        """Population size: explicit n_total, else the child count."""
        if self.n_total is not None:
            return self.n_total
        return max(len(self.children), self.quorum)

    def definitely_failed(self) -> bool:
        """True once the quorum is unreachable (too many rejects)."""
        return self.n_reject > self.total() - self.quorum

    def outstanding(self) -> List[Event]:
        """Children that have not yet triggered (the possibly-slow tail)."""
        return [child for child in self.children if not child.ready()]

    def wait_edges(self) -> List[tuple]:
        k, n = self.quorum, self.total()
        edges: List[tuple] = []
        for child in self.children:
            for source, _ck, _cn in child.wait_edges():
                edges.append((source, k, n))
        return edges

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "ready" if self.ready() else "pending"
        return (
            f"<QuorumEvent {self.name!r} {self.n_ok}/{self.quorum} of "
            f"{self.total()} (rejects={self.n_reject}) {state}>"
        )
