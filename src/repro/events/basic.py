"""Basic (non-compound) DepFast events.

Basic events wrap the sim substrate's callbacks into waitable conditions:
timers, value/condition variables, shared counters, RPC completions, disk
completions and CPU-consumption completions. Per §3.2 these are "mostly for
network and disk I/O events as well as other simple conditions such as
waiting for a variable to be set [to a] certain value".
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.events.base import Event, EventError
from repro.sim.kernel import Kernel
from repro.sim.resources import CpuResource, DiskResource


class TimerEvent(Event):
    """Triggers after a fixed virtual delay."""

    kind = "timer"

    __slots__ = ("delay_ms", "_call", "_kernel")

    def __init__(self, kernel: Kernel, delay_ms: float, name: str = "timer"):
        super().__init__(name=name)
        if delay_ms < 0:
            raise EventError(f"negative timer delay {delay_ms}")
        self.delay_ms = delay_ms
        self._call = kernel.schedule(delay_ms, self.trigger, None)
        self._kernel = kernel

    def trigger(self, now: Optional[float] = None) -> None:
        super().trigger(self._kernel.now if now is None else now)

    def cancel(self) -> None:
        """Stop the timer; the event will never trigger."""
        self._call.cancel()


class ValueEvent(Event):
    """Triggers when a value is set; carries the value.

    The one-shot analog of a future/promise. RPC replies and handler
    results ride on these.
    """

    kind = "value"

    __slots__ = ("value",)

    def __init__(self, name: str = "value", source: Optional[str] = None):
        super().__init__(name=name, source=source)
        self.value: Any = None

    def set(self, value: Any, now: Optional[float] = None) -> None:
        if self.ready():
            raise EventError(f"ValueEvent {self.name!r} set twice")
        self.value = value
        self.trigger(now)


class SharedIntEvent(Event):
    """Triggers when a shared integer satisfies a condition.

    Defaults to "counter reaches ``target``" — the building block DepFast
    uses for simple barrier-like conditions. A custom predicate may be
    supplied instead.
    """

    kind = "shared_int"

    __slots__ = ("value", "_predicate")

    def __init__(
        self,
        target: Optional[int] = None,
        predicate: Optional[Callable[[int], bool]] = None,
        name: str = "shared_int",
    ):
        super().__init__(name=name)
        if (target is None) == (predicate is None):
            raise EventError("provide exactly one of target / predicate")
        self.value = 0
        self._predicate = predicate if predicate is not None else (lambda v: v >= target)
        self._maybe_trigger()

    def add(self, n: int = 1, now: Optional[float] = None) -> None:
        self.value += n
        self._maybe_trigger(now)

    def set(self, n: int, now: Optional[float] = None) -> None:
        self.value = n
        self._maybe_trigger(now)

    def _maybe_trigger(self, now: Optional[float] = None) -> None:
        if not self.ready() and self._predicate(self.value):
            self.trigger(now)


class RpcEvent(Event):
    """Completion of one outbound RPC; carries the reply or an error.

    ``source`` is the callee node id — the SPG edge target. The RPC layer
    completes the event via :meth:`complete` / :meth:`fail`; a wait timeout
    does *not* complete it (the reply may still arrive later and is then
    ignored by the already-resumed caller).
    """

    kind = "rpc"

    __slots__ = ("method", "to_node", "reply", "error", "issued_at", "cancel_send")

    def __init__(self, method: str, to_node: str, name: str = ""):
        super().__init__(name=name or f"rpc:{method}->{to_node}", source=to_node)
        self.method = method
        self.to_node = to_node
        self.reply: Any = None
        self.error: Optional[str] = None
        self.issued_at: Optional[float] = None
        self.cancel_send: Optional[Callable[[], bool]] = None

    def complete(self, reply: Any, now: Optional[float] = None) -> None:
        if self.ready():
            return  # late duplicate reply; first one wins
        self.reply = reply
        self.trigger(now)

    def fail(self, error: str, now: Optional[float] = None) -> None:
        if self.ready():
            return
        self.error = error
        self.trigger(now)

    @property
    def ok(self) -> bool:
        return self.ready() and self.error is None

    def latency_ms(self) -> Optional[float]:
        if self.issued_at is None or self.triggered_at is None:
            return None
        return self.triggered_at - self.issued_at


class DiskEvent(Event):
    """Completion of one disk operation (write/read/fsync)."""

    kind = "disk"

    __slots__ = ("op", "n_bytes", "_job")

    def __init__(
        self,
        disk: DiskResource,
        n_bytes: int,
        op: str = "write",
        name: str = "",
        source: Optional[str] = None,
    ):
        super().__init__(name=name or f"disk:{op}", source=source)
        if n_bytes < 0:
            raise EventError(f"negative I/O size {n_bytes}")
        self.op = op
        self.n_bytes = n_bytes
        self._job = disk.submit(
            float(n_bytes), on_done=lambda: self.trigger(disk.kernel.now), label=op
        )

    def cancel(self) -> None:
        """Abandon the I/O (e.g. the issuing node crashed)."""
        self._job.cancel()


class CpuEvent(Event):
    """Completion of a slice of CPU work submitted to a node's CPU queue.

    This is how handler compute cost is modelled: a coroutine that does
    ``cost_ms`` of processing yields a CpuEvent wait, which both delays it
    and occupies the (possibly throttled) CPU resource.
    """

    kind = "cpu"

    __slots__ = ("cost_ms", "_job")

    def __init__(
        self,
        cpu: CpuResource,
        cost_ms: float,
        name: str = "cpu",
        source: Optional[str] = None,
    ):
        super().__init__(name=name, source=source)
        if cost_ms < 0:
            raise EventError(f"negative CPU cost {cost_ms}")
        self.cost_ms = cost_ms
        self._job = cpu.submit(
            cost_ms, on_done=lambda: self.trigger(cpu.kernel.now), label=name
        )

    def cancel(self) -> None:
        self._job.cancel()


class NeverEvent(Event):
    """An event that never triggers on its own — timeouts and tests."""

    kind = "never"

    __slots__ = ()

    def __init__(self, name: str = "never"):
        super().__init__(name=name)
