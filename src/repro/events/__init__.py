"""DepFast events — the paper's core abstraction (§3.1, §3.2).

An :class:`~repro.events.base.Event` is a *wait point*: the only way a
DepFast coroutine can block. Basic events wrap I/O completions and simple
conditions; compound events (:class:`AndEvent`, :class:`OrEvent`,
:class:`QuorumEvent`) compose them, and can be nested arbitrarily.

Code whose only inter-node wait points are :class:`QuorumEvent` waits is,
by the paper's definition, *fail-slow fault-tolerant code* — the checker in
:mod:`repro.trace.verify` enforces exactly that property over traces.
"""

from repro.events.base import Event, EventError, WaitDescriptor, WaitResult, YIELD
from repro.events.basic import (
    CpuEvent,
    DiskEvent,
    NeverEvent,
    RpcEvent,
    SharedIntEvent,
    TimerEvent,
    ValueEvent,
)
from repro.events.compound import AndEvent, CompoundEvent, OrEvent, QuorumEvent

__all__ = [
    "AndEvent",
    "CompoundEvent",
    "CpuEvent",
    "DiskEvent",
    "Event",
    "EventError",
    "NeverEvent",
    "OrEvent",
    "QuorumEvent",
    "RpcEvent",
    "SharedIntEvent",
    "TimerEvent",
    "ValueEvent",
    "WaitDescriptor",
    "WaitResult",
    "YIELD",
]
