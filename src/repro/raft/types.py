"""Raft value types: roles and log entries."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.storage.kvstore import KvOp

# Serialized overhead per log entry beyond the value payload.
ENTRY_OVERHEAD_BYTES = 32


class Role(enum.Enum):
    FOLLOWER = "follower"
    CANDIDATE = "candidate"
    LEADER = "leader"
    # Non-voting member: replicated to and applying, but outside every
    # election and commit quorum. The mitigation controller demotes a
    # persistently fail-slow follower to this role so its slowness can
    # never sit on a quorum path, and promotes it back after probation.
    LEARNER = "learner"


# Log-entry op tag for single-server membership changes. Entries carrying
# this tag flow through the ordinary replication pipeline but are applied
# to the group's voting configuration instead of the KV state machine.
CONF_CHANGE_OP = "raft_conf"
CONF_DEMOTE = "demote"
CONF_PROMOTE = "promote"


def is_conf_change(op) -> bool:
    """True when a log-entry op is a membership change, not a KV command."""
    return bool(op) and op[0] == CONF_CHANGE_OP


@dataclass(frozen=True)
class LogEntry:
    """One replicated command."""

    term: int
    index: int
    op: KvOp
    size_bytes: int

    @staticmethod
    def sized(term: int, index: int, op: KvOp) -> "LogEntry":
        """Build an entry, estimating its wire/disk size from the op."""
        payload = sum(len(str(field)) for field in op)
        return LogEntry(term, index, op, payload + ENTRY_OVERHEAD_BYTES)


def entries_size(entries) -> int:
    """Total wire size of a batch of entries."""
    return sum(entry.size_bytes for entry in entries)
