"""Raft value types: roles and log entries."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.storage.kvstore import KvOp

# Serialized overhead per log entry beyond the value payload.
ENTRY_OVERHEAD_BYTES = 32


class Role(enum.Enum):
    FOLLOWER = "follower"
    CANDIDATE = "candidate"
    LEADER = "leader"


@dataclass(frozen=True)
class LogEntry:
    """One replicated command."""

    term: int
    index: int
    op: KvOp
    size_bytes: int

    @staticmethod
    def sized(term: int, index: int, op: KvOp) -> "LogEntry":
        """Build an entry, estimating its wire/disk size from the op."""
        payload = sum(len(str(field)) for field in op)
        return LogEntry(term, index, op, payload + ENTRY_OVERHEAD_BYTES)


def entries_size(entries) -> int:
    """Total wire size of a batch of entries."""
    return sum(entry.size_bytes for entry in entries)
