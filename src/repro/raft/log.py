"""The Raft log: in-memory entries, entry cache, and log compaction.

The simulation keeps live entries in memory (state is cheap); the
:class:`~repro.storage.entry_cache.EntryCache` decides whether *reading*
an old entry is free (cache hit) or costs a disk read (miss) — the
distinction at the heart of the TiDB root cause and of DepFastRaft's
non-blocking repair path.

Compaction gives the log a *base*: everything at or below ``base_index``
has been folded into a snapshot. Entries are then 1-based above the base;
followers that fall behind the base are caught up by snapshot install
rather than entry replay.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.raft.types import LogEntry
from repro.storage.entry_cache import EntryCache


class RaftLog:
    """Append-only log with term queries, conflict truncation, compaction."""

    def __init__(self, cache_entries: int = 4096):
        self._entries: List[LogEntry] = []
        self.cache = EntryCache(max_entries=cache_entries)
        # Snapshot boundary: indices <= base_index live in the snapshot.
        self.base_index = 0
        self.base_term = 0

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    def last_index(self) -> int:
        return self.base_index + len(self._entries)

    def last_term(self) -> int:
        if self._entries:
            return self._entries[-1].term
        return self.base_term

    def live_entries(self) -> int:
        """Entries currently held in memory (above the snapshot base)."""
        return len(self._entries)

    def term_at(self, index: int) -> Optional[int]:
        """Term at ``index``; the base's term at the base; None if absent
        (beyond the end, or compacted away below the base)."""
        if index == self.base_index:
            return self.base_term
        if self.base_index < index <= self.last_index():
            return self._entries[index - self.base_index - 1].term
        return None

    def entry_at(self, index: int) -> LogEntry:
        if not self.base_index < index <= self.last_index():
            raise IndexError(
                f"log has no live index {index} "
                f"(base={self.base_index}, last={self.last_index()})"
            )
        return self._entries[index - self.base_index - 1]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(self, entry: LogEntry) -> None:
        expected = self.last_index() + 1
        if entry.index != expected:
            raise ValueError(f"appending index {entry.index}, expected {expected}")
        self._entries.append(entry)
        self.cache.put(entry.index, entry)

    def truncate_from(self, index: int) -> int:
        """Drop entries at ``index`` and beyond; returns how many dropped."""
        if index <= self.base_index:
            raise ValueError(f"cannot truncate into the snapshot (base={self.base_index})")
        offset = index - self.base_index - 1
        dropped = max(0, len(self._entries) - offset)
        del self._entries[offset:]
        return dropped

    def append_or_overwrite(self, entries: Sequence[LogEntry]) -> int:
        """Follower-side install: truncate conflicts, append the new suffix.

        Entries at or below the snapshot base are skipped (the snapshot
        already covers them). Returns the number of genuinely new/changed
        entries (the ones that must hit the WAL).
        """
        changed = 0
        for entry in entries:
            if entry.index <= self.base_index:
                continue
            existing_term = self.term_at(entry.index)
            if existing_term is None:
                self.append(entry)
                changed += 1
            elif existing_term != entry.term:
                self.truncate_from(entry.index)
                self.append(entry)
                changed += 1
            # else: duplicate of what we already have; skip.
        return changed

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def truncate_prefix(self, new_base_index: int) -> int:
        """Fold everything up to ``new_base_index`` into the snapshot.

        Returns the number of entries compacted away. The new base must be
        a live index (its term is recorded as the snapshot's term).
        """
        if new_base_index <= self.base_index:
            return 0
        if new_base_index > self.last_index():
            raise ValueError(
                f"cannot compact to {new_base_index}: last is {self.last_index()}"
            )
        new_base_term = self.term_at(new_base_index)
        dropped = new_base_index - self.base_index
        del self._entries[:dropped]
        self.base_index = new_base_index
        self.base_term = new_base_term if new_base_term is not None else 0
        return dropped

    def reset_to_snapshot(self, last_index: int, last_term: int) -> None:
        """Replace the whole log with a received snapshot boundary."""
        self._entries.clear()
        self.base_index = last_index
        self.base_term = last_term

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def slice(self, first: int, last: int) -> List[LogEntry]:
        """Live entries in [first, last], clamped to the live range."""
        if first > last:
            return []
        first = max(self.base_index + 1, first)
        last = min(self.last_index(), last)
        if first > last:
            return []
        offset = self.base_index + 1
        return self._entries[first - offset : last - offset + 1]

    def slice_cached(self, first: int, last: int) -> Tuple[List[LogEntry], int, int]:
        """Like :meth:`slice` but reports what must come back from disk.

        Returns (entries, disk_bytes, miss_count): a non-zero miss count
        means some requested entries were evicted from the entry cache and
        a disk read is required before they can be sent. ``disk_bytes`` is
        the entries' raw size; callers model read amplification (page-
        granular random reads) on top of the miss count.
        """
        entries = self.slice(first, last)
        disk_bytes = 0
        misses = 0
        for entry in entries:
            hit, _cached = self.cache.get(entry.index)
            if not hit:
                disk_bytes += entry.size_bytes
                misses += 1
        return entries, disk_bytes, misses

    def matches(self, prev_index: int, prev_term: int) -> bool:
        """Raft's log-matching check for an incoming AppendEntries.

        Anything below our snapshot base is committed state we already
        hold, so it matches by construction.
        """
        if prev_index < self.base_index:
            return True
        term = self.term_at(prev_index)
        return term is not None and term == prev_term

    def up_to_date(self, other_last_term: int, other_last_index: int) -> bool:
        """True if (other_term, other_index) is at least as recent as ours."""
        if other_last_term != self.last_term():
            return other_last_term > self.last_term()
        return other_last_index >= self.last_index()
