"""DepFastRaft tuning knobs.

Timing values are virtual milliseconds; CPU costs are CPU-ms charged to
the node's (possibly throttled) CPU resource, which is how handler
processing cost is modelled. The defaults are calibrated so a healthy
3-node group serves ~5K requests/s with the leader around 60–75% CPU —
the paper's operating point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass
class RaftConfig:
    # -- protocol timing ------------------------------------------------
    heartbeat_interval_ms: float = 100.0
    election_timeout_min_ms: float = 1200.0
    election_timeout_max_ms: float = 2400.0
    append_rpc_timeout_ms: float = 500.0
    vote_rpc_timeout_ms: float = 400.0
    client_commit_timeout_ms: float = 3000.0

    # -- batching -------------------------------------------------------
    batch_max_entries: int = 64
    repair_batch_entries: int = 64

    # -- leader entry cache (recent entries kept in memory) -------------
    entry_cache_entries: int = 4096

    # -- fail-slow-aware framework policy --------------------------------
    discard_on_quorum: bool = True

    # -- read path --------------------------------------------------------
    # "log": reads are replicated log entries (simplest, always safe).
    # "read_index": leader confirms leadership with a quorum probe, then
    #   serves from the applied state machine (no log write per read).
    # "lease": leader serves reads locally while it holds a heartbeat
    #   lease, falling back to read_index when the lease lapsed.
    read_mode: str = "log"
    lease_duration_ms: float = 300.0

    # -- log compaction ----------------------------------------------------
    # Snapshot + truncate once this many entries are applied beyond the
    # log base (None disables compaction). ``compaction_keep_entries`` of
    # recent log tail stay for ordinary repair; followers further behind
    # get a snapshot install.
    snapshot_threshold_entries: Optional[int] = None
    compaction_keep_entries: int = 1024

    # -- CPU cost model (CPU-ms) -----------------------------------------
    client_op_cost_ms: float = 0.45        # admission + request execution
    append_base_cost_ms: float = 0.05      # per AppendEntries processed
    append_entry_cost_ms: float = 0.02     # per entry appended (follower)
    apply_cost_ms: float = 0.06            # per entry applied to the KV
    replicate_entry_cost_ms: float = 0.01  # per entry serialized per peer

    # -- membership ------------------------------------------------------
    # Initial voting members (None = every group member votes). Nodes in
    # the group but not listed start as non-voting learners: replicated
    # to, never counted toward election or commit quorums. Runtime
    # demotions/promotions flow through the replicated conf-change path
    # (RaftNode.propose_conf_change), not this knob.
    initial_voters: Optional[List[str]] = None

    # If set, this node gets a short first election timeout so the group
    # elects a deterministic initial leader (the paper measures a stable
    # leader; elections still work normally afterwards).
    preferred_leader: Optional[str] = None

    def __post_init__(self) -> None:
        if self.election_timeout_min_ms > self.election_timeout_max_ms:
            raise ValueError("election timeout min > max")
        if self.batch_max_entries < 1:
            raise ValueError("batch size must be >= 1")
        if self.heartbeat_interval_ms >= self.election_timeout_min_ms:
            raise ValueError("heartbeats must be faster than election timeouts")
        if self.initial_voters is not None and not self.initial_voters:
            raise ValueError("initial_voters must name at least one member")
        if self.read_mode not in ("log", "read_index", "lease"):
            raise ValueError(f"unknown read mode {self.read_mode!r}")
        if self.snapshot_threshold_entries is not None and (
            self.snapshot_threshold_entries <= self.compaction_keep_entries
        ):
            raise ValueError("snapshot threshold must exceed the kept tail")
