"""Deployment helpers for DepFastRaft groups: deploy, restart, converge."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.cluster import Cluster
from repro.cluster.node import NodeSpec
from repro.raft.config import RaftConfig
from repro.raft.node import RaftNode
from repro.raft.types import Role
from repro.storage.durable import DurableRaftState

# DepFastRaft is a fail-slow-aware implementation: bounded send buffers
# (4 MB per connection) on top of the quorum-discard framework policy.
DEPFAST_BUFFER_LIMIT = 4 * 1024 * 1024


def depfast_node_spec() -> NodeSpec:
    return NodeSpec(send_buffer_limit=DEPFAST_BUFFER_LIMIT)


def deploy_depfast_raft(
    cluster: Cluster,
    group: List[str],
    config: Optional[RaftConfig] = None,
    spec: Optional[NodeSpec] = None,
    state_machine_factory=None,
) -> Dict[str, RaftNode]:
    """Create and start one DepFastRaft group on the cluster.

    Returns node_id → RaftNode. By default the first group member is the
    preferred initial leader so experiments start from a stable, known
    leader (as the paper's measurements do). ``state_machine_factory``
    builds one state machine per replica (defaults to a plain KvStore).
    """
    if len(group) % 2 == 0:
        raise ValueError(f"group size must be odd, got {len(group)}")
    config = config or RaftConfig(preferred_leader=group[0])
    raft_nodes: Dict[str, RaftNode] = {}
    for node_id in group:
        node = cluster.add_node(node_id, spec=spec or depfast_node_spec())
        raft_nodes[node_id] = RaftNode(
            node,
            group,
            config=config,
            rng=cluster.rng.stream(f"raft:{node_id}"),
            state_machine=state_machine_factory() if state_machine_factory else None,
            durable=DurableRaftState(node_id),
            state_machine_factory=state_machine_factory,
        )
    for raft_node in raft_nodes.values():
        raft_node.start()
    return raft_nodes


def restart_raft_node(
    cluster: Cluster, raft_nodes: Dict[str, RaftNode], node_id: str
) -> RaftNode:
    """Bring a crashed group member back: reboot + recovery.

    The machine restarts (fresh process, reset connections), then a new
    :class:`RaftNode` recovers from the old one's durable state —
    snapshot load + WAL replay, persisted term and vote. The entry in
    ``raft_nodes`` is replaced in place so callers holding the dict see
    the recovered node.
    """
    old = raft_nodes[node_id]
    node = cluster.node(node_id)
    node.restart()
    factory = old.state_machine_factory
    recovered = RaftNode(
        node,
        old.group,
        config=old.config,
        rng=old.rng,  # continue the same seeded stream: runs stay reproducible
        state_machine=factory() if factory else None,
        durable=old.durable,
        state_machine_factory=factory,
    )
    raft_nodes[node_id] = recovered
    recovered.start()
    return recovered


def find_leader(raft_nodes: Dict[str, RaftNode]) -> Optional[RaftNode]:
    """The live leader with the highest term, or None."""
    leaders = [
        raft_node
        for raft_node in raft_nodes.values()
        if raft_node.role == Role.LEADER and not raft_node.node.crashed
    ]
    if not leaders:
        return None
    return max(leaders, key=lambda raft_node: raft_node.term)


def wait_for_leader(
    cluster: Cluster,
    raft_nodes: Dict[str, RaftNode],
    deadline_ms: float = 10_000.0,
    step_ms: float = 50.0,
) -> RaftNode:
    """Advance the simulation until a leader exists; returns it."""
    while cluster.kernel.now < deadline_ms:
        leader = find_leader(raft_nodes)
        if leader is not None:
            return leader
        cluster.run(cluster.kernel.now + step_ms)
    leader = find_leader(raft_nodes)
    if leader is None:
        raise RuntimeError(f"no leader elected within {deadline_ms}ms")
    return leader
