"""DepFastRaft (§3.4): a Raft-based replicated KV store written on DepFast.

Both halves of Raft — leader election and data replication — follow the
same pattern: broadcast, then proceed on a quorum of acknowledgements.
Every inter-node wait in this package is a
:class:`~repro.events.compound.QuorumEvent` (or an AndEvent of one with a
local durability event), so by the paper's definition the logic is
fail-slow fault-tolerant code — the property
:func:`repro.trace.verify.check_fail_slow_tolerance` verifies over traces.

Use :func:`deploy_depfast_raft` to stand a group up on a
:class:`~repro.cluster.cluster.Cluster`.
"""

from repro.raft.config import RaftConfig
from repro.raft.log import RaftLog
from repro.raft.node import RaftNode
from repro.raft.service import deploy_depfast_raft, find_leader
from repro.raft.types import LogEntry, Role

__all__ = [
    "LogEntry",
    "RaftConfig",
    "RaftLog",
    "RaftNode",
    "Role",
    "deploy_depfast_raft",
    "find_leader",
]
