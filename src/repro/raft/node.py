"""DepFastRaft node: election + replication, written against QuorumEvent.

The structure mirrors the paper's §3.1/§3.4 code:

* the **batcher** appends client ops to the log and waits on
  ``AndEvent(local WAL fsync, QuorumEvent(majority-1 of followers))`` —
  never on any single follower;
* followers that fall behind (because the quorum-aware framework discarded
  their messages, or because they are fail-slow) are caught up by a
  background **repair** coroutine whose waits — including disk reads of
  entries evicted from the entry cache — are off the client critical path
  (contrast with the TiDB baseline, which blocks its one thread on that
  same read);
* **election** is a QuorumCall of RequestVotes;
* every cross-node wait is a quorum wait, so the trace verifier's
  fail-slow-tolerance check passes by construction.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any, Deque, Dict, Generator, List, Optional, Set, Tuple

from repro.cluster.node import Node
from repro.events.base import Event
from repro.events.basic import RpcEvent, ValueEvent
from repro.events.compound import QuorumEvent
from repro.net.rpc import QuorumCall
from repro.raft.config import RaftConfig
from repro.raft.log import RaftLog
from repro.raft.types import (
    CONF_CHANGE_OP,
    CONF_DEMOTE,
    CONF_PROMOTE,
    LogEntry,
    Role,
    entries_size,
    is_conf_change,
)
from repro.storage.durable import DurableRaftState
from repro.storage.kvstore import KvStore


class _PendingOp:
    """A client operation waiting to be batched and committed."""

    __slots__ = ("op", "done")

    def __init__(self, op, done: ValueEvent):
        self.op = op
        self.done = done


class RaftNode:
    """One member of a DepFastRaft group."""

    def __init__(
        self,
        node: Node,
        group: List[str],
        config: Optional[RaftConfig] = None,
        rng: Optional[random.Random] = None,
        state_machine: Optional[KvStore] = None,
        durable: Optional[DurableRaftState] = None,
        state_machine_factory=None,
    ):
        if node.node_id not in group:
            raise ValueError(f"{node.node_id} not in group {group}")
        self.node = node
        self.id = node.node_id
        self.peers = [member for member in group if member != self.id]
        self.group = list(group)
        self.config = config or RaftConfig()
        # Voting configuration: quorums (elections, commits, read probes)
        # count voters only. Learners — group members outside this set —
        # are replicated to off the quorum path. Mutated exclusively by
        # applying replicated conf-change entries (single-server changes).
        if self.config.initial_voters is not None:
            voters = [member for member in group if member in self.config.initial_voters]
            if not voters:
                raise ValueError("initial_voters contains no group member")
            self.voting_members: Set[str] = set(voters)
        else:
            self.voting_members = set(group)
        self.conf_changes_applied = 0
        self.rng = rng or random.Random(hash(self.id) & 0xFFFF)

        self.rt = node.runtime
        self.ep = node.endpoint

        # Persistent state: mirrored into ``durable`` (simulated stable
        # storage) so a crash–restart can recover it. Term/vote updates are
        # persisted immediately (metadata writes); log entries only count
        # as durable once the WAL fsync covering them completes.
        self.durable = durable if durable is not None else DurableRaftState(node.node_id)
        self.state_machine_factory = state_machine_factory
        self.term = 0
        self.voted_for: Optional[str] = None
        self.role = Role.FOLLOWER if self.id in self.voting_members else Role.LEARNER
        self.leader_hint: Optional[str] = None
        self.log = RaftLog(cache_entries=self.config.entry_cache_entries)
        # The replicated state machine: a plain KV store by default, or
        # any KvStore subclass (e.g. the transactional store of repro.txn).
        self.kv = state_machine if state_machine is not None else KvStore()
        self.commit_index = 0
        self.last_applied = 0
        self.recovered = False
        if self.durable.has_state():
            self._recover_from_durable()

        # Leader volatile state. ``_sent_index`` tracks stream contiguity
        # (last index sent on the direct FIFO stream, acked or not);
        # ``_match_index`` tracks acknowledgements. A follower whose acks
        # merely lag keeps receiving the direct stream; repair runs only
        # when the stream actually broke (discard, overflow, mismatch).
        self._next_index: Dict[str, int] = {}
        self._match_index: Dict[str, int] = {}
        self._sent_index: Dict[str, int] = {}
        self._repairing: Set[str] = set()
        self._catchup_promises: List[Tuple[str, int, Event]] = []
        self._completions: Dict[int, ValueEvent] = {}
        self._pending_ops: Deque[_PendingOp] = deque()
        self._pending_signal: Optional[ValueEvent] = None
        self._step_down: Optional[ValueEvent] = None

        # Follower serialization + liveness.
        self._append_gate = Event(name="append-gate")
        self._append_gate.trigger()
        self._ht_event: Optional[ValueEvent] = None
        self._applying = False

        # Counters for tests/analysis.
        self.elections_started = 0
        self.became_leader = 0
        self.batches_committed = 0
        self.repairs_started = 0
        self.leadership_transfers = 0

        # Leadership transfer: set by a `timeout_now` message from the
        # current leader; the main loop runs an immediate election.
        self._election_now = False

        # Follower-side observability consumed by the fail-slow detector
        # (§5): what the leader last reported about itself, and a leader
        # this node suspects of being fail-slow (suspected leaders no
        # longer reset our election timer, so a re-election happens).
        self.last_heartbeat_at: Optional[float] = None
        self.last_leader_pending = 0
        # Peak of the reports since a consumer last reset it: the queue
        # depth is bursty at heartbeat granularity, so sampling only the
        # latest report at a coarser cadence aliases the backlog away.
        self.peak_leader_pending = 0
        self.suspected_leader: Optional[str] = None

        # Highest log index proven consistent with the current term's
        # leader (by a passed AppendEntries check). A bare heartbeat may
        # only advance commit_index up to here: beyond it this node could
        # hold a stale uncommitted tail from an older leader, and
        # committing that tail would apply the wrong entries.
        self._verified_index = 0

        # Read path (read_index / lease modes) and compaction state.
        self._lease_until = -1.0
        self.reads_served = 0
        self.read_probes = 0
        self.snapshots_taken = 0
        self.snapshots_installed = 0

        self.ep.register("append_entries", self._on_append_entries)
        self.ep.register("heartbeat", self._on_heartbeat)
        self.ep.register("request_vote", self._on_request_vote)
        self.ep.register("client_request", self._on_client_request)
        self.ep.register("read_probe", self._on_read_probe)
        self.ep.register("install_snapshot", self._on_install_snapshot)
        self.ep.register("lag_report", self._on_lag_report)
        self.ep.register("timeout_now", self._on_timeout_now)

    # ==================================================================
    # Membership
    # ==================================================================
    @property
    def majority(self) -> int:
        """Quorum size over the *voting* configuration."""
        return len(self.voting_members) // 2 + 1

    def is_voter(self, node_id: Optional[str] = None) -> bool:
        return (node_id or self.id) in self.voting_members

    def voting_peers(self) -> List[str]:
        return [peer for peer in self.peers if peer in self.voting_members]

    # ==================================================================
    # Lifecycle
    # ==================================================================
    def start(self) -> None:
        self.node.start()
        self.rt.spawn(self._main_loop(), name=f"{self.id}:raft-main")

    def _recover_from_durable(self) -> None:
        """Crash recovery: snapshot load + WAL replay from stable storage.

        Restores term/vote, the snapshotted state machine and the durable
        log suffix. ``commit_index`` restarts at the snapshot base — like
        real Raft, commit progress is re-learned from the leader (or
        re-established by this node committing a no-op if it wins an
        election).
        """
        self.durable.recoveries += 1
        self.recovered = True
        self.term = self.durable.term
        self.voted_for = self.durable.voted_for
        if self.durable.snapshot is not None:
            self.kv.restore_state(self.durable.snapshot)
            self.log.reset_to_snapshot(
                self.durable.snapshot_index, self.durable.snapshot_term
            )
        for entry in self.durable.recovered_entries():
            self.log.append(entry)
        self.commit_index = self.log.base_index
        self.last_applied = self.log.base_index

    def _persist_term(self) -> None:
        self.durable.save_term(self.term, self.voted_for)

    def _stage_durable(self, entries: List[LogEntry]):
        """WAL-append ``entries`` and return the fsync event to wait on.

        The durable store marks them recoverable only when the bytes are
        actually on the platter — ``on_durable`` fires at real fsync
        completion, not at acknowledgement time, so a write-behind WAL
        that acks early cannot over-report disk contents — and only if
        the process is still alive to observe it (a flush racing a crash
        did not make it to the platter).
        """
        self.node.wal.append(entries_size(entries))
        self.durable.stage_entries(entries)
        covered = self.durable.begin_sync()
        return self.node.wal.sync(
            on_durable=lambda _covered=covered: (
                None if self.node.crashed else self.durable.commit_sync(_covered)
            )
        )

    def is_leader(self) -> bool:
        return self.role == Role.LEADER and not self.node.crashed

    def _leading(self, term: int) -> bool:
        return self.role == Role.LEADER and self.term == term and not self.rt.crashed

    # ==================================================================
    # Main loop: follower timers, elections, leadership
    # ==================================================================
    def _main_loop(self) -> Generator:
        while not self.rt.crashed:
            if self.role == Role.LEADER:
                self._step_down = ValueEvent(name=f"{self.id}:step-down")
                yield self._step_down.wait()
                continue
            self._ht_event = ValueEvent(name=f"{self.id}:heartbeat-seen")
            result = yield self._ht_event.wait(timeout_ms=self._election_timeout())
            if self.role == Role.LEADER:
                continue
            if self._election_now:
                # Leadership transfer: the leader asked us to take over
                # without waiting out an election timeout.
                self._election_now = False
                if self.role == Role.FOLLOWER and self.is_voter():
                    yield from self._run_election()
                continue
            if result.timed_out and self.role == Role.FOLLOWER and self.is_voter():
                yield from self._run_election()
            # Learners (and demoted voters) sit out elections entirely:
            # a quiet cluster leaves them parked on the heartbeat wait.

    def _election_timeout(self) -> float:
        cfg = self.config
        if cfg.preferred_leader is not None and self.term == 0:
            # Deterministic first election: the preferred node times out
            # first and wins before anyone else stirs.
            if cfg.preferred_leader == self.id:
                return 10.0 + self.rng.uniform(0.0, 5.0)
            return cfg.election_timeout_min_ms + self.rng.uniform(
                0.0, cfg.election_timeout_max_ms - cfg.election_timeout_min_ms
            )
        return cfg.election_timeout_min_ms + self.rng.uniform(
            0.0, self.config.election_timeout_max_ms - cfg.election_timeout_min_ms
        )

    def _poke_heartbeat(self) -> None:
        if self._ht_event is not None and not self._ht_event.ready():
            self._ht_event.set(True, now=self.rt.now)

    def _run_election(self) -> Generator:
        cfg = self.config
        if not self.is_voter():
            return  # learners never campaign
        self.role = Role.CANDIDATE
        self.term += 1
        term = self.term
        self.voted_for = self.id
        self._persist_term()
        self.elections_started += 1
        vote_peers = self.voting_peers()
        if not vote_peers:
            self._become_leader(term)
            return
        payload = {
            "term": term,
            "candidate": self.id,
            "last_index": self.log.last_index(),
            "last_term": self.log.last_term(),
        }
        call = QuorumCall(
            self.ep,
            vote_peers,
            "request_vote",
            payload,
            size_bytes=32,
            quorum=self.majority - 1,
            classify=lambda ev: bool(ev.reply.get("granted")),
            discard_on_quorum=cfg.discard_on_quorum,
            name=f"{self.id}:election@{term}",
        )
        for rpc in call.calls:
            rpc.subscribe(self._check_reply_term)
        yield call.wait(timeout_ms=cfg.vote_rpc_timeout_ms)
        if self.role != Role.CANDIDATE or self.term != term:
            return  # a new leader or term appeared meanwhile
        if call.event.ready():
            self._become_leader(term)
        else:
            self.role = Role.FOLLOWER  # retry after a fresh randomized timeout

    def _become_leader(self, term: int) -> None:
        self.role = Role.LEADER
        self.leader_hint = self.id
        self.became_leader += 1
        last = self.log.last_index()
        self._next_index = {peer: last + 1 for peer in self.peers}
        self._match_index = {peer: 0 for peer in self.peers}
        self._sent_index = {peer: last for peer in self.peers}
        self._repairing = set()
        self._catchup_promises = []
        if self.log.last_index() > self.commit_index:
            # Uncommitted tail inherited from a previous term (or replayed
            # from the WAL after a crash): Raft may only commit it behind
            # an entry of the *current* term, so queue a no-op to drive
            # the commit index forward even if no client traffic arrives.
            self._pending_ops.append(
                _PendingOp(("noop",), ValueEvent(name=f"{self.id}:noop"))
            )
        self.rt.spawn(self._batcher(term), name=f"{self.id}:batcher@{term}")
        if self.peers:
            self.rt.spawn(self._heartbeat_loop(term), name=f"{self.id}:heartbeats@{term}")

    def _check_reply_term(self, rpc: RpcEvent) -> None:
        if rpc.ok and isinstance(rpc.reply, dict):
            self._observe_term(rpc.reply.get("term", 0), leader=None)

    def _observe_term(self, term: int, leader: Optional[str]) -> None:
        if term > self.term:
            self.term = term
            self.voted_for = None
            self._persist_term()
            # Consistency proven against the old term's leader says nothing
            # about the new one's log; re-prove before trusting heartbeats.
            self._verified_index = 0
            if self.role in (Role.LEADER, Role.CANDIDATE):
                # Learners stay learners: a higher term must not promote
                # a non-voting member back into the follower pool.
                self.role = Role.FOLLOWER if self.is_voter() else Role.LEARNER
                if self._step_down is not None and not self._step_down.ready():
                    self._step_down.set(True, now=self.rt.now)
        if leader is not None:
            self.leader_hint = leader

    # ==================================================================
    # Leader: batching and replication
    # ==================================================================
    def _batcher(self, term: int) -> Generator:
        cfg = self.config
        while self._leading(term):
            if not self._pending_ops:
                self._pending_signal = ValueEvent(name=f"{self.id}:pending")
                yield self._pending_signal.wait(timeout_ms=cfg.heartbeat_interval_ms)
                if not self._pending_ops:
                    continue
            batch: List[_PendingOp] = []
            while self._pending_ops and len(batch) < cfg.batch_max_entries:
                batch.append(self._pending_ops.popleft())
            if not self._leading(term):
                self._fail_batch(batch)
                return
            first = self.log.last_index() + 1
            entries: List[LogEntry] = []
            for offset, pending in enumerate(batch):
                entry = LogEntry.sized(term, first + offset, pending.op)
                self.log.append(entry)
                entries.append(entry)
                self._completions[entry.index] = pending.done
            last = entries[-1].index

            build_cost = cfg.append_base_cost_ms + (
                len(entries) * cfg.replicate_entry_cost_ms * (1 + len(self.peers))
            )
            yield self.rt.compute(build_cost, name="batch-build")

            # One quorum over {local durability} ∪ {voting follower acks}:
            # commit when any majority of the *voting configuration* holds
            # the batch. This is Figure 2's "2/3" wait — and it even
            # tolerates the leader's own disk being the slow member.
            # Learners receive the same entries on the same stream but
            # their acks never gate the commit.
            local_sync = self._stage_durable(entries)
            quorum = QuorumEvent(
                self.majority,
                n_total=len(self.voting_members),
                classify=self._classify_append,
                name=f"{self.id}:repl@{first}-{last}",
            )
            quorum.add(local_sync)
            for peer in self.peers:
                voter = peer in self.voting_members
                if peer not in self._repairing and self._sent_index[peer] == first - 1:
                    self._sent_index[peer] = last
                    rpc = self._send_batch_append(peer, first - 1, entries, term)
                    if voter:
                        quorum.add(rpc)
                else:
                    if voter:
                        quorum.add(self._catchup_promise(peer, last))
                    self._ensure_repair(peer, term)
            if cfg.discard_on_quorum:
                quorum.subscribe(self._discard_outstanding)
            tracer = self.rt.scheduler.tracer
            if tracer is not None and self.peers:
                # §5 trace point: quorum-arrival ranks feed the online
                # fail-slow scorer (who made the commit quorum, who
                # straggled). Pure observation — no kernel interaction.
                quorum.subscribe(
                    lambda ev, _t=tracer: _t.report_quorum_event(self.id, ev, self.rt.now)
                )

            commit_gate = quorum
            yield commit_gate.wait(timeout_ms=cfg.append_rpc_timeout_ms)
            stalls = 0
            while not commit_gate.ready() and self._leading(term):
                # Quorum is late: push repair at whoever has not acked.
                for peer in self.peers:
                    if self._match_index[peer] < last:
                        self._ensure_repair(peer, term)
                yield commit_gate.wait(timeout_ms=cfg.append_rpc_timeout_ms)
                stalls += 1
                if stalls > 40:
                    break  # let client timeouts surface the stall
            if not self._leading(term):
                self._fail_batch(batch)
                return
            if commit_gate.ready():
                self.commit_index = max(self.commit_index, last)
                self.batches_committed += 1
                yield from self._apply_committed()

    def _classify_append(self, child: Event) -> bool:
        if isinstance(child, RpcEvent):
            return child.ok and bool(child.reply.get("success"))
        return True  # catch-up promises only ever trigger on success

    def _discard_outstanding(self, quorum_event) -> None:
        for child in quorum_event.outstanding():
            if isinstance(child, RpcEvent) and child.cancel_send is not None:
                child.cancel_send()

    def _send_batch_append(
        self, peer: str, prev_index: int, entries: List[LogEntry], term: int
    ) -> RpcEvent:
        """Critical-path replication send from the batcher.

        Hook point for hedged variants (``repro.hedging``): they tag the
        send with a hedge group and race a duplicate copy at the link's
        latency percentile. Plain DepFastRaft never hedges — the quorum
        event already decouples the commit from stragglers.
        """
        return self._send_append(peer, prev_index, entries, term)

    def _send_append(
        self,
        peer: str,
        prev_index: int,
        entries: List[LogEntry],
        term: int,
        hedge_group: Optional[Tuple] = None,
    ) -> RpcEvent:
        payload = {
            "term": term,
            "leader": self.id,
            "prev_index": prev_index,
            "prev_term": self.log.term_at(prev_index) or 0,
            "entries": entries,
            "commit": self.commit_index,
        }
        last_sent = entries[-1].index if entries else prev_index
        rpc = self.ep.call(
            peer,
            "append_entries",
            payload,
            size_bytes=entries_size(entries) + 64,
            hedge_group=hedge_group,
        )
        rpc.subscribe(
            lambda ev, _peer=peer, _last=last_sent, _term=term: self._on_append_reply(
                _peer, ev, _last, _term
            )
        )
        return rpc

    def _on_append_reply(self, peer: str, rpc: RpcEvent, last_sent: int, term: int) -> None:
        if not self._leading(term):
            return
        if not rpc.ok:
            # Send failed outright (e.g. bounded-buffer overflow): the
            # direct stream is broken at whatever was last acked.
            self._mark_stream_broken(peer, term)
            return
        if not isinstance(rpc.reply, dict):
            return
        reply = rpc.reply
        self._observe_term(reply.get("term", 0), leader=None)
        if not self._leading(term):
            return
        if reply.get("success"):
            match = reply.get("match", last_sent)
            if match > self._match_index[peer]:
                self._match_index[peer] = match
                self._next_index[peer] = match + 1
                self._fire_catchup_promises(peer)
            elif self._next_index[peer] <= match:
                # Success below the recorded match: the peer rebooted under
                # a tripped breaker and its write-behind-acked tail never
                # hit the platter, so its log is shorter than what it acked.
                # match stays monotone (the lost tail was committed by the
                # majority), but next must follow the peer's real log or
                # repair re-sends the same already-held batch forever.
                self._next_index[peer] = match + 1
        else:
            hint = reply.get("hint", 0)
            self._next_index[peer] = max(1, min(self._next_index[peer], hint + 1))
            self._mark_stream_broken(peer, term)

    def _mark_stream_broken(self, peer: str, term: int) -> None:
        self._sent_index[peer] = min(self._sent_index[peer], self._match_index[peer])
        self._ensure_repair(peer, term)

    def _catchup_promise(self, peer: str, target_index: int) -> Event:
        promise = Event(name=f"catchup:{peer}@{target_index}", source=peer)
        if self._match_index.get(peer, 0) >= target_index:
            promise.trigger(self.rt.now)
        else:
            self._catchup_promises.append((peer, target_index, promise))
        return promise

    def _fire_catchup_promises(self, peer: str) -> None:
        match = self._match_index.get(peer, 0)
        remaining = []
        for entry_peer, target, promise in self._catchup_promises:
            if entry_peer == peer and match >= target:
                promise.trigger(self.rt.now)
            elif not promise.ready():
                remaining.append((entry_peer, target, promise))
        self._catchup_promises = remaining

    # ------------------------------------------------------------------
    # Repair: background catch-up of lagging followers
    # ------------------------------------------------------------------
    def _ensure_repair(self, peer: str, term: int) -> None:
        if peer in self._repairing or not self._leading(term):
            return
        self._repairing.add(peer)
        self.repairs_started += 1
        self.rt.spawn(
            self._repair_loop(peer, term),
            name=f"{self.id}:repair:{peer}",
            dedication=peer,
        )

    def _repair_loop(self, peer: str, term: int) -> Generator:
        cfg = self.config
        try:
            while self._leading(term) and self._match_index[peer] < self.log.last_index():
                next_index = self._next_index[peer]
                if next_index <= self.log.base_index:
                    # The peer is behind the snapshot base: entry replay is
                    # impossible (those entries are compacted) — ship the
                    # snapshot instead, still only blocking this stream.
                    ok = yield from self._send_snapshot(peer, term)
                    if not ok:
                        yield self.rt.sleep(cfg.heartbeat_interval_ms)
                    continue
                last = min(self.log.last_index(), next_index + cfg.repair_batch_entries - 1)
                if next_index > last:
                    break
                entries, disk_bytes, _misses = self.log.slice_cached(next_index, last)
                if disk_bytes > 0:
                    # Evicted from the entry cache: read from disk *in this
                    # coroutine only* — nothing else blocks (vs TiDB).
                    read = self.node.wal.read(disk_bytes)
                    yield read.wait()
                    if not self._leading(term):
                        return
                rpc = self._send_append(peer, next_index - 1, entries, term)
                result = yield rpc.wait(timeout_ms=cfg.append_rpc_timeout_ms)
                if result.timed_out or not rpc.ok:
                    yield self.rt.sleep(cfg.heartbeat_interval_ms)
                    continue
                if not rpc.reply.get("success") and self._next_index[peer] >= next_index:
                    # Mismatch hint was applied by the reply handler; if it
                    # did not move us back, step back one to make progress.
                    self._next_index[peer] = max(1, next_index - 1)
        finally:
            self._repairing.discard(peer)
            # Resume the direct stream from wherever repair got the peer.
            self._sent_index[peer] = max(
                self._sent_index[peer], self._match_index[peer]
            )

    # ------------------------------------------------------------------
    # Heartbeats
    # ------------------------------------------------------------------
    def _heartbeat_loop(self, term: int) -> Generator:
        cfg = self.config
        while self._leading(term):
            if cfg.read_mode == "lease" and self.voting_peers():
                # The lease rides the heartbeat cadence: a quorum of probe
                # acks extends it from the probe's *send* time. Learner
                # acks don't count — the lease must rest on voters.
                sent_at = self.rt.now
                lease_call = QuorumCall(
                    self.ep,
                    self.voting_peers(),
                    "read_probe",
                    {"term": term, "leader": self.id},
                    size_bytes=32,
                    quorum=self.majority - 1,
                    classify=lambda ev, _t=term: ev.reply.get("term") == _t,
                    discard_on_quorum=cfg.discard_on_quorum,
                    name=f"{self.id}:lease-probe",
                )
                lease_call.event.subscribe(
                    lambda _ev, _t=sent_at, _term=term: self._extend_lease(_t, _term)
                )
            for peer in self.peers:
                self.ep.notify(
                    peer,
                    "heartbeat",
                    {
                        "term": term,
                        "leader": self.id,
                        "commit": self.commit_index,
                        # Self-reported load: how many client ops await
                        # batching. Followers' detectors read this.
                        "pending": len(self._pending_ops),
                    },
                    size_bytes=32,
                )
            yield self.rt.sleep(cfg.heartbeat_interval_ms)

    # ==================================================================
    # Apply
    # ==================================================================
    def _apply_committed(self) -> Generator:
        if self._applying:
            return
        self._applying = True
        try:
            while self.last_applied < self.commit_index:
                # commit_index may run ahead of the local log (a snapshot
                # install learned a higher commit point than the entries we
                # hold): apply only what is locally present and let the
                # next append/repair resume the rest.
                take = min(
                    self.commit_index - self.last_applied,
                    self.log.last_index() - self.last_applied,
                    128,
                )
                if take <= 0:
                    break
                yield self.rt.compute(
                    take * self.config.apply_cost_ms, name="apply"
                )
                for _ in range(take):
                    # A snapshot install during the compute yield may have
                    # jumped last_applied forward and truncated the log.
                    if (
                        self.last_applied >= self.commit_index
                        or self.last_applied >= self.log.last_index()
                    ):
                        break
                    self.last_applied += 1
                    entry = self.log.entry_at(self.last_applied)
                    if is_conf_change(entry.op):
                        result = self._apply_conf_change(entry.op)
                    else:
                        result = self.kv.apply(entry.op)
                    done = self._completions.pop(self.last_applied, None)
                    if done is not None and not done.ready():
                        done.set({"ok": True, "result": result}, now=self.rt.now)
            self._maybe_compact()
        finally:
            self._applying = False

    def _fail_batch(self, batch: List[_PendingOp]) -> None:
        for pending in batch:
            if not pending.done.ready():
                pending.done.set(
                    {"ok": False, "redirect": self.leader_hint}, now=self.rt.now
                )

    # ==================================================================
    # Membership changes and leadership transfer (mitigation actions)
    # ==================================================================
    def _apply_conf_change(self, op) -> Dict[str, Any]:
        """Apply a committed single-server membership change.

        Every replica applies the same entry at the same log position, so
        the voting configuration stays agreed. The affected node switches
        its own role (FOLLOWER <-> LEARNER) as a side effect.
        """
        _tag, action, member = op
        if member in self.group:
            if action == CONF_DEMOTE:
                self.voting_members.discard(member)
                if member == self.id and self.role in (Role.FOLLOWER, Role.CANDIDATE):
                    self.role = Role.LEARNER
            elif action == CONF_PROMOTE:
                self.voting_members.add(member)
                if member == self.id and self.role == Role.LEARNER:
                    self.role = Role.FOLLOWER
            self.conf_changes_applied += 1
        return {"conf": action, "member": member, "voters": sorted(self.voting_members)}

    def propose_conf_change(self, action: str, member: str) -> Optional[ValueEvent]:
        """Leader-only: replicate a demote/promote membership change.

        Returns the commit completion event, or None when the change is
        not proposable from here (not leader, unknown member, no-op, or
        an attempt to demote the leader itself — transfer leadership
        first).
        """
        if action not in (CONF_DEMOTE, CONF_PROMOTE):
            raise ValueError(f"unknown conf change action {action!r}")
        if self.role != Role.LEADER or member not in self.group:
            return None
        if action == CONF_DEMOTE and (
            member == self.id or member not in self.voting_members
        ):
            return None
        if action == CONF_PROMOTE and member in self.voting_members:
            return None
        done = ValueEvent(name=f"{self.id}:conf:{action}:{member}")
        self._pending_ops.append(_PendingOp((CONF_CHANGE_OP, action, member), done))
        if self._pending_signal is not None and not self._pending_signal.ready():
            self._pending_signal.set(True, now=self.rt.now)
        return done

    def transfer_leadership(self, target: str) -> bool:
        """Leader-only: ask ``target`` to campaign immediately (TimeoutNow).

        The classic Raft transfer: the target skips its randomized
        election timeout and starts a normal election, whose higher term
        steps this leader down. Used by the mitigation controller to move
        leadership off a suspected fail-slow leader without waiting for
        followers to time out.
        """
        if self.role != Role.LEADER or target == self.id:
            return False
        if target not in self.peers or target not in self.voting_members:
            return False
        self.leadership_transfers += 1
        self.ep.notify(
            target, "timeout_now", {"term": self.term, "leader": self.id}, size_bytes=16
        )
        return True

    def _on_timeout_now(self, payload: Dict[str, Any], src: str) -> Generator:
        if (
            payload["term"] >= self.term
            and self.role == Role.FOLLOWER
            and self.is_voter()
        ):
            self._election_now = True
            self._poke_heartbeat()  # wake the main loop without a timeout
        yield self.rt.compute(0.01, name="timeout-now")
        return None

    # ==================================================================
    # RPC handlers
    # ==================================================================
    def _on_append_entries(self, payload: Dict[str, Any], src: str) -> Generator:
        cfg = self.config
        term = payload["term"]
        if term < self.term:
            return {"term": self.term, "success": False, "hint": self.log.last_index()}
        self._observe_term(term, leader=payload["leader"])
        if payload["leader"] != self.suspected_leader:
            self._poke_heartbeat()

        # Serialize appends in arrival order: concurrent handlers chain on
        # the append gate so the log and WAL see them sequentially.
        previous_gate = self._append_gate
        my_gate = Event(name=f"{self.id}:append-gate")
        self._append_gate = my_gate
        try:
            if not previous_gate.ready():
                yield previous_gate.wait()
            entries: List[LogEntry] = payload["entries"]
            yield self.rt.compute(
                cfg.append_base_cost_ms + cfg.append_entry_cost_ms * len(entries),
                name="append",
            )
            if not self.log.matches(payload["prev_index"], payload["prev_term"]):
                if self.log.last_index() < payload["prev_index"]:
                    hint = self.log.last_index()
                else:
                    hint = max(0, payload["prev_index"] - 1)
                return {"term": self.term, "success": False, "hint": hint}
            changed = self.log.append_or_overwrite(entries)
            if changed > 0:
                new_entries = entries[-changed:]
                sync = self._stage_durable(new_entries)
                yield sync.wait()
            match = entries[-1].index if entries else payload["prev_index"]
            self._verified_index = max(self._verified_index, match)
            # Raft §5.3: cap at the last entry this RPC verified — the log
            # may extend further with a stale tail we must not commit.
            yield from self._advance_commit(min(payload["commit"], match))
            return {"term": self.term, "success": True, "match": match}
        finally:
            my_gate.trigger(self.rt.now)

    def _on_heartbeat(self, payload: Dict[str, Any], src: str) -> Generator:
        term = payload["term"]
        if term < self.term:
            return None
        self._observe_term(term, leader=payload["leader"])
        self.last_heartbeat_at = self.rt.now
        self.last_leader_pending = payload.get("pending", 0)
        if self.last_leader_pending > self.peak_leader_pending:
            self.peak_leader_pending = self.last_leader_pending
        if payload["leader"] != self.suspected_leader:
            self._poke_heartbeat()
        safe_commit = max(self.commit_index, self._verified_index)
        yield from self._advance_commit(min(payload["commit"], safe_commit))
        if payload["commit"] > safe_commit and self.role in (
            Role.FOLLOWER,
            Role.LEARNER,
        ):
            # The leader has committed past what we verifiably hold: ask it
            # to repair us. Without this, a follower that missed entries
            # while partitioned or rebooting never catches up in a quiet
            # cluster (nothing nacks if no new appends flow).
            self.ep.notify(
                payload["leader"],
                "lag_report",
                {"term": self.term, "last_index": safe_commit},
                size_bytes=24,
            )
        return None

    def _on_lag_report(self, payload: Dict[str, Any], src: str) -> Generator:
        self._observe_term(payload["term"], leader=None)
        if self.role == Role.LEADER and payload["term"] == self.term:
            last = payload["last_index"]
            self._next_index[src] = max(1, min(self._next_index.get(src, last + 1), last + 1))
            self._mark_stream_broken(src, self.term)
        yield self.rt.compute(0.01, name="lag-report")
        return None

    def _advance_commit(self, leader_commit: int) -> Generator:
        target = min(leader_commit, self.log.last_index())
        if target > self.commit_index:
            self.commit_index = target
        yield from self._apply_committed()

    def _on_request_vote(self, payload: Dict[str, Any], src: str) -> Generator:
        term = payload["term"]
        candidate = payload["candidate"]
        if term < self.term:
            return {"term": self.term, "granted": False}
        if candidate not in self.voting_members:
            # A demoted (or not-yet-promoted) member cannot win here, and
            # adopting its term would depose a healthy leader — reject
            # without observing the term, like pre-vote does for stale
            # rejoining nodes.
            return {"term": self.term, "granted": False}
        self._observe_term(term, leader=None)
        if not self.is_voter():
            # Learners observe terms but never grant votes: their ballot
            # must not count toward any quorum while demoted.
            yield self.rt.compute(0.02, name="vote")
            return {"term": self.term, "granted": False}
        granted = False
        if self.voted_for in (None, candidate) and self.log.up_to_date(
            payload["last_term"], payload["last_index"]
        ):
            self.voted_for = candidate
            self._persist_term()
            granted = True
            self._poke_heartbeat()  # voting resets our own election timer
        yield self.rt.compute(0.02, name="vote")
        return {"term": self.term, "granted": granted}

    def _on_client_request(self, payload: Dict[str, Any], src: str) -> Generator:
        cfg = self.config
        if self.role != Role.LEADER:
            return {"ok": False, "redirect": self.leader_hint}
        op = payload["op"]
        if op[0] == "get" and cfg.read_mode != "log":
            result = yield from self._serve_read(op)
            return result
        yield self.rt.compute(cfg.client_op_cost_ms, name="client-op")
        if self.role != Role.LEADER:
            return {"ok": False, "redirect": self.leader_hint}
        done = ValueEvent(name=f"{self.id}:commit-wait", source=self.id)
        self._pending_ops.append(_PendingOp(payload["op"], done))
        if self._pending_signal is not None and not self._pending_signal.ready():
            self._pending_signal.set(True, now=self.rt.now)
        result = yield done.wait(timeout_ms=cfg.client_commit_timeout_ms)
        if result.timed_out:
            return {"ok": False, "redirect": None}
        return done.value

    # ==================================================================
    # Linearizable reads (read_index / lease modes)
    # ==================================================================
    def _serve_read(self, op) -> Generator:
        """Serve a get from the applied state machine.

        read_index: confirm leadership with a quorum probe, then wait for
        the state machine to reach the read point. lease: skip the probe
        while the heartbeat lease is live (the simulation has one global
        clock, so the lease's bounded-clock-skew assumption holds
        exactly).
        """
        cfg = self.config
        # A fresh leader's commit_index may trail entries an earlier leader
        # already acknowledged (the inherited tail). Serving a read below
        # them would be stale, so wait until an entry of our own term has
        # committed — the no-op queued at election drives this forward.
        while self.role == Role.LEADER and not (
            self.commit_index >= self.log.last_index()
            or self.log.term_at(self.commit_index) == self.term
        ):
            yield self.rt.sleep(0.5)
        if self.role != Role.LEADER:
            return {"ok": False, "redirect": self.leader_hint}
        # depfast: allow(DF011) — the pre-confirmation snapshot IS the
        # ReadIndex protocol (Raft §6.4): the read must wait for the index
        # the leader held *before* proving leadership, not a fresher one.
        read_index = self.commit_index
        if not (cfg.read_mode == "lease" and self.rt.now < self._lease_until):
            confirmed = yield from self._confirm_leadership()
            if not confirmed:
                return {"ok": False, "redirect": self.leader_hint}
        while self.last_applied < read_index and self.role == Role.LEADER:
            yield self.rt.sleep(0.5)
        if self.role != Role.LEADER:
            return {"ok": False, "redirect": self.leader_hint}
        yield self.rt.compute(cfg.apply_cost_ms, name="read")
        self.reads_served += 1
        return {"ok": True, "result": self.kv.get(op[1])}

    def _confirm_leadership(self) -> Generator:
        """One read_index round: a quorum of voters still follows this leader."""
        if not self.voting_peers():
            return True
        # depfast: allow(DF011) — ``term`` is deliberately the pre-probe
        # snapshot: _leading(term) compares it against the *current*
        # self.term, which is exactly the revalidation the rule asks for.
        term = self.term
        self.read_probes += 1
        call = QuorumCall(
            self.ep,
            self.voting_peers(),
            "read_probe",
            {"term": term, "leader": self.id},
            size_bytes=32,
            quorum=self.majority - 1,
            classify=lambda ev: ev.reply.get("term") == term,
            discard_on_quorum=self.config.discard_on_quorum,
            name=f"{self.id}:read-probe",
        )
        yield call.wait(timeout_ms=self.config.vote_rpc_timeout_ms)
        # depfast: allow(DF011) — ``term`` is deliberately the pre-probe
        # snapshot: _leading(term) compares it against the *current*
        # self.term, which is exactly the revalidation the rule asks for.
        return call.event.ready() and self._leading(term)

    def _on_read_probe(self, payload: Dict[str, Any], src: str) -> Generator:
        self._observe_term(payload["term"], leader=payload["leader"])
        if payload["leader"] != self.suspected_leader:
            self._poke_heartbeat()
        yield self.rt.compute(0.01, name="read-probe")
        return {"term": self.term}

    def _extend_lease(self, probe_sent_at: float, term: int) -> None:
        if self._leading(term):
            self._lease_until = max(
                self._lease_until, probe_sent_at + self.config.lease_duration_ms
            )

    # ==================================================================
    # Log compaction and snapshot install
    # ==================================================================
    def _maybe_compact(self) -> None:
        cfg = self.config
        if cfg.snapshot_threshold_entries is None:
            return
        applied_above_base = self.last_applied - self.log.base_index
        if applied_above_base < cfg.snapshot_threshold_entries:
            return
        new_base = self.last_applied - cfg.compaction_keep_entries
        if new_base <= self.log.base_index:
            return
        # Persist the snapshot in the background (a disk write sized by
        # the state machine); the in-memory log is compacted immediately.
        self.node.runtime.io.write(self.kv.estimated_bytes())
        self.log.truncate_prefix(new_base)
        self.durable.save_snapshot(
            self.log.base_index, self.log.base_term, self.kv.snapshot_state()
        )
        self.snapshots_taken += 1

    def _send_snapshot(self, peer: str, term: int) -> Generator:
        """Repair a follower that fell behind the snapshot base."""
        state = self.kv.snapshot_state()
        size = self.kv.estimated_bytes()
        payload = {
            "term": term,
            "leader": self.id,
            "last_index": self.log.base_index,
            "last_term": self.log.base_term,
            "state": state,
            "size_bytes": size,
        }
        rpc = self.ep.call(peer, "install_snapshot", payload, size_bytes=size)
        # Big transfers need a proportionate timeout.
        timeout = self.config.append_rpc_timeout_ms + size / 100.0
        result = yield rpc.wait(timeout_ms=timeout)
        if result.timed_out or not rpc.ok or not isinstance(rpc.reply, dict):
            return False
        reply = rpc.reply
        self._observe_term(reply.get("term", 0), leader=None)
        if not self._leading(term) or not reply.get("success"):
            return False
        match = reply.get("match", self.log.base_index)
        if match > self._match_index[peer]:
            self._match_index[peer] = match
            self._next_index[peer] = match + 1
            self._fire_catchup_promises(peer)
        return True

    def _on_install_snapshot(self, payload: Dict[str, Any], src: str) -> Generator:
        term = payload["term"]
        if term < self.term:
            return {"term": self.term, "success": False}
        self._observe_term(term, leader=payload["leader"])
        if payload["leader"] != self.suspected_leader:
            self._poke_heartbeat()
        last_index = payload["last_index"]
        if last_index <= self.log.base_index:
            # Stale snapshot; we already cover it.
            return {"term": self.term, "success": True, "match": self.log.last_index()}
        # Persist the snapshot before acknowledging it.
        sync = self.node.runtime.io.write(payload["size_bytes"])
        yield sync.wait()
        self.kv.restore_state(payload["state"])
        self.log.reset_to_snapshot(last_index, payload["last_term"])
        self.durable.clear_log()
        self.durable.save_snapshot(
            last_index, payload["last_term"], self.kv.snapshot_state()
        )
        self.commit_index = max(self.commit_index, last_index)
        self.last_applied = last_index
        self._verified_index = max(self._verified_index, last_index)
        self.snapshots_installed += 1
        return {"term": self.term, "success": True, "match": last_index}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RaftNode {self.id} {self.role.value} term={self.term} "
            f"log={self.log.last_index()} commit={self.commit_index}>"
        )
