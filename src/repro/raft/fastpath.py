"""Fast-path/slow-path consensus rounds via nested events (§3.2).

The paper's second code example: "minority-plus-one-reject" and
fast-quorum conditions are awkward to express with callbacks but direct
with nested compound events::

    OrEvent fastpath(fast_ok, fast_reject);
    fastpath.Wait(1000);
    if (fast_ok.Ready()) { ... }
    else if (fast_reject.Ready() || fastpath.Timeout()) { ...slow path... }

:class:`FastPathCoordinator` runs one decree of a Fast-Paxos-style round:
try the fast quorum (⌈3n/4⌉ acceptors accepting unanimously), and on
rejection or timeout fall back to a classic majority round. Acceptor
conflicts (another proposer's value already accepted) are what push the
round onto the slow path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional

from repro.cluster.node import Node
from repro.events.compound import OrEvent, QuorumEvent
from repro.net.rpc import QuorumCall


def fast_quorum_size(n: int) -> int:
    """⌈3n/4⌉ — the classic fast-quorum size."""
    return math.ceil(3 * n / 4)


def majority_size(n: int) -> int:
    return n // 2 + 1


@dataclass
class DecreeOutcome:
    path: str            # "fast" | "slow" | "retry" | "disconnect"
    value: Optional[Any]
    fast_ok: int
    fast_reject: int
    decided_at_ms: float


class FastPathAcceptor:
    """One acceptor: accepts a value unless it conflicts with one it holds."""

    def __init__(self, node: Node, accept_cost_ms: float = 0.05):
        self.node = node
        self.accept_cost_ms = accept_cost_ms
        self.accepted: Dict[int, Any] = {}  # decree -> value
        node.endpoint.register("fast_accept", self._on_accept)
        node.endpoint.register("slow_accept", self._on_accept)

    def _on_accept(self, payload: Dict[str, Any], src: str) -> Generator:
        yield self.node.runtime.compute(self.accept_cost_ms, name="accept")
        decree = payload["decree"]
        value = payload["value"]
        held = self.accepted.get(decree)
        if held is None or held == value or payload.get("force"):
            self.accepted[decree] = value
            return {"ok": True, "held": value}
        return {"ok": False, "held": held}

    def preseed(self, decree: int, value: Any) -> None:
        """Plant a conflicting acceptance (simulates a rival proposer)."""
        self.accepted[decree] = value


class FastPathCoordinator:
    """Drives one decree through the fast path, falling back to slow."""

    def __init__(
        self,
        node: Node,
        acceptor_ids: List[str],
        timeout_ms: float = 1000.0,
    ):
        if not acceptor_ids:
            raise ValueError("need at least one acceptor")
        self.node = node
        self.acceptor_ids = list(acceptor_ids)
        self.timeout_ms = timeout_ms

    def propose(self, decree: int, value: Any) -> Generator:
        """Generator: run the round; returns a :class:`DecreeOutcome`.

        The structure is a direct transcription of the paper's snippet.
        """
        endpoint = self.node.endpoint
        n = len(self.acceptor_ids)
        fast_q = fast_quorum_size(n)
        # "minority-plus-one-reject": once this many acceptors reject, the
        # fast quorum is unreachable.
        fast_reject_q = n - fast_q + 1

        payload = {"decree": decree, "value": value}
        calls = [
            endpoint.call(target, "fast_accept", payload, size_bytes=64)
            for target in self.acceptor_ids
        ]
        fast_ok = QuorumEvent(
            fast_q, n_total=n, classify=lambda ev: ev.ok and ev.reply["ok"],
            name="fast_ok",
        )
        fast_reject = QuorumEvent(
            fast_reject_q,
            n_total=n,
            classify=lambda ev: ev.ok and not ev.reply["ok"],
            name="fast_reject",
        )
        for rpc in calls:
            fast_ok.add(rpc)
            fast_reject.add(rpc)
        fastpath = OrEvent(fast_ok, fast_reject, name="fastpath")
        yield fastpath.wait(timeout_ms=self.timeout_ms)

        if fast_ok.ready():
            return DecreeOutcome(
                "fast", value, fast_ok.n_ok, fast_reject.n_ok, self.node.runtime.now
            )
        if fast_reject.ready() or fastpath.timed_out:
            outcome = yield from self._slow_round(decree, value)
            outcome.fast_ok = fast_ok.n_ok
            outcome.fast_reject = fast_reject.n_ok
            return outcome
        return DecreeOutcome(  # pragma: no cover - defensive
            "disconnect", None, fast_ok.n_ok, fast_reject.n_ok, self.node.runtime.now
        )

    def _slow_round(self, decree: int, value: Any) -> Generator:
        endpoint = self.node.endpoint
        n = len(self.acceptor_ids)
        slow_q = majority_size(n)
        payload = {"decree": decree, "value": value, "force": True}
        call = QuorumCall(
            endpoint,
            self.acceptor_ids,
            "slow_accept",
            payload,
            size_bytes=64,
            quorum=slow_q,
            classify=lambda ev: bool(ev.reply["ok"]),
            name="slow_ok",
        )
        slow_reject = QuorumEvent(
            n - slow_q + 1,
            n_total=n,
            classify=lambda ev: ev.ok and not ev.reply["ok"],
            name="slow_reject",
        )
        for rpc in call.calls:
            slow_reject.add(rpc)
        slowpath = OrEvent(call.event, slow_reject, name="slowpath")
        yield slowpath.wait(timeout_ms=self.timeout_ms)
        now = self.node.runtime.now
        if call.event.ready():
            return DecreeOutcome("slow", value, 0, 0, now)
        if slow_reject.ready():
            return DecreeOutcome("retry", None, 0, 0, now)
        return DecreeOutcome("disconnect", None, 0, 0, now)
