"""Simulated cluster deployment: node specs, nodes, clusters.

A :class:`Cluster` is one experiment's world: a kernel, a network, a
shared tracer and a set of :class:`Node` objects, each wiring together the
resources a ``Standard_D4s_v3``-class VM provides (the paper's testbed
instance type) with a DepFast runtime and an RPC endpoint.
"""

from repro.cluster.node import Node, NodeSpec
from repro.cluster.cluster import Cluster

__all__ = ["Cluster", "Node", "NodeSpec"]
