"""Cluster assembly: kernel + network + tracer + nodes + clients."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.node import Node, NodeSpec
from repro.net.link import Link
from repro.net.network import Network
from repro.sim.kernel import Kernel
from repro.sim.rng import RngRegistry
from repro.trace.tracepoints import Tracer

# Clients are lightweight processes: tiny footprint, no disk to speak of,
# effectively never the bottleneck — the paper's YCSB driver machines.
CLIENT_SPEC = NodeSpec(
    cpu_rate=16.0,
    memory_bytes=4 * 1024**3,
    base_memory_fraction=0.0,
    disk_bandwidth_mbps=100.0,
    nic_delay_ms=0.05,
    send_buffer_limit=None,
    oom_policy="degrade",
    rpc_parse_cost_ms=0.001,
)


class Cluster:
    """One experiment's world: all simulated machines plus shared services."""

    def __init__(self, seed: int = 0, default_link: Optional[Link] = None):
        self.kernel = Kernel()
        self.rng = RngRegistry(seed=seed)
        self.tracer = Tracer(self.kernel)
        if default_link is None:
            # Intra-region cloud network with mild jitter, so latency
            # distributions have a realistic (non-degenerate) tail.
            default_link = Link(
                latency_ms=0.25,
                bandwidth_mbps=125.0,
                jitter_ms=0.15,
                rng=self.rng.stream("link-jitter"),
            )
        self.network = Network(self.kernel, default_link=default_link)
        # Seeded stream for probabilistic per-link message loss, so chaos
        # runs are reproducible bit-for-bit.
        self.network.use_loss_rng(self.rng.stream("net-loss"))
        self.nodes: Dict[str, Node] = {}
        self.clients: Dict[str, Node] = {}

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------
    def add_node(self, node_id: str, spec: Optional[NodeSpec] = None) -> Node:
        if node_id in self.nodes or node_id in self.clients:
            raise ValueError(f"duplicate node id {node_id!r}")
        node = Node(node_id, self.kernel, self.network, spec=spec, tracer=self.tracer)
        self.nodes[node_id] = node
        return node

    def add_client(self, client_id: str) -> Node:
        if client_id in self.nodes or client_id in self.clients:
            raise ValueError(f"duplicate node id {client_id!r}")
        client = Node(
            client_id, self.kernel, self.network, spec=CLIENT_SPEC, tracer=self.tracer
        )
        self.clients[client_id] = client
        return client

    def node(self, node_id: str) -> Node:
        found = self.nodes.get(node_id) or self.clients.get(node_id)
        if found is None:
            raise KeyError(f"unknown node {node_id!r}")
        return found

    def server_ids(self) -> List[str]:
        return sorted(self.nodes)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until_ms: float) -> None:
        self.kernel.run(until_ms)

    def crashed_nodes(self) -> List[str]:
        return sorted(
            node_id for node_id, node in self.nodes.items() if node.crashed
        )
