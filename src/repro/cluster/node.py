"""One simulated server: resources + runtime + RPC endpoint.

The default :class:`NodeSpec` approximates the paper's Azure
``Standard_D4s_v3`` instances (4 vCPUs, 16 GB RAM, premium-SSD class
disk, intra-region network). The spec also fixes two policies that the
baselines and DepFastRaft differ on:

* ``send_buffer_limit`` — None reproduces RethinkDB's unbounded outgoing
  buffers; a byte bound is what a fail-slow-aware framework uses;
* ``oom_policy`` — "crash" kills the process when it exceeds its memory
  limit (how the RethinkDB leader died in §2.2), "degrade" only thrashes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.net.network import Network
from repro.net.rpc import RpcEndpoint
from repro.runtime.runtime import Runtime
from repro.sim.kernel import Kernel
from repro.sim.metrics import MetricsRegistry
from repro.sim.resources import (
    CpuResource,
    DiskResource,
    MemoryResource,
    NicResource,
)
from repro.storage.wal import WriteAheadLog


@dataclass
class NodeSpec:
    """Hardware + policy description of one node."""

    cpu_rate: float = 4.0                 # CPU-ms of work per virtual ms (4 vCPUs)
    memory_bytes: int = 16 * 1024**3      # 16 GB
    base_memory_fraction: float = 0.5     # resident footprint of the DB process
    disk_bandwidth_mbps: float = 200.0    # premium-SSD class
    disk_latency_ms: float = 0.1
    nic_delay_ms: float = 0.05
    send_buffer_limit: Optional[int] = None   # None = unbounded buffers
    oom_policy: str = "crash"             # "crash" | "degrade"
    rpc_parse_cost_ms: float = 0.01
    rpc_parse_cost_per_kb_ms: float = 0.02    # deserialization per KB
    memory_swap_threshold: float = 0.85       # pressure where thrash begins
    memory_max_swap_penalty: float = 8.0      # CPU multiplier at 100% pressure

    def __post_init__(self) -> None:
        if self.oom_policy not in ("crash", "degrade"):
            raise ValueError(f"unknown oom policy {self.oom_policy!r}")
        if not 0 <= self.base_memory_fraction < 1:
            raise ValueError("base memory fraction must be in [0, 1)")


def _default_wal_factory(node: "Node") -> WriteAheadLog:
    return WriteAheadLog(
        node.runtime.io,
        name=f"{node.node_id}.wal",
        node=node.node_id,
        tracer=node._tracer,
    )


class Node:
    """A deployed server process with its VM's resources."""

    def __init__(
        self,
        node_id: str,
        kernel: Kernel,
        network: Network,
        spec: Optional[NodeSpec] = None,
        tracer=None,
    ):
        self.node_id = node_id
        self.kernel = kernel
        self.network = network
        self.spec = spec or NodeSpec()
        self.metrics = MetricsRegistry(node_id)
        self._tracer = tracer

        self.cpu = CpuResource(kernel, base_rate=self.spec.cpu_rate, name=f"{node_id}.cpu")
        self.disk = DiskResource(
            kernel,
            bandwidth_mbps=self.spec.disk_bandwidth_mbps,
            op_latency_ms=self.spec.disk_latency_ms,
            name=f"{node_id}.disk",
        )
        self.memory = MemoryResource(
            capacity_bytes=self.spec.memory_bytes,
            swap_threshold=self.spec.memory_swap_threshold,
            max_swap_penalty=self.spec.memory_max_swap_penalty,
        )
        self.nic = NicResource(base_delay_ms=self.spec.nic_delay_ms)

        self.runtime = Runtime(kernel, node=node_id, cpu=self.cpu, disk=self.disk, tracer=tracer)
        self.endpoint = RpcEndpoint(
            node_id,
            network,
            self.runtime,
            parse_cost_ms=self.spec.rpc_parse_cost_ms,
            parse_cost_per_kb_ms=self.spec.rpc_parse_cost_per_kb_ms,
        )
        # The WAL is rebuilt through this factory on every (re)boot so a
        # node deployed with a non-default WAL (e.g. the write-behind
        # circuit breaker) keeps it across crash–restart cycles.
        self._wal_factory: Callable[["Node"], WriteAheadLog] = _default_wal_factory
        self.wal = self._wal_factory(self)

        network.attach(
            node_id,
            self.endpoint.inbox,
            nic=self.nic,
            memory=self.memory,
            buffer_limit=self.spec.send_buffer_limit,
        )

        self.crashed = False
        self.crashed_at: Optional[float] = None
        self.crash_reason: Optional[str] = None
        self.restarts = 0

        # Resident footprint of the process before any dynamic buffers.
        base = int(self.spec.memory_bytes * self.spec.base_memory_fraction)
        if base:
            self.memory.allocate(base, owner="base-footprint")
        self.memory.on_oom = self._on_oom
        self.memory.on_pressure_change = self._on_pressure_change
        self._applied_penalty = 1.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin dispatching RPCs (call after handlers are registered)."""
        self.endpoint.start()

    def crash(self, reason: str = "killed") -> None:
        """Fail-stop this node: coroutines die, traffic drops."""
        if self.crashed:
            return
        self.crashed = True
        self.crashed_at = self.kernel.now
        self.crash_reason = reason
        self.metrics.counter("crashes").inc()
        self.runtime.crash()
        # The WAL handle dies with the process: any write-behind queue is
        # lost and its drain timers must stop touching the disk.
        self.wal.retire()
        self.network.crash(self.node_id)

    def restart(self) -> None:
        """Boot a fresh process on the same (possibly still-faulty) machine.

        Hardware state — CPU/disk/NIC resources and any faults injected on
        them — persists across the restart; process state does not: the
        old runtime's coroutines are gone, memory allocations are
        forgotten (base footprint re-allocated), the RPC endpoint and WAL
        handle are recreated, and the network hands the node a fresh inbox
        with all its connections reset. Durable on-disk state is the
        owner's concern (see :class:`repro.storage.durable.DurableRaftState`);
        after ``restart()`` the owner must re-register handlers and call
        :meth:`start`.
        """
        if not self.crashed:
            raise RuntimeError(f"node {self.node_id} is not crashed")
        self.crashed = False
        self.crash_reason = None
        self.restarts += 1
        self.metrics.counter("restarts").inc()

        self.memory.reset_process()
        base = int(self.spec.memory_bytes * self.spec.base_memory_fraction)
        if base:
            self.memory.allocate(base, owner="base-footprint")
        self._applied_penalty = 1.0
        self.cpu.set_penalty(1.0)

        self.runtime = Runtime(
            self.kernel, node=self.node_id, cpu=self.cpu, disk=self.disk,
            tracer=self._tracer,
        )
        self.endpoint = RpcEndpoint(
            self.node_id,
            self.network,
            self.runtime,
            parse_cost_ms=self.spec.rpc_parse_cost_ms,
            parse_cost_per_kb_ms=self.spec.rpc_parse_cost_per_kb_ms,
        )
        self.wal = self._wal_factory(self)
        self.network.restart(self.node_id, self.endpoint.inbox)

    def use_wal_factory(
        self, factory: Callable[["Node"], WriteAheadLog]
    ) -> WriteAheadLog:
        """Replace the node's WAL (now and on every future restart).

        Must be called before any bytes are buffered — the current handle
        is retired and swapped out, not migrated.
        """
        if self.wal.buffered_bytes:
            raise RuntimeError(
                f"node {self.node_id} has {self.wal.buffered_bytes} buffered "
                "WAL bytes; swap the WAL before staging writes"
            )
        self._wal_factory = factory
        self.wal.retire()
        self.wal = factory(self)
        return self.wal

    # ------------------------------------------------------------------
    # Memory wiring
    # ------------------------------------------------------------------
    def _on_oom(self) -> None:
        if self.spec.oom_policy == "crash":
            # The allocation that crossed the limit may be running inside a
            # coroutine of this very node; defer the kill to the next
            # kernel callback so the current frame can unwind.
            reason = f"OOM: {self.memory.used} > {self.memory.limit_bytes} bytes"
            self.kernel.call_soon(self.crash, reason)
        # "degrade": swap penalty (below) is the only consequence.

    def _on_pressure_change(self) -> None:
        penalty = self.memory.swap_penalty()
        # Avoid re-timing the CPU queue on every allocation.
        if abs(penalty - self._applied_penalty) > 0.05:
            self._applied_penalty = penalty
            self.cpu.set_penalty(penalty)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "crashed" if self.crashed else "up"
        return f"<Node {self.node_id} {state}>"
