"""Command-line interface: regenerate any paper artifact from the shell.

Usage::

    python -m repro table1
    python -m repro figure1 [--smoke]
    python -m repro figure2
    python -m repro figure3 [--smoke]
    python -m repro experiment --system depfast --fault cpu_slow
    python -m repro chaos [--seed N] [--seeds 20] [--group-sizes 3 5]
    python -m repro mitigate [--smoke] [--seed N] [--faults cpu_slow ...]
    python -m repro hedge [--smoke] [--seed N] [--faults cpu_slow ...]
    python -m repro breaker [--smoke] [--seed N] [--faults disk_contention ...]
    python -m repro lint [paths] [--format text|json] [--strict]
    python -m repro profile <raft|hedged|paxos|chain|chaos|microbench> [--seed N]

``--smoke`` runs a shortened profile (shapes, not magnitudes); the default
is the full paper profile used by EXPERIMENTS.md. ``lint`` runs the static
fail-slow tolerance analysis (depfast-lint) over coroutine code.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.experiments import ExperimentParams, SYSTEMS, run_rsm_experiment
from repro.faults.catalog import fault_names


def _params(smoke: bool) -> ExperimentParams:
    params = ExperimentParams()
    return params.scaled_for_smoke() if smoke else params


def _cmd_table1(_args) -> int:
    from repro.bench.table1 import render_table1, run_table1

    print(render_table1(run_table1()))
    return 0


def _cmd_figure1(args) -> int:
    from repro.bench.figure1 import render_figure1, run_figure1

    print(render_figure1(run_figure1(_params(args.smoke))))
    return 0


def _cmd_figure2(_args) -> int:
    from repro.bench.figure2 import render_figure2, run_figure2

    print(render_figure2(run_figure2()))
    return 0


def _cmd_figure3(args) -> int:
    from repro.bench.figure3 import render_figure3, run_figure3

    print(render_figure3(run_figure3(_params(args.smoke))))
    return 0


def _cmd_experiment(args) -> int:
    report = run_rsm_experiment(args.system, args.fault, _params(args.smoke))
    crash = f"  CRASHED: {', '.join(report.crashed_nodes)}" if report.crashed else ""
    print(
        f"{args.system} under {args.fault}: "
        f"{report.throughput_ops_s:.0f} ops/s, "
        f"avg {report.avg_latency_ms:.2f} ms, "
        f"p99 {report.p99_latency_ms:.2f} ms, "
        f"{report.errors} errors{crash}"
    )
    return 0


def _cmd_chaos(args) -> int:
    from repro.bench.chaos import (
        ChaosParams,
        render_chaos_campaign,
        render_chaos_run,
        run_chaos_campaign,
        run_chaos_once,
    )

    if any(size < 3 or size % 2 == 0 for size in args.group_sizes):
        print("chaos: group sizes must be odd and >= 3 (Raft majorities)")
        return 2
    params = ChaosParams(events=args.events, majority_guard=not args.no_guard)
    if args.seed is not None:
        results = []
        for group_size in args.group_sizes:
            run_params = ChaosParams(**{**params.__dict__, "group_size": group_size})
            run = run_chaos_once(args.seed, run_params)
            results.append(run)
            print(render_chaos_run(run, verbose=args.verbose))
        return 0 if all(run.ok for run in results) else 1
    campaign = run_chaos_campaign(
        range(args.seeds), group_sizes=args.group_sizes, params=params
    )
    print(render_chaos_campaign(campaign, verbose=args.verbose))
    return 0 if campaign.ok else 1


def _cmd_mitigate(args) -> int:
    from repro.bench.mitigation import (
        MATRIX_FAULTS,
        MitigationParams,
        render_mitigation_matrix,
        run_mitigation_matrix,
        smoke_params,
    )

    unknown = [fault for fault in args.faults if fault not in MATRIX_FAULTS]
    if unknown:
        print(
            f"mitigate: unknown fault(s) {', '.join(unknown)} "
            f"(choose from {', '.join(MATRIX_FAULTS)})"
        )
        return 2
    params = smoke_params() if args.smoke else MitigationParams()
    result = run_mitigation_matrix(
        faults=args.faults or None,
        seed=args.seed,
        params=params,
        include_flapping=not args.no_flapping,
    )
    print(render_mitigation_matrix(result))
    if result.control.false_positive_demotions:
        return 1
    return 0 if result.ok else 1


def _cmd_hedge(args) -> int:
    from repro.bench.hedging import (
        MATRIX_FAULTS,
        SMOKE_FAULTS,
        HedgingParams,
        render_hedging_matrix,
        run_hedging_matrix,
        smoke_params,
    )

    unknown = [fault for fault in args.faults if fault not in MATRIX_FAULTS]
    if unknown:
        print(
            f"hedge: unknown fault(s) {', '.join(unknown)} "
            f"(choose from {', '.join(MATRIX_FAULTS)})"
        )
        return 2
    if args.smoke:
        params = smoke_params()
        faults = args.faults or SMOKE_FAULTS
    else:
        params = HedgingParams()
        faults = args.faults or None
    result = run_hedging_matrix(faults=faults, seed=args.seed, params=params)
    print(render_hedging_matrix(result))
    return 0 if result.ok else 1


def _cmd_breaker(args) -> int:
    from repro.bench.breaker import (
        MATRIX_FAULTS,
        SMOKE_FAULTS,
        BreakerParams,
        render_breaker_matrix,
        run_breaker_matrix,
        smoke_params,
    )

    unknown = [fault for fault in args.faults if fault not in MATRIX_FAULTS]
    if unknown:
        print(
            f"breaker: unknown fault(s) {', '.join(unknown)} "
            f"(choose from {', '.join(MATRIX_FAULTS)})"
        )
        return 2
    if args.smoke:
        params = smoke_params()
        faults = args.faults or SMOKE_FAULTS
    else:
        params = BreakerParams()
        faults = args.faults or None
    result = run_breaker_matrix(
        faults=faults,
        seed=args.seed,
        params=params,
        include_chaos=not args.no_chaos,
    )
    print(render_breaker_matrix(result))
    return 0 if result.ok else 1


def _cmd_profile(args) -> int:
    from repro.bench import profile as prof

    if args.scenario == "microbench":
        if args.check_baseline:
            return prof.check_baseline(args.check_baseline)
        rate = prof.microbench_events_per_sec()
        print(f"kernel microbench: {rate:,.0f} events/sec")
        return 0
    report = prof.profile_scenario(args.scenario, seed=args.seed)
    print(prof.render_profile(report))
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis.lint import main as lint_main

    return lint_main(
        args.paths,
        fmt=args.format,
        strict=args.strict,
        xfunc=not args.no_xfunc,
        baseline=args.baseline,
        write_baseline=args.write_baseline,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DepFast reproduction: regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table 1: fault catalog with measured effects").set_defaults(
        func=_cmd_table1
    )

    fig1 = sub.add_parser("figure1", help="Figure 1: baseline RSMs under fail-slow followers")
    fig1.add_argument("--smoke", action="store_true", help="short shape-only profile")
    fig1.set_defaults(func=_cmd_figure1)

    sub.add_parser("figure2", help="Figure 2: slowness propagation graph").set_defaults(
        func=_cmd_figure2
    )

    fig3 = sub.add_parser("figure3", help="Figure 3: DepFastRaft fail-slow tolerance")
    fig3.add_argument("--smoke", action="store_true", help="short shape-only profile")
    fig3.set_defaults(func=_cmd_figure3)

    exp = sub.add_parser("experiment", help="one (system, fault) cell")
    exp.add_argument("--system", choices=SYSTEMS, required=True)
    exp.add_argument("--fault", choices=fault_names(include_baseline=True), default="none")
    exp.add_argument("--smoke", action="store_true")
    exp.set_defaults(func=_cmd_experiment)

    chaos = sub.add_parser(
        "chaos", help="chaos campaign: nemesis faults + linearizability check"
    )
    chaos.add_argument(
        "--seed", type=int, default=None, help="run exactly one seed (replay/debug)"
    )
    chaos.add_argument("--seeds", type=int, default=20, help="number of seeds (campaign)")
    chaos.add_argument(
        "--group-sizes",
        type=int,
        nargs="+",
        default=[3, 5],
        help="Raft group sizes to run each seed against",
    )
    chaos.add_argument("--events", type=int, default=10, help="nemesis events per run")
    chaos.add_argument(
        "--no-guard",
        action="store_true",
        help="disable the majority-healthy guardrail (expect unavailability)",
    )
    chaos.add_argument("--verbose", action="store_true", help="print nemesis logs")
    chaos.set_defaults(func=_cmd_chaos)

    mitigate = sub.add_parser(
        "mitigate",
        help="mitigation matrix: detector-on vs -off across Table 1 leader faults",
    )
    mitigate.add_argument("--seed", type=int, default=7)
    mitigate.add_argument("--smoke", action="store_true", help="shortened CI profile")
    mitigate.add_argument(
        "--faults",
        nargs="*",
        default=[],
        help="subset of Table 1 faults to run (default: the full matrix)",
    )
    mitigate.add_argument(
        "--no-flapping", action="store_true", help="skip the flapping-fault row"
    )
    mitigate.set_defaults(func=_cmd_mitigate)

    hedge = sub.add_parser(
        "hedge",
        help="hedging matrix: four fail-slow defenses raced across follower faults",
    )
    hedge.add_argument("--seed", type=int, default=7)
    hedge.add_argument("--smoke", action="store_true", help="shortened CI profile")
    hedge.add_argument(
        "--faults",
        nargs="*",
        default=[],
        help="subset of Table 1 faults to run (default: the full matrix)",
    )
    hedge.set_defaults(func=_cmd_hedge)

    breaker = sub.add_parser(
        "breaker",
        help="breaker matrix: write-behind WAL breaker on vs off across disk faults",
    )
    breaker.add_argument("--seed", type=int, default=7)
    breaker.add_argument("--smoke", action="store_true", help="shortened CI profile")
    breaker.add_argument(
        "--faults",
        nargs="*",
        default=[],
        help="subset of disk faults to run (default: the full matrix)",
    )
    breaker.add_argument(
        "--no-chaos",
        action="store_true",
        help="skip the crash-during-tripped-breaker chaos row",
    )
    breaker.set_defaults(func=_cmd_breaker)

    prof = sub.add_parser(
        "profile", help="virtual-time profiler: events/wall-second per scenario"
    )
    prof.add_argument(
        "scenario",
        choices=("raft", "hedged", "paxos", "chain", "chaos", "microbench"),
        help="seeded scenario to profile, or the bare kernel microbench",
    )
    prof.add_argument("--seed", type=int, default=42)
    prof.add_argument(
        "--check-baseline",
        metavar="BENCH_JSON",
        default=None,
        help="(microbench only) fail if events/sec regresses below "
        "80%% of the committed BENCH_kernel.json baseline",
    )
    prof.set_defaults(func=_cmd_profile)

    lint = sub.add_parser(
        "lint", help="static fail-slow tolerance analysis (depfast-lint)"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to scan (default: src/repro)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format",
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help="warnings also fail the run (exit 1)",
    )
    lint.add_argument(
        "--no-xfunc",
        action="store_true",
        help="disable whole-program (cross-module) analysis: each module "
        "is analyzed on its own, matching the pre-interprocedural linter",
    )
    lint.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="accepted-findings file: only findings NOT in the baseline "
        "gate the exit code (no-new-findings mode)",
    )
    lint.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="write the current findings as a fresh baseline and exit 0",
    )
    lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
