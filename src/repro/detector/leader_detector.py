"""Follower-side detector for fail-slow leaders."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

from repro.raft.node import RaftNode
from repro.raft.types import Role


@dataclass
class DetectorConfig:
    check_interval_ms: float = 500.0
    # Leader is "backed up" when it self-reports at least this many
    # pending client ops across consecutive checks.
    pending_threshold: int = 8
    # ...while the follower's commit index advanced at less than this
    # fraction of its best observed rate.
    commit_rate_fraction: float = 0.3
    # Consecutive suspicious checks before declaring the leader fail-slow.
    strikes_to_suspect: int = 2
    # Re-suspecting the *same* leader identity is rate-limited: after a
    # suspicion (or an explicit clear) this much virtual time must pass
    # before that node can be flagged again. Different leaders are not
    # rate-limited against each other — a flapping fault that chases
    # leadership around the group is caught every hop.
    resuspect_cooldown_ms: float = 5_000.0


@dataclass
class Suspicion:
    """One suspicion verdict: which leader, in which term, and when."""

    leader: str
    term: int
    at: float


class LeaderSlownessDetector:
    """Attach one per follower; call :meth:`start` after the node starts.

    A healthy-but-busy leader reports pending load *and* commits fast, so
    it never accumulates strikes. A fail-slow leader reports a standing
    queue while commits crawl — after ``strikes_to_suspect`` consecutive
    such windows the follower suspects it and stops honoring its
    heartbeats, letting a normal election demote it.

    Suspicion is tracked **per leader identity**: after an election
    replaces a suspected leader, the detector re-arms against the new
    one, so flapping faults that slow successive leaders are flagged
    every time (one-shot detectors go blind after their first catch).
    """

    def __init__(self, raft: RaftNode, config: Optional[DetectorConfig] = None):
        self.raft = raft
        self.config = config or DetectorConfig()
        self.suspected: Optional[str] = None
        self.suspected_at: Optional[float] = None
        # Every suspicion ever raised, in order (regression surface for
        # the flapping-fault scenarios: len() > 1 means re-detection).
        self.suspicions: List[Suspicion] = []
        self.checks = 0
        self._strikes = 0
        self._watched_leader: Optional[str] = None
        self._last_commit_index = raft.commit_index
        self._best_commit_rate = 0.0
        # leader id -> earliest virtual time it may be suspected again.
        self._cooldown_until: Dict[str, float] = {}
        self._started = False

    def start(self) -> None:
        if self._started:
            raise RuntimeError("detector already started")
        self._started = True
        self.raft.rt.spawn(self._monitor_loop(), name=f"{self.raft.id}:detector")

    def _monitor_loop(self) -> Generator:
        raft = self.raft
        self._last_commit_index = raft.commit_index
        while not raft.rt.crashed:
            yield raft.rt.sleep(self.config.check_interval_ms)
            self.observe_window(raft.rt.now)

    def observe_window(self, now: float) -> None:
        """Score one check window; factored out so tests can drive it."""
        cfg = self.config
        raft = self.raft
        self.checks += 1
        # The commit baseline resets EVERY window — including windows we
        # skip because the node is leaderless or leading. Otherwise the
        # first measured delta after a skip spans several windows and
        # permanently inflates the best-rate baseline, deadening the
        # commits_crawling signal for the rest of the run.
        delta = raft.commit_index - self._last_commit_index
        self._last_commit_index = raft.commit_index
        leader = raft.leader_hint
        if raft.role == Role.LEADER or leader is None:
            self._strikes = 0
            self._watched_leader = None
            return
        if leader != self._watched_leader:
            # Leadership changed under us: strikes earned against the old
            # leader say nothing about the new one, and this window's
            # delta mixes both reigns. Re-arm and start measuring fresh.
            self._watched_leader = leader
            self._strikes = 0
            return
        rate = delta / cfg.check_interval_ms
        self._best_commit_rate = max(self._best_commit_rate, rate)
        # Judge the peak backlog reported over this window, not the
        # single latest heartbeat: the queue is bursty at heartbeat
        # granularity and the interesting depth rarely coincides with
        # the window edge.
        leader_backed_up = raft.peak_leader_pending >= cfg.pending_threshold
        raft.peak_leader_pending = raft.last_leader_pending
        commits_crawling = (
            self._best_commit_rate > 0
            and rate < cfg.commit_rate_fraction * self._best_commit_rate
        )
        if leader_backed_up and commits_crawling:
            self._strikes += 1
        else:
            self._strikes = 0
        if self._strikes >= cfg.strikes_to_suspect and self._may_suspect(leader, now):
            self._suspect(leader, now)

    def _may_suspect(self, leader: str, now: float) -> bool:
        if self.raft.suspected_leader == leader:
            return False  # already acting on this one
        return now >= self._cooldown_until.get(leader, float("-inf"))

    def _suspect(self, leader: str, now: float) -> None:
        self.suspected = leader
        self.suspected_at = now
        self.suspicions.append(Suspicion(leader, self.raft.term, now))
        self._cooldown_until[leader] = now + self.config.resuspect_cooldown_ms
        self._strikes = 0
        # Stop honoring this leader's heartbeats: the election timer will
        # fire and a normal Raft election replaces it.
        self.raft.suspected_leader = leader

    def unsuspect(self, node_id: str, now: Optional[float] = None) -> None:
        """Clear an active suspicion (e.g. after recovery probation).

        The node's heartbeats are honored again; the cool-down keeps a
        flapping node from being endlessly suspected and re-admitted
        inside one fault cycle.
        """
        if self.raft.suspected_leader == node_id:
            self.raft.suspected_leader = None
        if now is not None:
            self._cooldown_until[node_id] = max(
                self._cooldown_until.get(node_id, float("-inf")),
                now + self.config.resuspect_cooldown_ms,
            )
        if self.suspected == node_id:
            self.suspected = None


def attach_detectors(
    raft_nodes, config: Optional[DetectorConfig] = None
) -> List[LeaderSlownessDetector]:
    """Create and start one detector per group member."""
    detectors = []
    for raft in raft_nodes.values():
        detector = LeaderSlownessDetector(raft, config=config)
        detector.start()
        detectors.append(detector)
    return detectors
