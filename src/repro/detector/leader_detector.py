"""Follower-side detector for fail-slow leaders."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from repro.raft.node import RaftNode
from repro.raft.types import Role


@dataclass
class DetectorConfig:
    check_interval_ms: float = 500.0
    # Leader is "backed up" when it self-reports at least this many
    # pending client ops across consecutive checks.
    pending_threshold: int = 8
    # ...while the follower's commit index advanced at less than this
    # fraction of its best observed rate.
    commit_rate_fraction: float = 0.3
    # Consecutive suspicious checks before declaring the leader fail-slow.
    strikes_to_suspect: int = 2


class LeaderSlownessDetector:
    """Attach one per follower; call :meth:`start` after the node starts.

    A healthy-but-busy leader reports pending load *and* commits fast, so
    it never accumulates strikes. A fail-slow leader reports a standing
    queue while commits crawl — after ``strikes_to_suspect`` consecutive
    such windows the follower suspects it and stops honoring its
    heartbeats, letting a normal election demote it.
    """

    def __init__(self, raft: RaftNode, config: Optional[DetectorConfig] = None):
        self.raft = raft
        self.config = config or DetectorConfig()
        self.suspected: Optional[str] = None
        self.suspected_at: Optional[float] = None
        self.checks = 0
        self._strikes = 0
        self._last_commit_index = 0
        self._best_commit_rate = 0.0
        self._started = False

    def start(self) -> None:
        if self._started:
            raise RuntimeError("detector already started")
        self._started = True
        self.raft.rt.spawn(self._monitor_loop(), name=f"{self.raft.id}:detector")

    def _monitor_loop(self) -> Generator:
        cfg = self.config
        raft = self.raft
        self._last_commit_index = raft.commit_index
        while not raft.rt.crashed:
            yield raft.rt.sleep(cfg.check_interval_ms)
            self.checks += 1
            if raft.role == Role.LEADER or raft.leader_hint is None:
                self._strikes = 0
                continue
            delta = raft.commit_index - self._last_commit_index
            self._last_commit_index = raft.commit_index
            rate = delta / cfg.check_interval_ms
            self._best_commit_rate = max(self._best_commit_rate, rate)
            leader_backed_up = raft.last_leader_pending >= cfg.pending_threshold
            commits_crawling = (
                self._best_commit_rate > 0
                and rate < cfg.commit_rate_fraction * self._best_commit_rate
            )
            if leader_backed_up and commits_crawling:
                self._strikes += 1
            else:
                self._strikes = 0
            if self._strikes >= cfg.strikes_to_suspect and self.suspected is None:
                self._suspect(raft.leader_hint)

    def _suspect(self, leader: str) -> None:
        self.suspected = leader
        self.suspected_at = self.raft.rt.now
        # Stop honoring this leader's heartbeats: the election timer will
        # fire and a normal Raft election replaces it.
        self.raft.suspected_leader = leader


def attach_detectors(
    raft_nodes, config: Optional[DetectorConfig] = None
) -> List[LeaderSlownessDetector]:
    """Create and start one detector per group member."""
    detectors = []
    for raft in raft_nodes.values():
        detector = LeaderSlownessDetector(raft, config=config)
        detector.start()
        detectors.append(detector)
    return detectors
