"""Fail-slow detection and mitigation — the paper's §5 future work.

"We plan to implement failure detectors based on those trace points.
Lastly, we will develop mitigation procedures specific to the detected
failure modes. For instance, in DepFastRaft, if the leader is detected to
fail-slow, a leader re-election can be triggered to turn the fail-slow
leader into a fail-slow follower, which is well tolerated by DepFastRaft."

:class:`LeaderSlownessDetector` runs on each follower and combines two
trace-point signals: the leader self-reports its pending-queue depth in
heartbeats, and the follower observes its own commit-index progress. A
leader that is backed up but not committing is fail-slow; the detector
then *suspects* it — suspected leaders no longer reset the follower's
election timer, so an ordinary Raft election replaces them, demoting the
fail-slow node to a (well-tolerated) follower.
"""

from repro.detector.leader_detector import (
    DetectorConfig,
    LeaderSlownessDetector,
    Suspicion,
    attach_detectors,
)
from repro.detector.mitigation import (
    MitigationConfig,
    MitigationController,
    deploy_mitigation,
)
from repro.detector.peer_monitor import (
    PeerSlownessReport,
    analyze_peer_slowness,
)
from repro.detector.scoring import (
    PeerHealth,
    ScoringConfig,
    SlownessScorer,
)

__all__ = [
    "DetectorConfig",
    "LeaderSlownessDetector",
    "MitigationConfig",
    "MitigationController",
    "PeerHealth",
    "PeerSlownessReport",
    "ScoringConfig",
    "SlownessScorer",
    "Suspicion",
    "analyze_peer_slowness",
    "attach_detectors",
    "deploy_mitigation",
]
