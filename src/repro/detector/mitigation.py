"""Online auto-mitigation: act on fail-slow scores, don't just report them.

The paper's §5 sketches the loop this module closes: trace points feed
failure detectors, and detected failure modes get mitigation procedures
"specific to the detected failure modes". The controller combines three
actions over one Raft group:

* **Leadership transfer** — when follower-side detectors suspect the
  leader of being fail-slow, ask the healthiest voting follower (by
  link score) to campaign immediately (TimeoutNow), instead of waiting
  for election timeouts to expire naturally.
* **Learner demotion** — a follower the scorer holds in SUSPECT for
  ``demote_after_windows`` consecutive windows is demoted to a
  non-voting learner through the replicated conf-change path: it keeps
  replicating (and keeps producing RTT samples) but can never sit on a
  quorum again. Crashed nodes are demoted the same way so a rebooted
  replica re-enters the quorum only through probation.
* **Recovery probation** — a demoted node must look healthy for
  ``probation_windows`` consecutive windows before the controller
  promotes it back to a voter and clears any standing leader suspicion
  against it. A flapping node that turns slow again mid-probation has
  its counter reset — it stays a learner until it holds a full healthy
  streak.
* **Disk circuit-breaking** — per-resource attribution
  (:mod:`repro.breaker.attribution`) separates disk-slow from link-slow
  suspects: a node whose *own fsync* trace points are inflated gets its
  write-behind WAL breaker tripped (:mod:`repro.breaker.write_behind`)
  instead of being demoted — acks come from memory while the sick disk
  trickle-drains, and the group quorum still guarantees majority
  persistence. The breaker is released (queue fast-drained, real fsyncs
  resume) after the disk holds a healthy streak through probation.

The controller runs as a seeded-deterministic kernel timer (like the
chaos Nemesis): every decision is a pure function of simulation state at
tick time, so mitigation runs replay bit-identically.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.breaker.attribution import AttributionConfig, DiskAttributor
from repro.breaker.write_behind import BreakerState, CircuitBreakerWal
from repro.cluster.cluster import Cluster
from repro.detector.leader_detector import LeaderSlownessDetector
from repro.detector.scoring import PeerHealth, ScoringConfig, SlownessScorer
from repro.raft.service import find_leader
from repro.raft.types import CONF_DEMOTE, CONF_PROMOTE


@dataclass
class MitigationConfig:
    # Scoring window cadence (virtual ms between controller ticks).
    window_ms: float = 500.0
    scoring: ScoringConfig = field(default_factory=ScoringConfig)
    # -- leadership transfer --------------------------------------------
    enable_leadership_transfer: bool = True
    # Consecutive ticks a leader suspicion must stand (with the suspect
    # still leading) before the controller forces a transfer; the
    # detector's own heartbeat-ignore path usually wins the race.
    transfer_grace_windows: int = 2
    # -- learner demotion -----------------------------------------------
    enable_demotion: bool = True
    # Windows a peer must stay in scorer-SUSPECT before demotion.
    demote_after_windows: int = 2
    # Demote crashed voters so a rebooted replica rejoins via probation.
    demote_crashed: bool = True
    # Never demote below this many voters (None = majority of the full
    # group, the smallest configuration that keeps the group's original
    # fault tolerance story meaningful).
    min_voters: Optional[int] = None
    # -- probation -------------------------------------------------------
    # Consecutive healthy windows a demoted node needs to rejoin.
    probation_windows: int = 6
    # -- disk circuit breaker -------------------------------------------
    enable_breaker: bool = True
    attribution: AttributionConfig = field(default_factory=AttributionConfig)
    # Windows a node's disk must stay attributor-SUSPECT before the trip.
    trip_after_windows: int = 1
    # Consecutive disk-healthy windows (probe fsyncs look clean) before a
    # tripped breaker is released back onto the real disk.
    breaker_probation_windows: int = 4


class NodeStatus(enum.Enum):
    VOTER = "voter"
    SUSPECT = "suspect"          # scorer flagged; counting toward demotion
    DEMOTING = "demoting"        # demote proposed, not yet applied
    PROBATION = "probation"      # learner; counting healthy windows
    PROMOTING = "promoting"      # promote proposed, not yet applied


@dataclass
class MitigationAction:
    at: float
    kind: str     # "transfer" | "demote" | "promote" | "breaker_trip" | "breaker_release"
    node: str
    detail: str = ""


class MitigationController:
    """Scores peers every window and enacts mitigations on one Raft group."""

    def __init__(
        self,
        cluster: Cluster,
        raft_nodes: Dict[str, object],
        detectors: Optional[Sequence[LeaderSlownessDetector]] = None,
        config: Optional[MitigationConfig] = None,
    ):
        self.cluster = cluster
        self.raft_nodes = raft_nodes  # mutated in place by restarts
        self.detectors = list(detectors) if detectors else []
        self.config = config or MitigationConfig()
        self.scorer = SlownessScorer(cluster.tracer, self.config.scoring)
        self.group = sorted(raft_nodes)
        if self.config.min_voters is None:
            self.min_voters = len(self.group) // 2 + 1
        else:
            self.min_voters = self.config.min_voters
        self.status: Dict[str, NodeStatus] = {
            node_id: NodeStatus.VOTER for node_id in self.group
        }
        self.actions: List[MitigationAction] = []
        self.transfers = 0
        self.demotions = 0
        self.promotions = 0
        self.breaker_trips = 0
        self.breaker_releases = 0
        self.ticks = 0
        self._suspect_windows: Dict[str, int] = {}
        self._probation_streak: Dict[str, int] = {}
        self._leader_suspect_windows = 0
        self.disks: Optional[DiskAttributor] = (
            DiskAttributor(cluster.tracer, self.config.attribution)
            if self.config.enable_breaker
            else None
        )
        self._disk_suspect_windows: Dict[str, int] = {}
        self._disk_healthy_streak: Dict[str, int] = {}
        self._started = False
        self._stopped = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            raise RuntimeError("controller already started")
        self._started = True
        self.cluster.kernel.schedule(self.config.window_ms, self._tick)

    def stop(self) -> None:
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def first_detection_at(self) -> Optional[float]:
        """Earliest suspicion from any signal (detectors or scorer)."""
        times: List[float] = [
            suspicion.at
            for detector in self.detectors
            for suspicion in detector.suspicions
        ]
        times.extend(
            transition.at
            for transition in self.scorer.transitions
            if transition.state == PeerHealth.SUSPECT
        )
        if self.disks is not None:
            disk_first = self.disks.first_suspected_at()
            if disk_first is not None:
                times.append(disk_first)
        return min(times) if times else None

    def first_action_at(self, kinds: Optional[Tuple[str, ...]] = None) -> Optional[float]:
        times = [
            action.at
            for action in self.actions
            if kinds is None or action.kind in kinds
        ]
        return min(times) if times else None

    # ------------------------------------------------------------------
    # The control loop
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if self._stopped:
            return
        now = self.cluster.kernel.now
        self.ticks += 1
        transitions = self.scorer.roll_window(now)
        if self.disks is not None:
            self.disks.roll_window(now)
            # Breaker decisions need no leader: the sick resource is
            # local to the node, and so is the mitigation.
            self._act_on_disks(now)
        leader = find_leader(self.raft_nodes)
        if leader is not None:
            self._act_on_leader(leader, now)
            self._act_on_followers(leader, now)
            self._advance_probation(leader, now, transitions)
        self.cluster.kernel.schedule(self.config.window_ms, self._tick)

    # -- leadership transfer --------------------------------------------
    def _act_on_leader(self, leader, now: float) -> None:
        if not self.config.enable_leadership_transfer:
            return
        suspected = any(
            detector.raft.suspected_leader == leader.id
            and not detector.raft.rt.crashed
            for detector in self.detectors
        )
        if not suspected:
            self._leader_suspect_windows = 0
            return
        self._leader_suspect_windows += 1
        if self._leader_suspect_windows < self.config.transfer_grace_windows:
            return
        target = self._healthiest_voter(leader)
        if target is not None and leader.transfer_leadership(target):
            self.transfers += 1
            self._leader_suspect_windows = 0
            self.actions.append(
                MitigationAction(now, "transfer", leader.id, f"-> {target}")
            )

    def _healthiest_voter(self, leader) -> Optional[str]:
        """The lowest-scored live voting peer, by the leader's own links."""
        candidates = [
            peer
            for peer in leader.voting_peers()
            if not self.cluster.node(peer).crashed
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda peer: (self.scorer.score(leader.id, peer), peer))

    # -- follower demotion ----------------------------------------------
    def _act_on_followers(self, leader, now: float) -> None:
        if not self.config.enable_demotion:
            return
        for peer in leader.voting_peers():
            status = self.status.get(peer, NodeStatus.VOTER)
            if status in (NodeStatus.PROBATION, NodeStatus.PROMOTING):
                continue  # already out of the quorum
            crashed = self.cluster.node(peer).crashed
            slow = self.scorer.state(leader.id, peer) == PeerHealth.SUSPECT
            if crashed and self.config.demote_crashed:
                self._propose_demote(leader, peer, now, "crashed")
                continue
            if slow and self._disk_attributed(peer):
                # The symptom is link-shaped (slow acks) but the cause is
                # the peer's disk: the breaker owns this one. Demoting
                # would hide the slowness without fixing the ack path.
                self._suspect_windows[peer] = 0
                if status == NodeStatus.SUSPECT:
                    self.status[peer] = NodeStatus.VOTER
                continue
            if not slow:
                self._suspect_windows[peer] = 0
                if status == NodeStatus.SUSPECT:
                    self.status[peer] = NodeStatus.VOTER
                continue
            self.status[peer] = NodeStatus.SUSPECT
            self._suspect_windows[peer] = self._suspect_windows.get(peer, 0) + 1
            if self._suspect_windows[peer] >= self.config.demote_after_windows:
                self._propose_demote(leader, peer, now, "fail-slow")

    def _propose_demote(self, leader, peer, now: float, why: str) -> None:
        if len(leader.voting_members) - 1 < self.min_voters:
            return  # would leave too few voters; tolerate the slowness
        done = leader.propose_conf_change(CONF_DEMOTE, peer)
        if done is None:
            return
        self.demotions += 1
        self.status[peer] = NodeStatus.DEMOTING
        self._suspect_windows[peer] = 0
        self._probation_streak[peer] = 0
        self.actions.append(MitigationAction(now, "demote", peer, why))

    # -- disk circuit breaker -------------------------------------------
    def _breaker_wal(self, node_id: str) -> Optional[CircuitBreakerWal]:
        """The node's live breaker WAL, if it was deployed with one.

        Looked up fresh every tick: restarts rebuild the WAL through the
        node's factory, so cached handles would go stale.
        """
        wal = self.cluster.node(node_id).wal
        return wal if isinstance(wal, CircuitBreakerWal) else None

    def _disk_attributed(self, node_id: str) -> bool:
        return (
            self.disks is not None
            and self.disks.state(node_id) == PeerHealth.SUSPECT
            and self._breaker_wal(node_id) is not None
        )

    def _act_on_disks(self, now: float) -> None:
        for node_id in self.group:
            wal = self._breaker_wal(node_id)
            if wal is None or self.cluster.node(node_id).crashed:
                self._disk_suspect_windows[node_id] = 0
                self._disk_healthy_streak[node_id] = 0
                continue
            suspect = self.disks.state(node_id) == PeerHealth.SUSPECT
            if wal.state == BreakerState.CLOSED:
                if suspect:
                    windows = self._disk_suspect_windows.get(node_id, 0) + 1
                    self._disk_suspect_windows[node_id] = windows
                    if windows >= self.config.trip_after_windows:
                        wal.trip(now)
                        self.breaker_trips += 1
                        self._disk_healthy_streak[node_id] = 0
                        self.actions.append(
                            MitigationAction(
                                now, "breaker_trip", node_id, "disk fail-slow"
                            )
                        )
                else:
                    self._disk_suspect_windows[node_id] = 0
            elif wal.state == BreakerState.OPEN:
                # Probe fsyncs keep health samples flowing while tripped;
                # release only after the disk looks clean long enough.
                healthy = not suspect and self.disks.score(node_id) < 1.0
                if healthy:
                    streak = self._disk_healthy_streak.get(node_id, 0) + 1
                    self._disk_healthy_streak[node_id] = streak
                    if streak >= self.config.breaker_probation_windows:
                        wal.release(now)
                        self.breaker_releases += 1
                        self._disk_suspect_windows[node_id] = 0
                        self.actions.append(
                            MitigationAction(
                                now,
                                "breaker_release",
                                node_id,
                                f"probation passed ({wal.queued_bytes}B queued)",
                            )
                        )
                else:
                    self._disk_healthy_streak[node_id] = 0

    # -- probation and promotion ----------------------------------------
    def _advance_probation(self, leader, now: float, transitions) -> None:
        # A cleared scorer verdict also clears standing leader suspicion:
        # a recovered ex-leader must be electable (and followable) again.
        for transition in transitions:
            if transition.state == PeerHealth.HEALTHY:
                for detector in self.detectors:
                    detector.unsuspect(transition.peer, now)
        for node_id in self.group:
            status = self.status.get(node_id)
            if status == NodeStatus.DEMOTING:
                if node_id not in leader.voting_members:
                    self.status[node_id] = NodeStatus.PROBATION
                    self._probation_streak[node_id] = 0
            elif status == NodeStatus.PROBATION:
                healthy = (
                    not self.cluster.node(node_id).crashed
                    and self.scorer.state(leader.id, node_id) == PeerHealth.HEALTHY
                    and self.scorer.score(leader.id, node_id) < 1.0
                )
                if healthy:
                    self._probation_streak[node_id] = (
                        self._probation_streak.get(node_id, 0) + 1
                    )
                else:
                    self._probation_streak[node_id] = 0
                if self._probation_streak[node_id] >= self.config.probation_windows:
                    done = leader.propose_conf_change(CONF_PROMOTE, node_id)
                    if done is not None:
                        self.promotions += 1
                        self.status[node_id] = NodeStatus.PROMOTING
                        self.actions.append(
                            MitigationAction(now, "promote", node_id, "probation passed")
                        )
            elif status == NodeStatus.PROMOTING:
                if node_id in leader.voting_members:
                    self.status[node_id] = NodeStatus.VOTER
                    for detector in self.detectors:
                        detector.unsuspect(node_id, now)


def deploy_mitigation(
    cluster: Cluster,
    raft_nodes: Dict[str, object],
    detector_config=None,
    config: Optional[MitigationConfig] = None,
) -> Tuple[List[LeaderSlownessDetector], MitigationController]:
    """Attach leader detectors + a started controller to a deployed group."""
    from repro.detector.leader_detector import attach_detectors

    detectors = attach_detectors(raft_nodes, config=detector_config)
    controller = MitigationController(
        cluster, raft_nodes, detectors=detectors, config=config
    )
    controller.start()
    return detectors, controller
