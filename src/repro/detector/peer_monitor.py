"""Trace-point peer-slowness detection (§5, generalized).

"We realize that the events in principle provide trace points needed by
existing monitoring techniques and the traces can be used for performance
analysis. Therefore, we plan to implement failure detectors based on
those trace points."

:func:`analyze_peer_slowness` consumes the tracer's per-RPC latency trace
points — which cover *every* reply, including those of quorum stragglers
nobody waited on, so a tolerated fail-slow follower is still visible —
and flags peers whose median latency stands out against the healthiest
peer's by more than ``factor``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.trace.tracepoints import Tracer


class PeerLatencyProfile:
    """Latency statistics for RPCs from one node to one peer."""

    __slots__ = ("node", "peer", "count", "median_ms", "p95_ms")

    def __init__(self, node: str, peer: str, samples: List[float]):
        self.node = node
        self.peer = peer
        ordered = sorted(samples)
        self.count = len(ordered)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            self.median_ms = ordered[mid]
        else:
            # Interpolate the true median for even counts: taking the
            # upper element biases the estimate high by up to one whole
            # inter-sample gap, which flips factor-based suspicion on
            # nothing but sample-count parity.
            self.median_ms = 0.5 * (ordered[mid - 1] + ordered[mid])
        self.p95_ms = ordered[max(0, math.ceil(0.95 * len(ordered)) - 1)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PeerLatency {self.node}->{self.peer} n={self.count} "
            f"median={self.median_ms:.2f}ms p95={self.p95_ms:.2f}ms>"
        )


class PeerSlownessReport:
    def __init__(self, profiles: List[PeerLatencyProfile], suspects: List[str]):
        self.profiles = profiles
        self.suspects = suspects

    def summary(self) -> str:
        lines = [
            f"peer slowness: {len(self.suspects)} suspect(s): "
            + (", ".join(self.suspects) if self.suspects else "none")
        ]
        for profile in sorted(self.profiles, key=lambda p: -p.median_ms):
            flag = "  <-- FAIL-SLOW" if profile.peer in self.suspects else ""
            lines.append(
                f"  {profile.node} -> {profile.peer}: median "
                f"{profile.median_ms:8.2f} ms, p95 {profile.p95_ms:8.2f} ms, "
                f"n={profile.count}{flag}"
            )
        return "\n".join(lines)


def analyze_peer_slowness(
    tracer: Tracer,
    node: Optional[str] = None,
    factor: float = 4.0,
    min_samples: int = 10,
    since_ms: float = 0.0,
) -> PeerSlownessReport:
    """Flag peers whose RPC latency profile stands out.

    ``node`` restricts to calls issued *by* that node (None = everyone,
    aggregated per (caller, peer) pair). A peer is suspect when its
    median exceeds ``factor`` times the fastest peer's median observed by
    the same caller.
    """
    if factor <= 1.0:
        raise ValueError("factor must exceed 1")
    samples: Dict[Tuple[str, str], List[float]] = {}
    for caller, peer, _method, latency, completed_at in tracer.rpc_latencies:
        if completed_at < since_ms:
            continue
        if node is not None and caller != node:
            continue
        samples.setdefault((caller, peer), []).append(latency)

    profiles = [
        PeerLatencyProfile(caller, peer, values)
        for (caller, peer), values in samples.items()
        if len(values) >= min_samples
    ]
    suspects: List[str] = []
    by_caller: Dict[str, List[PeerLatencyProfile]] = {}
    for profile in profiles:
        by_caller.setdefault(profile.node, []).append(profile)
    for caller, caller_profiles in by_caller.items():
        if len(caller_profiles) < 2:
            continue  # nothing to compare against
        baseline = min(p.median_ms for p in caller_profiles)
        if baseline <= 0:
            continue
        for profile in caller_profiles:
            if profile.median_ms > factor * baseline and profile.peer not in suspects:
                suspects.append(profile.peer)
    return PeerSlownessReport(profiles, sorted(suspects))
