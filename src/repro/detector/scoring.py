"""Streaming per-link fail-slow scoring over live trace points (§5).

The offline detectors (:mod:`repro.detector.peer_monitor`) post-process
the tracer's RPC latency list; this module is the *online* counterpart:
it subscribes to the tracer's streaming hooks and maintains, per
(caller, peer) link,

* an **RTT EWMA** — exponentially-weighted round-trip latency, updated
  on every reply (including quorum stragglers nobody waited on);
* a **quorum-miss EWMA** — how often the peer fails to make the winning
  quorum of a round it was broadcast to (fed by the quorum-arrival rank
  trace points reported when a QuorumEvent fires).

Scores are rolled up into windowed health verdicts with **hysteresis**:
a peer must look slow for ``suspect_windows`` consecutive windows to be
flagged, and healthy again for ``clear_windows`` consecutive windows to
be cleared — so jittery links don't flap the verdict, while flapping
*faults* (slow/healthy/slow...) still re-flag on every slow phase.

Everything here is pure arithmetic over the deterministic trace stream:
two runs of the same seeded scenario produce bit-identical scores (the
golden-trace determinism harness relies on this).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.trace.tracepoints import QuorumArrival, Tracer


@dataclass
class ScoringConfig:
    # EWMA smoothing for RTT samples (higher = more reactive).
    ewma_alpha: float = 0.15
    # EWMA smoothing for the per-round quorum-miss indicator.
    miss_alpha: float = 0.1
    # A peer is suspicious when its RTT EWMA exceeds this multiple of the
    # healthiest peer's EWMA (same caller), ...
    rtt_factor: float = 3.0
    # ...or when it misses the winning quorum in (practically) every
    # round. A 3-node group's two followers each naturally miss ~half of
    # their rounds, so the threshold sits far above any healthy baseline.
    miss_rate_threshold: float = 0.95
    # Minimum RTT samples on a link before it can be judged at all.
    min_samples: int = 8
    # Minimum judged links a caller needs before relative RTT comparison
    # means anything. With a single peer the "best link" baseline *is*
    # the suspect link, so rtt/baseline pins to 1.0 and the component to
    # 1/rtt_factor — a uniformly-slow sole peer could never be suspected
    # (and the pinned value is noise either way). Below this floor the
    # RTT component is 0: "cannot judge relatively"; the quorum-miss
    # component still applies.
    min_baseline_peers: int = 2
    # Hysteresis: consecutive suspicious windows to flag ...
    suspect_windows: int = 3
    # ... and consecutive healthy windows to clear.
    clear_windows: int = 4


class PeerHealth(enum.Enum):
    HEALTHY = "healthy"
    SUSPECT = "suspect"


class LinkScore:
    """Streaming statistics for one (caller, peer) link."""

    __slots__ = ("caller", "peer", "rtt_ewma_ms", "samples", "miss_ewma", "rounds")

    def __init__(self, caller: str, peer: str):
        self.caller = caller
        self.peer = peer
        self.rtt_ewma_ms: Optional[float] = None
        self.samples = 0
        self.miss_ewma = 0.0
        self.rounds = 0

    def observe_rtt(self, latency_ms: float, alpha: float) -> None:
        self.samples += 1
        if self.rtt_ewma_ms is None:
            self.rtt_ewma_ms = latency_ms
        else:
            updated = self.rtt_ewma_ms + alpha * (latency_ms - self.rtt_ewma_ms)
            # In exact arithmetic the update is a convex combination, so it
            # lies between the old EWMA and the new sample; float rounding
            # can land one ulp outside that hull (e.g. alpha == 1.0 with a
            # large magnitude drop). Clamp back so the invariant the rest
            # of the detector relies on — EWMA within observed range —
            # holds bit-for-bit.
            lo = min(self.rtt_ewma_ms, latency_ms)
            hi = max(self.rtt_ewma_ms, latency_ms)
            self.rtt_ewma_ms = min(max(updated, lo), hi)

    def observe_round(self, in_quorum: bool, alpha: float) -> None:
        self.rounds += 1
        miss = 0.0 if in_quorum else 1.0
        self.miss_ewma += alpha * (miss - self.miss_ewma)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rtt = f"{self.rtt_ewma_ms:.2f}ms" if self.rtt_ewma_ms is not None else "-"
        return (
            f"<LinkScore {self.caller}->{self.peer} rtt~{rtt} "
            f"miss~{self.miss_ewma:.2f} n={self.samples}>"
        )


@dataclass
class ScoreTransition:
    """One hysteresis edge: a peer crossed into or out of suspicion."""

    caller: str
    peer: str
    state: PeerHealth
    score: float
    at: float


class SlownessScorer:
    """Live per-link scoring; attach to a cluster tracer and roll windows.

    ``roll_window(now)`` is driven externally (the mitigation controller
    schedules it on the virtual clock) so the scorer itself stays a pure
    function of the trace stream and the roll times.
    """

    def __init__(self, tracer: Tracer, config: Optional[ScoringConfig] = None):
        self.config = config or ScoringConfig()
        self.links: Dict[Tuple[str, str], LinkScore] = {}
        self.windows_rolled = 0
        self.transitions: List[ScoreTransition] = []
        # (caller, peer) -> hysteresis state machine counters.
        self._state: Dict[Tuple[str, str], PeerHealth] = {}
        self._bad_streak: Dict[Tuple[str, str], int] = {}
        self._good_streak: Dict[Tuple[str, str], int] = {}
        tracer.add_rpc_listener(self._on_rpc)
        tracer.add_quorum_listener(self._on_quorum)

    # ------------------------------------------------------------------
    # Streaming trace-point intake
    # ------------------------------------------------------------------
    def _on_rpc(
        self, node: str, peer: str, method: str, latency_ms: float, now: float
    ) -> None:
        self._link(node, peer).observe_rtt(latency_ms, self.config.ewma_alpha)

    def _on_quorum(self, arrival: QuorumArrival) -> None:
        self._link(arrival.caller, arrival.peer).observe_round(
            arrival.in_quorum, self.config.miss_alpha
        )

    def _link(self, caller: str, peer: str) -> LinkScore:
        key = (caller, peer)
        link = self.links.get(key)
        if link is None:
            link = LinkScore(caller, peer)
            self.links[key] = link
        return link

    # ------------------------------------------------------------------
    # Windowed scoring with hysteresis
    # ------------------------------------------------------------------
    def score(self, caller: str, peer: str) -> float:
        """Instantaneous badness: >= 1.0 means suspicious right now.

        The RTT component compares the link's EWMA against the best
        (lowest) EWMA among the same caller's judged links; the rank
        component compares quorum-miss frequency against the threshold.
        """
        cfg = self.config
        link = self.links.get((caller, peer))
        if link is None or link.samples < cfg.min_samples or link.rtt_ewma_ms is None:
            return 0.0
        judged = [
            other.rtt_ewma_ms
            for (other_caller, _), other in self.links.items()
            if other_caller == caller
            and other.samples >= cfg.min_samples
            and other.rtt_ewma_ms is not None
        ]
        rtt_component = 0.0
        if len(judged) >= cfg.min_baseline_peers:
            baseline = min(judged)
            if baseline > 0:
                rtt_component = (link.rtt_ewma_ms / baseline) / cfg.rtt_factor
        rank_component = 0.0
        if link.rounds >= cfg.min_samples:
            rank_component = link.miss_ewma / cfg.miss_rate_threshold
        return max(rtt_component, rank_component)

    def scores_from(self, caller: str) -> Dict[str, float]:
        """Current scores for every judged peer of one caller."""
        return {
            peer: self.score(caller, peer)
            for (link_caller, peer) in sorted(self.links)
            if link_caller == caller
        }

    def state(self, caller: str, peer: str) -> PeerHealth:
        return self._state.get((caller, peer), PeerHealth.HEALTHY)

    def suspects_of(self, caller: str) -> List[str]:
        return sorted(
            peer
            for (link_caller, peer), state in self._state.items()
            if link_caller == caller and state == PeerHealth.SUSPECT
        )

    def roll_window(self, now: float) -> List[ScoreTransition]:
        """Close one check window: update hysteresis on every judged link.

        Returns the transitions (suspect/clear edges) this window caused.
        """
        cfg = self.config
        self.windows_rolled += 1
        edges: List[ScoreTransition] = []
        for key in sorted(self.links):
            caller, peer = key
            value = self.score(caller, peer)
            state = self._state.get(key, PeerHealth.HEALTHY)
            if value >= 1.0:
                self._bad_streak[key] = self._bad_streak.get(key, 0) + 1
                self._good_streak[key] = 0
            else:
                self._good_streak[key] = self._good_streak.get(key, 0) + 1
                self._bad_streak[key] = 0
            if state == PeerHealth.HEALTHY:
                if self._bad_streak.get(key, 0) >= cfg.suspect_windows:
                    self._state[key] = PeerHealth.SUSPECT
                    edge = ScoreTransition(caller, peer, PeerHealth.SUSPECT, value, now)
                    edges.append(edge)
            else:
                if self._good_streak.get(key, 0) >= cfg.clear_windows:
                    self._state[key] = PeerHealth.HEALTHY
                    edge = ScoreTransition(caller, peer, PeerHealth.HEALTHY, value, now)
                    edges.append(edge)
        self.transitions.extend(edges)
        return edges
