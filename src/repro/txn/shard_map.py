"""Key → shard routing."""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List


class ShardMap:
    """Static hash partitioning of the keyspace over named shards."""

    def __init__(self, shards: Dict[str, List[str]]):
        """``shards`` maps shard name → replica group (node ids)."""
        if not shards:
            raise ValueError("need at least one shard")
        self.shards = dict(shards)
        self._order = sorted(shards)

    def shard_names(self) -> List[str]:
        return list(self._order)

    def group_of(self, shard: str) -> List[str]:
        return list(self.shards[shard])

    def shard_for(self, key: str) -> str:
        digest = hashlib.sha256(key.encode()).digest()
        return self._order[int.from_bytes(digest[:4], "big") % len(self._order)]

    def split_by_shard(self, keys: Iterable[str]) -> Dict[str, List[str]]:
        """Group keys by owning shard (only shards that own keys appear)."""
        grouped: Dict[str, List[str]] = {}
        for key in keys:
            grouped.setdefault(self.shard_for(key), []).append(key)
        return grouped

    def all_groups(self) -> Dict[str, List[str]]:
        return {name: list(group) for name, group in self.shards.items()}
