"""Sharded transactions over DepFastRaft — the paper's §5 extension.

"We are working on enhancing DepFast for building different types of
distributed systems other than RSMs, such as sharded data stores with
distributed transaction protocols which also have complicated waiting
conditions."

This package builds that system: a sharded KV store where each shard is a
DepFastRaft group, and cross-shard transactions run two-phase commit whose
*waiting conditions* are exactly the complicated kind §3.2 motivates::

    all_yes = QuorumEvent(n_shards of n_shards, classify=voted-yes)
    any_no  = QuorumEvent(1 of n_shards,       classify=voted-no)
    outcome = OrEvent(all_yes, any_no)   # commit, or abort at the FIRST no
    yield outcome.wait(timeout)

Within each shard, the prepare/commit records are ordinary replicated log
entries — committed by the shard's majority quorum, so a fail-slow
minority inside every shard is still tolerated end-to-end.
"""

from repro.txn.coordinator import TxnCoordinator, TxnOutcome
from repro.txn.shard_map import ShardMap
from repro.txn.state_machine import TxnKvStore
from repro.txn.store import ShardedStore, deploy_sharded_store

__all__ = [
    "ShardMap",
    "ShardedStore",
    "TxnCoordinator",
    "TxnKvStore",
    "TxnOutcome",
    "deploy_sharded_store",
]
