"""The 2PC coordinator, written with nested DepFast events.

The coordinator fans prepare records out to every involved shard and waits
on the §3.2-style nested condition: an OrEvent of "all shards voted yes"
and "any shard voted no" — so a single no aborts immediately instead of
waiting out the stragglers, and a timeout aborts conservatively (presumed
abort). Each per-shard vote is itself delivered by a small driver
coroutine that handles leader redirects, and each shard's vote commits
through that shard's majority quorum — fail-slow minorities inside shards
never stall the transaction.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.cluster.node import Node
from repro.events.basic import ValueEvent
from repro.events.compound import OrEvent, QuorumEvent
from repro.txn.shard_map import ShardMap
from repro.workload.driver import KvServiceClient

_txn_counter = itertools.count(1)


class TxnOutcome:
    """Result of one distributed transaction."""

    __slots__ = ("txn_id", "committed", "reason", "shards", "latency_ms")

    def __init__(self, txn_id: str, committed: bool, reason: str, shards: List[str], latency_ms: float):
        self.txn_id = txn_id
        self.committed = committed
        self.reason = reason
        self.shards = shards
        self.latency_ms = latency_ms

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        verdict = "COMMIT" if self.committed else f"ABORT({self.reason})"
        return f"<Txn {self.txn_id} {verdict} shards={self.shards} {self.latency_ms:.2f}ms>"


class TxnCoordinator:
    """Drives cross-shard transactions from one (client) node."""

    def __init__(
        self,
        node: Node,
        shard_map: ShardMap,
        prepare_timeout_ms: float = 4000.0,
        request_timeout_ms: float = 1500.0,
    ):
        self.node = node
        self.shard_map = shard_map
        self.prepare_timeout_ms = prepare_timeout_ms
        # One redirect-following client per shard, reused across txns so
        # leader hints persist.
        self._clients: Dict[str, KvServiceClient] = {
            shard: KvServiceClient(
                node, shard_map.group_of(shard), request_timeout_ms=request_timeout_ms
            )
            for shard in shard_map.shard_names()
        }
        self.committed = 0
        self.aborted = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def transact(self, writes: Dict[str, Any]) -> Generator:
        """Generator: atomically write ``writes`` across shards.

        Returns a :class:`TxnOutcome`.
        """
        if not writes:
            raise ValueError("empty transaction")
        started = self.node.runtime.now
        txn_id = f"{self.node.node_id}-{next(_txn_counter)}"
        by_shard = self._writes_by_shard(writes)
        shards = sorted(by_shard)

        # ---- Phase 1: prepare, with first-no early abort --------------
        votes: List[ValueEvent] = []
        for shard in shards:
            vote = ValueEvent(name=f"vote:{shard}", source=self._clients[shard]._leader_hint)
            votes.append(vote)
            payload = ("txn_prepare", txn_id, tuple(sorted(by_shard[shard].items())))
            self.node.runtime.spawn(
                self._drive_shard_op(shard, payload, vote),
                name=f"{txn_id}:prepare:{shard}",
            )
        # depfast: allow(DF005) — 2PC semantics: commit needs every shard's
        # yes, so k == n is forced. The OrEvent below with any_no (1 of n)
        # restores the early-out: one no aborts without waiting for all.
        all_yes = QuorumEvent(
            len(shards),
            n_total=len(shards),
            classify=lambda ev: ev.value[0],
            name=f"{txn_id}:all-yes",
        )
        any_no = QuorumEvent(
            1,
            n_total=len(shards),
            classify=lambda ev: not ev.value[0],
            name=f"{txn_id}:any-no",
        )
        for vote in votes:
            all_yes.add(vote)
            any_no.add(vote)
        outcome = OrEvent(all_yes, any_no, name=f"{txn_id}:prepare-outcome")
        yield outcome.wait(timeout_ms=self.prepare_timeout_ms)

        if not all_yes.ready():
            # Abort: a shard said no, or the prepare round timed out.
            reason = "voted-no" if any_no.ready() else "prepare-timeout"
            yield from self._finish(txn_id, shards, commit=False)
            self.aborted += 1
            return TxnOutcome(txn_id, False, reason, shards, self.node.runtime.now - started)

        # ---- Phase 2: commit everywhere -------------------------------
        yield from self._finish(txn_id, shards, commit=True)
        self.committed += 1
        return TxnOutcome(txn_id, True, "committed", shards, self.node.runtime.now - started)

    def get(self, key: str) -> Generator:
        """Linearizable single-key read through the owning shard's log."""
        shard = self.shard_map.shard_for(key)
        ok, result = yield from self._clients[shard].execute(("get", key), size_bytes=64)
        return ok, result

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _writes_by_shard(self, writes: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
        grouped: Dict[str, Dict[str, Any]] = {}
        for key, value in writes.items():
            grouped.setdefault(self.shard_map.shard_for(key), {})[key] = value
        return grouped

    def _drive_shard_op(self, shard: str, op: Tuple, done: ValueEvent) -> Generator:
        """Submit one replicated record to a shard; completes ``done``.

        ``done.value`` is ``(accepted: bool, detail)`` where ``accepted``
        means the record committed in the shard's log *and* (for
        prepares) the state machine voted yes.
        """
        size = 64 + sum(len(str(part)) for part in op)
        ok, result = yield from self._clients[shard].execute(op, size_bytes=size)
        if not done.ready():
            if not ok or result is None:
                done.set((False, "shard-unreachable"), now=self.node.runtime.now)
            else:
                done.set((result[0] == "yes" or op[0] != "txn_prepare", result))

    def _finish(self, txn_id: str, shards: List[str], commit: bool) -> Generator:
        """Phase 2: replicate commit/abort records on every shard.

        Commits wait for every shard's record to be durable (the client
        must not read-miss its own writes); aborts are also awaited so
        locks are released before the coroutine returns.
        """
        record = ("txn_commit", txn_id) if commit else ("txn_abort", txn_id)
        acks: List[ValueEvent] = []
        for shard in shards:
            ack = ValueEvent(name=f"ack:{shard}")
            acks.append(ack)
            self.node.runtime.spawn(
                self._drive_shard_op(shard, record, ack),
                name=f"{txn_id}:{record[0]}:{shard}",
            )
        # depfast: allow(DF005) — phase 2 must reach every shard (locks are
        # only released on delivery); the timeout below bounds the wait.
        all_acked = QuorumEvent(len(acks), n_total=len(acks), name=f"{txn_id}:phase2")
        for ack in acks:
            all_acked.add(ack)
        yield all_acked.wait(timeout_ms=self.prepare_timeout_ms)
