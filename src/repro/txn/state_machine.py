"""The per-shard transactional state machine.

Transaction records (prepare / commit / abort) ride the shard's Raft log
like any command, so every replica makes identical lock decisions by
applying them in log order — no extra coordination. Lock conflicts are
decided at apply time: a prepare that hits a key locked by another live
transaction votes "no" (presumed abort).

Ops understood on top of the plain KV ops:

* ``("txn_prepare", txn_id, ((key, value), ...))`` → ``("yes",)`` or
  ``("no", holder_txn_id)``;
* ``("txn_commit", txn_id)`` → ``("committed", n_keys)`` (``("stale",)``
  if the txn is unknown — duplicate/late delivery is harmless);
* ``("txn_abort", txn_id)`` → ``("aborted",)`` (idempotent).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.storage.kvstore import KvOp, KvStore


class TxnKvStore(KvStore):
    """KV state machine with 2PC participant state (locks + staged writes)."""

    def __init__(self):
        super().__init__()
        # key -> txn id holding its write lock.
        self._locks: Dict[str, str] = {}
        # txn id -> staged {key: value}.
        self._staged: Dict[str, Dict[str, Any]] = {}
        self.prepares_accepted = 0
        self.prepares_rejected = 0
        self.commits = 0
        self.aborts = 0

    def apply(self, op: KvOp) -> Optional[Any]:
        kind = op[0]
        if kind == "txn_prepare":
            return self._apply_prepare(op[1], op[2])
        if kind == "txn_commit":
            return self._apply_commit(op[1])
        if kind == "txn_abort":
            return self._apply_abort(op[1])
        return super().apply(op)

    # ------------------------------------------------------------------
    # Transaction records
    # ------------------------------------------------------------------
    def _apply_prepare(self, txn_id: str, writes: Tuple[Tuple[str, Any], ...]):
        self.applied += 1
        if txn_id in self._staged:
            return ("yes",)  # duplicate prepare: keep the original vote
        for key, _value in writes:
            holder = self._locks.get(key)
            if holder is not None and holder != txn_id:
                self.prepares_rejected += 1
                return ("no", holder)
        for key, _value in writes:
            self._locks[key] = txn_id
        self._staged[txn_id] = {key: value for key, value in writes}
        self.prepares_accepted += 1
        return ("yes",)

    def _apply_commit(self, txn_id: str):
        self.applied += 1
        staged = self._staged.pop(txn_id, None)
        if staged is None:
            return ("stale",)
        for key, value in staged.items():
            self._data[key] = value
            self._locks.pop(key, None)
        self.commits += 1
        return ("committed", len(staged))

    def _apply_abort(self, txn_id: str):
        self.applied += 1
        staged = self._staged.pop(txn_id, None)
        if staged is not None:
            for key in staged:
                self._locks.pop(key, None)
            self.aborts += 1
        return ("aborted",)

    # ------------------------------------------------------------------
    # Snapshots: transaction state travels with the data
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, Any]:
        state = super().snapshot_state()
        state["locks"] = dict(self._locks)
        state["staged"] = {txn: dict(writes) for txn, writes in self._staged.items()}
        return state

    def restore_state(self, state: Dict[str, Any]) -> None:
        super().restore_state(state)
        self._locks = dict(state.get("locks", {}))
        self._staged = {
            txn: dict(writes) for txn, writes in state.get("staged", {}).items()
        }

    def estimated_bytes(self) -> int:
        staged_bytes = sum(
            len(str(k)) + len(str(v)) + 16
            for writes in self._staged.values()
            for k, v in writes.items()
        )
        return super().estimated_bytes() + staged_bytes + 32 * len(self._locks)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def locked_keys(self) -> Dict[str, str]:
        return dict(self._locks)

    def in_flight_txns(self) -> int:
        return len(self._staged)
