"""Deployment of the sharded transactional store."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.raft.config import RaftConfig
from repro.raft.node import RaftNode
from repro.raft.service import deploy_depfast_raft, find_leader
from repro.txn.coordinator import TxnCoordinator
from repro.txn.shard_map import ShardMap
from repro.txn.state_machine import TxnKvStore


class ShardedStore:
    """A deployed multi-shard store: shard map + one Raft group per shard."""

    def __init__(self, cluster: Cluster, shard_map: ShardMap, groups: Dict[str, Dict[str, RaftNode]]):
        self.cluster = cluster
        self.shard_map = shard_map
        self.groups = groups

    def coordinator(self, node: Node, **kwargs) -> TxnCoordinator:
        """A 2PC coordinator bound to ``node`` (usually a client node)."""
        return TxnCoordinator(node, self.shard_map, **kwargs)

    def leader_of(self, shard: str) -> Optional[RaftNode]:
        return find_leader(self.groups[shard])

    def wait_for_leaders(self, deadline_ms: float = 10_000.0) -> None:
        """Advance the sim until every shard has elected a leader."""
        while self.cluster.kernel.now < deadline_ms:
            if all(self.leader_of(shard) is not None for shard in self.groups):
                return
            self.cluster.run(self.cluster.kernel.now + 50.0)
        missing = [s for s in self.groups if self.leader_of(s) is None]
        if missing:
            raise RuntimeError(f"shards without leaders: {missing}")

    def state_machines(self, shard: str) -> List[TxnKvStore]:
        return [raft.kv for raft in self.groups[shard].values()]


def deploy_sharded_store(
    cluster: Cluster,
    n_shards: int = 3,
    replicas: int = 3,
    config: Optional[RaftConfig] = None,
) -> ShardedStore:
    """Stand up ``n_shards`` DepFastRaft groups with TxnKvStore machines.

    Nodes are named like Figure 2: shard 0 = s1..s3, shard 1 = s4..s6, …
    with each shard's first member as its preferred leader.
    """
    if n_shards < 1 or replicas < 1 or replicas % 2 == 0:
        raise ValueError("need >=1 shards and an odd replica count")
    shards: Dict[str, List[str]] = {}
    next_node = 1
    for index in range(n_shards):
        group = [f"s{next_node + offset}" for offset in range(replicas)]
        next_node += replicas
        shards[f"shard{index}"] = group
    shard_map = ShardMap(shards)
    groups: Dict[str, Dict[str, RaftNode]] = {}
    for shard, group in shards.items():
        if config is None:
            shard_config = RaftConfig(preferred_leader=group[0])
        else:
            from dataclasses import replace

            shard_config = replace(config, preferred_leader=group[0])
        groups[shard] = deploy_depfast_raft(
            cluster,
            group,
            config=shard_config,
            state_machine_factory=TxnKvStore,
        )
    return ShardedStore(cluster, shard_map, groups)
