"""Ambient cloud noise: short transient slowdowns on healthy nodes.

§2.2's third root cause: "with three-node cloud deployments, when one
follower fails slow, transient performance issues on the *other* follower
inevitably prolong the tail." This process reproduces those transient
issues: at random (exponential) intervals a random node's CPU dips for a
few tens of milliseconds. Healthy quorum systems hide each dip behind the
other replicas; a system already waiting on the one healthy follower
cannot, and its P99 inflates.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.cluster.cluster import Cluster


class BackgroundJitter:
    """Poisson process of transient CPU dips across a node set."""

    def __init__(
        self,
        cluster: Cluster,
        nodes: List[str],
        rng: random.Random,
        mean_interval_ms: float = 250.0,
        dip_factor: float = 0.25,
        mean_duration_ms: float = 30.0,
    ):
        if not nodes:
            raise ValueError("jitter needs at least one target node")
        if not 0 < dip_factor <= 1.0:
            raise ValueError("dip factor must be in (0, 1]")
        self.cluster = cluster
        self.nodes = list(nodes)
        self.rng = rng
        self.mean_interval_ms = mean_interval_ms
        self.dip_factor = dip_factor
        self.mean_duration_ms = mean_duration_ms
        self.dips_injected = 0
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        self._running = False

    def _schedule_next(self) -> None:
        delay = self.rng.expovariate(1.0 / self.mean_interval_ms)
        self.cluster.kernel.schedule(delay, self._dip)

    def _dip(self) -> None:
        if not self._running:
            return
        node_id = self.rng.choice(self.nodes)
        node = self.cluster.node(node_id)
        duration = self.rng.expovariate(1.0 / self.mean_duration_ms)
        if not node.crashed and node.cpu.jitter_factor == 1.0:
            node.cpu.set_jitter(self.dip_factor)
            self.dips_injected += 1
            self.cluster.kernel.schedule(duration, self._recover, node_id)
        self._schedule_next()

    def _recover(self, node_id: str) -> None:
        node = self.cluster.node(node_id)
        if not node.crashed:
            node.cpu.set_jitter(1.0)
