"""Applies, schedules and clears fail-slow faults on cluster nodes.

Two disciplines matter for chaos schedules:

* **Queueing** — a scheduled fault that fires while the node already has
  an active fault is *queued*, not raised: it applies the moment the
  active fault clears, keeping its own duration. Seeded nemesis schedules
  can therefore overlap transients freely without killing the simulation
  from inside a kernel callback. (Direct :meth:`FaultInjector.inject` on a
  busy node still raises — that is caller misuse, not a schedule race.)
* **Exact save/restore** — injection snapshots the knob's prior value and
  :meth:`FaultInjector.clear` restores exactly that, so healing is exact
  even when the pre-fault value was not the default (e.g. a non-default
  memory limit, or background jitter on the CPU).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.faults.catalog import SOFTWARE_FAULTS, TABLE1, FaultSpec, FaultType


class FaultInjector:
    """Injects Table 1 faults into a :class:`~repro.cluster.cluster.Cluster`."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        # node_id -> active fault spec (one fault per node, like the paper).
        self.active: Dict[str, FaultSpec] = {}
        self.history: List[Tuple[float, str, str, str]] = []  # (t, node, fault, action)
        # Knob values saved at injection time, restored exactly on clear.
        self._saved: Dict[str, Dict[str, float]] = {}
        # Scheduled faults that arrived while the node was busy, in FIFO
        # order: (spec, duration_ms or None for permanent).
        self._queued: Dict[str, Deque[Tuple[FaultSpec, Optional[float]]]] = {}
        # Per-node application counter: transient-end timers only clear the
        # injection they were armed for (specs are shared catalog objects,
        # so identity cannot distinguish two injections of the same fault).
        self._epoch: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Immediate injection
    # ------------------------------------------------------------------
    def inject(self, node_id: str, spec_or_name) -> None:
        """Apply a fault now. ``spec_or_name`` is a FaultSpec or Table 1 name."""
        spec = self._resolve(spec_or_name)
        if node_id in self.active:
            raise RuntimeError(
                f"node {node_id} already has fault "
                f"{self.active[node_id].fault_type.value}; clear it first"
            )
        self._apply(node_id, spec)

    def _apply(self, node_id: str, spec: FaultSpec) -> None:
        node = self.cluster.node(node_id)
        kind = spec.fault_type
        if kind == FaultType.NONE:
            return
        if kind == FaultType.CPU_SLOW:
            self._saved[node_id] = {"quota": node.cpu.quota}
            node.cpu.set_quota(spec.param("quota"))
        elif kind == FaultType.CPU_CONTENTION:
            self._saved[node_id] = {"contender_share": node.cpu.contender_share}
            node.cpu.set_contender_share(spec.param("contender_share"))
        elif kind == FaultType.DISK_SLOW:
            self._saved[node_id] = {"cap_fraction": node.disk.cap_fraction}
            node.disk.set_cap_fraction(spec.param("cap_fraction"))
        elif kind == FaultType.DISK_CONTENTION:
            self._saved[node_id] = {"contender_load": node.disk.contender_load}
            node.disk.set_contender_load(spec.param("contender_load"))
        elif kind == FaultType.MEMORY_CONTENTION:
            self._saved[node_id] = {"limit_bytes": float(node.memory.limit_bytes)}
            limit = int(node.spec.memory_bytes * spec.param("limit_fraction"))
            node.memory.set_limit(limit)
        elif kind == FaultType.NETWORK_SLOW:
            self._saved[node_id] = {"extra_delay_ms": node.nic.extra_delay_ms}
            node.nic.set_extra_delay(spec.param("delay_ms"))
        elif kind == FaultType.DEBUG_LOGGING:
            self._saved[node_id] = {
                "parse_cost_ms": node.endpoint.parse_cost_ms,
                "parse_cost_per_kb_ms": node.endpoint.parse_cost_per_kb_ms,
            }
            multiplier = spec.param("parse_cost_multiplier")
            node.endpoint.parse_cost_ms *= multiplier
            node.endpoint.parse_cost_per_kb_ms *= multiplier
        else:  # pragma: no cover - exhaustive over enum
            raise ValueError(f"unhandled fault type {kind}")
        self.active[node_id] = spec
        self._epoch[node_id] = self._epoch.get(node_id, 0) + 1
        self.history.append((self.cluster.kernel.now, node_id, kind.value, "inject"))

    def clear(self, node_id: str) -> None:
        """Remove the node's active fault, restoring the saved knob values.

        If scheduled faults queued up behind the active one, the next in
        line is applied immediately (with its own duration, if transient).
        """
        spec = self.active.pop(node_id, None)
        if spec is None:
            return
        node = self.cluster.node(node_id)
        kind = spec.fault_type
        saved = self._saved.pop(node_id, {})
        if kind == FaultType.CPU_SLOW:
            node.cpu.set_quota(saved.get("quota", 1.0))
        elif kind == FaultType.CPU_CONTENTION:
            node.cpu.set_contender_share(saved.get("contender_share", 0.0))
        elif kind == FaultType.DISK_SLOW:
            node.disk.set_cap_fraction(saved.get("cap_fraction", 1.0))
        elif kind == FaultType.DISK_CONTENTION:
            node.disk.set_contender_load(saved.get("contender_load", 0.0))
        elif kind == FaultType.MEMORY_CONTENTION:
            node.memory.set_limit(int(saved.get("limit_bytes", node.spec.memory_bytes)))
        elif kind == FaultType.NETWORK_SLOW:
            node.nic.set_extra_delay(saved.get("extra_delay_ms", 0.0))
        elif kind == FaultType.DEBUG_LOGGING:
            node.endpoint.parse_cost_ms = saved.get(
                "parse_cost_ms", node.spec.rpc_parse_cost_ms
            )
            node.endpoint.parse_cost_per_kb_ms = saved.get(
                "parse_cost_per_kb_ms", node.spec.rpc_parse_cost_per_kb_ms
            )
        self.history.append((self.cluster.kernel.now, node_id, kind.value, "clear"))
        self._pop_queued(node_id)

    # ------------------------------------------------------------------
    # Scheduled / transient faults
    # ------------------------------------------------------------------
    def inject_at(self, node_id: str, spec_or_name, at_ms: float) -> None:
        spec = self._resolve(spec_or_name)
        self.cluster.kernel.schedule_at(at_ms, self._start_scheduled, node_id, spec, None)

    def inject_transient(
        self, node_id: str, spec_or_name, at_ms: float, duration_ms: float
    ) -> None:
        """Fault appears at ``at_ms`` and clears ``duration_ms`` later.

        Overlapping schedules on the same node are queued: a transient
        firing while another fault is active starts when that fault clears
        and still lasts its full ``duration_ms``.
        """
        if duration_ms <= 0:
            raise ValueError("transient fault needs positive duration")
        spec = self._resolve(spec_or_name)
        self.cluster.kernel.schedule_at(
            at_ms, self._start_scheduled, node_id, spec, duration_ms
        )

    def _start_scheduled(
        self, node_id: str, spec: FaultSpec, duration_ms: Optional[float]
    ) -> None:
        if node_id in self.active:
            self._queued.setdefault(node_id, deque()).append((spec, duration_ms))
            self.history.append(
                (self.cluster.kernel.now, node_id, spec.fault_type.value, "queued")
            )
            return
        self._apply(node_id, spec)
        if duration_ms is not None:
            self.cluster.kernel.schedule(
                duration_ms, self._end_transient, node_id, self._epoch[node_id]
            )

    def _end_transient(self, node_id: str, epoch: int) -> None:
        # Only clear the injection this timer was armed for; a manual clear
        # (or a queued successor) may already have replaced it.
        if node_id in self.active and self._epoch.get(node_id) == epoch:
            self.clear(node_id)

    def _pop_queued(self, node_id: str) -> None:
        queue = self._queued.get(node_id)
        if not queue:
            return
        spec, duration_ms = queue.popleft()
        self._apply(node_id, spec)
        if duration_ms is not None:
            self.cluster.kernel.schedule(
                duration_ms, self._end_transient, node_id, self._epoch[node_id]
            )

    def queued_count(self, node_id: str) -> int:
        """Scheduled faults waiting behind the node's active fault."""
        return len(self._queued.get(node_id, ()))

    def fault_on(self, node_id: str) -> Optional[FaultSpec]:
        return self.active.get(node_id)

    @staticmethod
    def _resolve(spec_or_name) -> FaultSpec:
        if isinstance(spec_or_name, FaultSpec):
            return spec_or_name
        spec = TABLE1.get(spec_or_name) or SOFTWARE_FAULTS.get(spec_or_name)
        if spec is None:
            known = sorted(TABLE1) + sorted(SOFTWARE_FAULTS)
            raise KeyError(f"unknown fault {spec_or_name!r}; known: {known}")
        return spec
