"""Applies, schedules and clears fail-slow faults on cluster nodes."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.faults.catalog import SOFTWARE_FAULTS, TABLE1, FaultSpec, FaultType


class FaultInjector:
    """Injects Table 1 faults into a :class:`~repro.cluster.cluster.Cluster`."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        # node_id -> active fault spec (one fault per node, like the paper).
        self.active: Dict[str, FaultSpec] = {}
        self.history: List[Tuple[float, str, str, str]] = []  # (t, node, fault, action)

    # ------------------------------------------------------------------
    # Immediate injection
    # ------------------------------------------------------------------
    def inject(self, node_id: str, spec_or_name) -> None:
        """Apply a fault now. ``spec_or_name`` is a FaultSpec or Table 1 name."""
        spec = self._resolve(spec_or_name)
        if node_id in self.active:
            raise RuntimeError(
                f"node {node_id} already has fault "
                f"{self.active[node_id].fault_type.value}; clear it first"
            )
        node = self.cluster.node(node_id)
        kind = spec.fault_type
        if kind == FaultType.NONE:
            return
        if kind == FaultType.CPU_SLOW:
            node.cpu.set_quota(spec.param("quota"))
        elif kind == FaultType.CPU_CONTENTION:
            node.cpu.set_contender_share(spec.param("contender_share"))
        elif kind == FaultType.DISK_SLOW:
            node.disk.set_cap_fraction(spec.param("cap_fraction"))
        elif kind == FaultType.DISK_CONTENTION:
            node.disk.set_contender_load(spec.param("contender_load"))
        elif kind == FaultType.MEMORY_CONTENTION:
            limit = int(node.spec.memory_bytes * spec.param("limit_fraction"))
            node.memory.set_limit(limit)
        elif kind == FaultType.NETWORK_SLOW:
            node.nic.set_extra_delay(spec.param("delay_ms"))
        elif kind == FaultType.DEBUG_LOGGING:
            multiplier = spec.param("parse_cost_multiplier")
            node.endpoint.parse_cost_ms *= multiplier
            node.endpoint.parse_cost_per_kb_ms *= multiplier
        else:  # pragma: no cover - exhaustive over enum
            raise ValueError(f"unhandled fault type {kind}")
        self.active[node_id] = spec
        self.history.append((self.cluster.kernel.now, node_id, kind.value, "inject"))

    def clear(self, node_id: str) -> None:
        """Remove the node's active fault, restoring healthy resources."""
        spec = self.active.pop(node_id, None)
        if spec is None:
            return
        node = self.cluster.node(node_id)
        kind = spec.fault_type
        if kind == FaultType.CPU_SLOW:
            node.cpu.set_quota(1.0)
        elif kind == FaultType.CPU_CONTENTION:
            node.cpu.set_contender_share(0.0)
        elif kind == FaultType.DISK_SLOW:
            node.disk.set_cap_fraction(1.0)
        elif kind == FaultType.DISK_CONTENTION:
            node.disk.set_contender_load(0.0)
        elif kind == FaultType.MEMORY_CONTENTION:
            node.memory.set_limit(node.spec.memory_bytes)
        elif kind == FaultType.NETWORK_SLOW:
            node.nic.set_extra_delay(0.0)
        elif kind == FaultType.DEBUG_LOGGING:
            multiplier = spec.param("parse_cost_multiplier")
            node.endpoint.parse_cost_ms /= multiplier
            node.endpoint.parse_cost_per_kb_ms /= multiplier
        self.history.append((self.cluster.kernel.now, node_id, kind.value, "clear"))

    # ------------------------------------------------------------------
    # Scheduled / transient faults
    # ------------------------------------------------------------------
    def inject_at(self, node_id: str, spec_or_name, at_ms: float) -> None:
        spec = self._resolve(spec_or_name)
        self.cluster.kernel.schedule_at(at_ms, self.inject, node_id, spec)

    def inject_transient(
        self, node_id: str, spec_or_name, at_ms: float, duration_ms: float
    ) -> None:
        """Fault appears at ``at_ms`` and clears ``duration_ms`` later."""
        if duration_ms <= 0:
            raise ValueError("transient fault needs positive duration")
        spec = self._resolve(spec_or_name)
        self.cluster.kernel.schedule_at(at_ms, self.inject, node_id, spec)
        self.cluster.kernel.schedule_at(at_ms + duration_ms, self.clear, node_id)

    def fault_on(self, node_id: str) -> Optional[FaultSpec]:
        return self.active.get(node_id)

    @staticmethod
    def _resolve(spec_or_name) -> FaultSpec:
        if isinstance(spec_or_name, FaultSpec):
            return spec_or_name
        spec = TABLE1.get(spec_or_name) or SOFTWARE_FAULTS.get(spec_or_name)
        if spec is None:
            known = sorted(TABLE1) + sorted(SOFTWARE_FAULTS)
            raise KeyError(f"unknown fault {spec_or_name!r}; known: {known}")
        return spec
