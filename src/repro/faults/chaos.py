"""Nemesis: a seeded chaos orchestrator over the fault substrate.

The paper's Table 1 injects one fail-slow fault at a time; real clusters
see *compositions* — a follower crashes while another is disk-slow, a
partition heals into a lossy link, the leader reboots mid-commit. The
Nemesis schedules such compositions deterministically: **every random
draw happens at plan time** (from one named RNG stream), so a schedule
is a pure function of the seed and replays bit-identically. At run time
events fire from kernel timers and consult only simulation state.

Event kinds:

* ``crash``/``restart`` — kill a process, then reboot it through
  :func:`repro.raft.service.restart_raft_node` (durable-state recovery);
* ``partition``/``heal`` — symmetric or one-node (asymmetric victim)
  network splits; heals remove exactly the edges that partition cut, so
  overlapping partitions compose;
* ``loss`` — probabilistic per-link message loss for a window;
* ``fault`` — a Table 1 fail-slow transient, delegated to
  :class:`~repro.faults.injector.FaultInjector` (which queues overlaps).

The optional **majority guardrail** skips any crash/partition that would
leave fewer than a majority of the group healthy-and-connected — chaos
schedules then probe every behaviour *except* expected unavailability,
so liveness assertions stay meaningful. Skips are logged, not silent.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.faults.catalog import TABLE1
from repro.faults.injector import FaultInjector

# Fault kinds a random schedule samples from (deterministic order).
CHAOS_FAULTS = [
    "cpu_slow",
    "cpu_contention",
    "disk_slow",
    "disk_contention",
    "network_slow",
]


class Nemesis:
    """Deterministic chaos schedules against one Raft group."""

    def __init__(
        self,
        cluster: Cluster,
        raft_nodes: Dict[str, object],
        injector: Optional[FaultInjector] = None,
        majority_guard: bool = True,
    ):
        self.cluster = cluster
        self.raft_nodes = raft_nodes  # mutated in place by restarts
        self.injector = injector or FaultInjector(cluster)
        self.majority_guard = majority_guard
        self.group = sorted(raft_nodes)
        self.log: List[Tuple[float, str, str]] = []  # (t, kind, detail)
        self.crashes = 0
        self.restarts = 0
        self.partitions = 0
        self.heals = 0
        self.skipped = 0
        # node -> why it counts as down ("crashed" | "isolated").
        self._down: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Schedule builders (call before cluster.run; draws happen here)
    # ------------------------------------------------------------------
    def schedule_crash_restart(
        self, node_id: str, at_ms: float, down_ms: float
    ) -> None:
        """Kill ``node_id`` at ``at_ms``; reboot + recover ``down_ms`` later.

        ``node_id`` may be the sentinel ``"__leader__"``, resolved to the
        current leader when the event fires (still deterministic: leader
        identity is simulation state, not randomness).
        """
        self.cluster.kernel.schedule_at(at_ms, self._do_crash, node_id, down_ms)

    def schedule_partition(
        self,
        side_a: Sequence[str],
        side_b: Sequence[str],
        at_ms: float,
        duration_ms: float,
    ) -> None:
        self.cluster.kernel.schedule_at(
            at_ms, self._do_partition, list(side_a), list(side_b), duration_ms
        )

    def schedule_isolation(
        self, node_id: str, at_ms: float, duration_ms: float
    ) -> None:
        """Cut one node (the minority side) off from the rest of the group."""
        others = [peer for peer in self.group if peer != node_id]
        self.schedule_partition([node_id], others, at_ms, duration_ms)

    def schedule_link_loss(
        self, src: str, dst: str, rate: float, at_ms: float, duration_ms: float
    ) -> None:
        self.cluster.kernel.schedule_at(
            at_ms, self._do_loss, src, dst, rate, duration_ms
        )

    def schedule_fault(
        self, node_id: str, spec_or_name, at_ms: float, duration_ms: float
    ) -> None:
        """A Table 1 fail-slow transient (queued by the injector on overlap)."""
        self.injector.inject_transient(node_id, spec_or_name, at_ms, duration_ms)

    def schedule_flapping(
        self,
        node_id: str,
        spec_or_name,
        at_ms: float,
        on_ms: float,
        off_ms: float,
        cycles: int,
    ) -> None:
        """A flapping fail-slow fault: ``cycles`` on/off pulses of one spec.

        The victim is slow for ``on_ms``, healthy for ``off_ms``, then
        slow again — the detector stress case: a one-shot detector
        catches the first pulse and sleeps through the rest. The plan is
        fully laid out now (plain arithmetic, no draws); ``"__leader__"``
        resolves per pulse, so a fault that chases leadership around the
        group is expressible too.
        """
        if cycles < 1:
            raise ValueError("flapping needs at least one cycle")
        if on_ms <= 0 or off_ms < 0:
            raise ValueError("flapping pulse durations must be positive")
        start = at_ms
        for _ in range(cycles):
            self.cluster.kernel.schedule_at(
                start, self._do_flap, node_id, spec_or_name, on_ms
            )
            start += on_ms + off_ms

    def random_schedule(
        self,
        rng,
        start_ms: float,
        end_ms: float,
        events: int = 10,
        crash_weight: float = 0.3,
        partition_weight: float = 0.3,
        fault_weight: float = 0.3,
        loss_weight: float = 0.1,
    ) -> List[Tuple[float, str, str]]:
        """Draw a mixed schedule now; returns (at_ms, kind, detail) plan.

        All randomness is consumed here, in one pass, in a fixed order —
        the returned plan (and therefore the whole run) is a pure
        function of ``rng``'s seed. Durations may overlap: concurrent and
        correlated faults are the point.
        """
        if end_ms <= start_ms:
            raise ValueError("empty chaos window")
        if len(self.group) < 2:
            raise ValueError(
                "chaos schedules need at least 2 nodes "
                "(partitions and link loss are pairwise)"
            )
        weights = [crash_weight, partition_weight, fault_weight, loss_weight]
        kinds = ["crash", "partition", "fault", "loss"]
        span = end_ms - start_ms
        plan: List[Tuple[float, str, str]] = []
        for _ in range(events):
            at_ms = start_ms + rng.uniform(0.0, span * 0.8)
            kind = rng.choices(kinds, weights=weights, k=1)[0]
            if kind == "crash":
                victim = (
                    "__leader__"
                    if rng.random() < 0.4
                    else rng.choice(self.group)
                )
                down_ms = rng.uniform(span * 0.05, span * 0.2)
                self.schedule_crash_restart(victim, at_ms, down_ms)
                plan.append((at_ms, "crash", f"{victim} down {down_ms:.0f}ms"))
            elif kind == "partition":
                duration_ms = rng.uniform(span * 0.05, span * 0.25)
                if rng.random() < 0.5 or len(self.group) < 5:
                    victim = rng.choice(self.group)
                    self.schedule_isolation(victim, at_ms, duration_ms)
                    plan.append(
                        (at_ms, "isolate", f"{victim} for {duration_ms:.0f}ms")
                    )
                else:
                    shuffled = list(self.group)
                    rng.shuffle(shuffled)
                    minority = len(self.group) // 2
                    side_a, side_b = shuffled[:minority], shuffled[minority:]
                    self.schedule_partition(side_a, side_b, at_ms, duration_ms)
                    plan.append(
                        (
                            at_ms,
                            "partition",
                            f"{'/'.join(side_a)} vs {'/'.join(side_b)} "
                            f"for {duration_ms:.0f}ms",
                        )
                    )
            elif kind == "fault":
                victim = rng.choice(self.group)
                fault = rng.choice(CHAOS_FAULTS)
                duration_ms = rng.uniform(span * 0.1, span * 0.3)
                self.schedule_fault(victim, TABLE1[fault], at_ms, duration_ms)
                plan.append(
                    (at_ms, "fault", f"{fault} on {victim} for {duration_ms:.0f}ms")
                )
            else:  # loss
                src, dst = rng.sample(self.group, 2)
                rate = rng.uniform(0.05, 0.3)
                duration_ms = rng.uniform(span * 0.1, span * 0.3)
                self.schedule_link_loss(src, dst, rate, at_ms, duration_ms)
                plan.append(
                    (
                        at_ms,
                        "loss",
                        f"{src}<->{dst} p={rate:.2f} for {duration_ms:.0f}ms",
                    )
                )
        return sorted(plan)

    # ------------------------------------------------------------------
    # Guardrail
    # ------------------------------------------------------------------
    def _healthy_after(self, newly_down: Sequence[str]) -> bool:
        down = set(self._down) | set(newly_down)
        down |= {node_id for node_id in self.group if self.cluster.node(node_id).crashed}
        healthy = len(self.group) - len(down & set(self.group))
        return healthy >= len(self.group) // 2 + 1

    def _skip(self, kind: str, detail: str) -> None:
        self.skipped += 1
        self.log.append((self.cluster.kernel.now, f"skip-{kind}", detail))

    # ------------------------------------------------------------------
    # Event callbacks (no randomness below this line)
    # ------------------------------------------------------------------
    def _resolve(self, node_id: str) -> str:
        if node_id != "__leader__":
            return node_id
        from repro.raft.service import find_leader

        leader = find_leader(self.raft_nodes)
        if leader is not None:
            return leader.node.node_id
        # No leader right now: pick the first healthy member (deterministic).
        for candidate in self.group:
            if not self.cluster.node(candidate).crashed:
                return candidate
        return self.group[0]

    def _do_crash(self, node_id: str, down_ms: float) -> None:
        node_id = self._resolve(node_id)
        node = self.cluster.node(node_id)
        if node.crashed:
            self._skip("crash", f"{node_id} already down")
            return
        if self.majority_guard and not self._healthy_after([node_id]):
            self._skip("crash", f"{node_id} would break majority")
            return
        node.crash(reason="nemesis")
        self._down[node_id] = "crashed"
        self.crashes += 1
        self.log.append((self.cluster.kernel.now, "crash", node_id))
        self.cluster.kernel.schedule(down_ms, self._do_restart, node_id)

    def _do_restart(self, node_id: str) -> None:
        node = self.cluster.node(node_id)
        if not node.crashed:
            return  # already brought back (e.g. by the campaign's final heal)
        from repro.raft.service import restart_raft_node

        restart_raft_node(self.cluster, self.raft_nodes, node_id)
        self._down.pop(node_id, None)
        self.restarts += 1
        self.log.append((self.cluster.kernel.now, "restart", node_id))

    def _do_partition(
        self, side_a: List[str], side_b: List[str], duration_ms: float
    ) -> None:
        minority = side_a if len(side_a) <= len(side_b) else side_b
        if self.majority_guard and not self._healthy_after(minority):
            self._skip("partition", f"{'/'.join(minority)} would break majority")
            return
        # Cut exactly the edges not already cut, so the paired heal undoes
        # this partition and only this partition.
        cut: List[Tuple[str, str]] = []
        for a in side_a:
            for b in side_b:
                for src, dst in ((a, b), (b, a)):
                    if not self.cluster.network.is_blocked(src, dst):
                        self.cluster.network.block(src, dst, symmetric=False)
                        cut.append((src, dst))
        for node_id in minority:
            self._down.setdefault(node_id, "isolated")
        self.partitions += 1
        detail = f"{'/'.join(sorted(side_a))} | {'/'.join(sorted(side_b))}"
        self.log.append((self.cluster.kernel.now, "partition", detail))
        self.cluster.kernel.schedule(duration_ms, self._do_heal, cut, list(minority))

    def _do_heal(self, cut: List[Tuple[str, str]], minority: List[str]) -> None:
        for src, dst in cut:
            self.cluster.network.unblock(src, dst, symmetric=False)
        for node_id in minority:
            if self._down.get(node_id) == "isolated":
                del self._down[node_id]
        self.heals += 1
        self.log.append((self.cluster.kernel.now, "heal", "/".join(sorted(minority))))

    def _do_loss(self, src: str, dst: str, rate: float, duration_ms: float) -> None:
        self.cluster.network.set_loss_rate(src, dst, rate, symmetric=True)
        self.log.append(
            (self.cluster.kernel.now, "loss", f"{src}<->{dst} p={rate:.2f}")
        )
        self.cluster.kernel.schedule(duration_ms, self._end_loss, src, dst)

    def _end_loss(self, src: str, dst: str) -> None:
        self.cluster.network.set_loss_rate(src, dst, 0.0, symmetric=True)
        self.log.append((self.cluster.kernel.now, "loss-end", f"{src}<->{dst}"))

    def _do_flap(self, node_id: str, spec_or_name, on_ms: float) -> None:
        node_id = self._resolve(node_id)
        if self.cluster.node(node_id).crashed:
            self._skip("flap", f"{node_id} is down")
            return
        now = self.cluster.kernel.now
        self.injector.inject_transient(node_id, spec_or_name, now, on_ms)
        self.log.append((now, "flap", f"{node_id} for {on_ms:.0f}ms"))

    # ------------------------------------------------------------------
    # Final convergence support
    # ------------------------------------------------------------------
    def heal_everything(self) -> None:
        """End-of-run cleanup: heal the network and reboot crashed nodes.

        Active fail-slow faults are left to their transient timers (they
        always expire); partitions, loss and crashes are undone now so
        the cluster can converge for the safety checks.
        """
        self.cluster.network.heal()
        self.cluster.network.clear_loss()
        for node_id in list(self.group):
            if self.cluster.node(node_id).crashed:
                self._do_restart(node_id)
        self._down.clear()
        self.log.append((self.cluster.kernel.now, "heal-all", ""))
