"""The Table 1 fault catalog.

Each entry maps a paper fault to the resource knob that reproduces its
mechanism:

=====================  ==========================================  ==========================
Fail-slow type         Paper's injection                           Model knob
=====================  ==========================================  ==========================
CPU (slow)             cgroup: process limited to 5% CPU           ``cpu.quota = 0.05``
CPU (contention)       contender with 16× higher CPU share         ``cpu.contender_share = 16``
Disk (slow)            cgroup blkio bandwidth limit                ``disk.cap_fraction``
Disk (contention)      contending heavy writer on shared disk      ``disk.contender_load``
Memory (contention)    cgroup cap on user memory                   ``memory.limit_bytes``
Network (slow)         ``tc`` adds 400 ms to the interface          ``nic.extra_delay_ms = 400``
=====================  ==========================================  ==========================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List


class FaultType(enum.Enum):
    NONE = "none"
    CPU_SLOW = "cpu_slow"
    CPU_CONTENTION = "cpu_contention"
    DISK_SLOW = "disk_slow"
    DISK_CONTENTION = "disk_contention"
    MEMORY_CONTENTION = "memory_contention"
    NETWORK_SLOW = "network_slow"
    # Software fail-slow (beyond Table 1): §1 notes fail-slow faults "can
    # also be introduced in software components due to bugs and
    # misconfigurations" — e.g. verbose debug logging left enabled, which
    # multiplies per-message processing cost.
    DEBUG_LOGGING = "debug_logging"


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault: a type plus its magnitude parameters."""

    fault_type: FaultType
    description: str = ""
    params: Dict[str, float] = field(default_factory=dict)

    def param(self, key: str) -> float:
        try:
            return self.params[key]
        except KeyError:
            raise KeyError(
                f"fault {self.fault_type.value!r} missing parameter {key!r}"
            ) from None


TABLE1: Dict[str, FaultSpec] = {
    "none": FaultSpec(
        FaultType.NONE,
        description="No slowness (the normalization baseline)",
    ),
    "cpu_slow": FaultSpec(
        FaultType.CPU_SLOW,
        description="cgroup limits the RSM process to 5% CPU",
        params={"quota": 0.05},
    ),
    "cpu_contention": FaultSpec(
        FaultType.CPU_CONTENTION,
        description="contending program with 16x higher CPU share",
        params={"contender_share": 16.0},
    ),
    "disk_slow": FaultSpec(
        FaultType.DISK_SLOW,
        description="cgroup limits disk I/O bandwidth for the RSM process",
        params={"cap_fraction": 0.03},
    ),
    "disk_contention": FaultSpec(
        FaultType.DISK_CONTENTION,
        description="contending program writes heavily on the shared disk",
        params={"contender_load": 0.96},
    ),
    "memory_contention": FaultSpec(
        FaultType.MEMORY_CONTENTION,
        description="cgroup caps the user memory of the RSM process",
        params={"limit_fraction": 0.51},
    ),
    "network_slow": FaultSpec(
        FaultType.NETWORK_SLOW,
        description="tc adds 400 ms delay to the network interface",
        params={"delay_ms": 400.0},
    ),
}

# Software fail-slow faults (extension beyond Table 1's hardware set).
SOFTWARE_FAULTS: Dict[str, FaultSpec] = {
    "debug_logging": FaultSpec(
        FaultType.DEBUG_LOGGING,
        description="misconfiguration: verbose debug logging multiplies "
        "per-message processing cost",
        params={"parse_cost_multiplier": 12.0},
    ),
}


def fault_names(include_baseline: bool = False) -> List[str]:
    """The injectable fault names, in Table 1 order."""
    names = [
        "cpu_slow",
        "cpu_contention",
        "disk_slow",
        "disk_contention",
        "memory_contention",
        "network_slow",
    ]
    if include_baseline:
        return ["none"] + names
    return names
