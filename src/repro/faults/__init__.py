"""Fail-slow fault injection (§2.1, Table 1).

The :data:`~repro.faults.catalog.TABLE1` catalog defines the six fault
types the paper injects with cgroups/``tc``; :class:`FaultInjector` applies
them to a simulated node's resources, supports transient (timed) faults,
and :class:`BackgroundJitter` reproduces the cloud's ambient transient
slowness that the paper identifies as the amplifier of tail latency when a
follower is already fail-slow.
"""

from repro.faults.catalog import TABLE1, FaultSpec, FaultType, fault_names
from repro.faults.chaos import Nemesis
from repro.faults.injector import FaultInjector
from repro.faults.jitter import BackgroundJitter

__all__ = [
    "BackgroundJitter",
    "FaultInjector",
    "Nemesis",
    "FaultSpec",
    "FaultType",
    "TABLE1",
    "fault_names",
]
