"""HedgedRaft: hedged AppendEntries fan-out + speculative leader reads.

Two insertions of the racing bet into DepFastRaft, both safety-neutral:

* **Hedged replication.** Every batcher AppendEntries send is tagged with
  a hedge group; if the follower has not acked by that link's latency
  percentile, the leader races a duplicate copy on the same stream. The
  duplicate is *not* added to the commit quorum — original and copy come
  from the same replica, and counting both would let one follower's two
  acks masquerade as a majority. Instead the copy rides the normal
  ``_on_append_reply`` path, advancing ``match_index`` sooner (or not at
  all: on a FIFO connection behind a sustained-slow NIC the copy queues
  behind the original, which is precisely the re-coupling the benchmark
  matrix measures). The follower's endpoint deduplicates the group, so
  the WAL/CPU cost of the append is paid at most once per copy delivered.

* **Speculative reads.** The base read_index path serializes probe
  round-trip, then apply-wait. The hedged variant starts a *hedged*
  leadership probe (preferred = currently-fastest voter, hedge to the
  rest) and speculatively reads the value as soon as the state machine
  reaches the read point — concurrently with the in-flight probe. The
  reply is released only after the probe confirms leadership at the
  speculation term; otherwise the speculated value is rolled back
  (discarded, client redirected). Linearizability is unchanged: the read
  index is captured before the probe, and probe success proves no other
  leader could have committed past it in the interim.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.node import Node, NodeSpec
from repro.events.basic import RpcEvent
from repro.hedging.estimator import HedgeDelayEstimator
from repro.hedging.hedge import HedgedCall, HedgePolicy
from repro.raft.config import RaftConfig
from repro.raft.node import RaftNode
from repro.raft.service import depfast_node_spec
from repro.raft.types import LogEntry, Role
from repro.storage.durable import DurableRaftState
from repro.storage.kvstore import KvStore


class HedgedRaftNode(RaftNode):
    """A RaftNode that races duplicates where the base class waits."""

    def __init__(
        self,
        node: Node,
        group: List[str],
        config: Optional[RaftConfig] = None,
        rng: Optional[random.Random] = None,
        state_machine: Optional[KvStore] = None,
        durable: Optional[DurableRaftState] = None,
        state_machine_factory=None,
        hedge_policy: Optional[HedgePolicy] = None,
        estimator: Optional[HedgeDelayEstimator] = None,
    ):
        super().__init__(
            node,
            group,
            config=config,
            rng=rng,
            state_machine=state_machine,
            durable=durable,
            state_machine_factory=state_machine_factory,
        )
        self.hedge_policy = hedge_policy or HedgePolicy()
        self.estimator = estimator
        self._hedge_seq = 0
        # Counters for tests/benchmarks: duplicate-work amplification is
        # (append_primaries + append_hedges) / append_primaries.
        self.append_primaries = 0
        self.append_hedges = 0
        self.hedges_by_peer: Dict[str, int] = {}
        self.probe_hedges = 0
        self.speculative_reads = 0
        self.speculation_rollbacks = 0

    # ==================================================================
    # Hedged AppendEntries fan-out
    # ==================================================================
    def _hedge_delay_ms(self, peer: str) -> float:
        if self.estimator is None:
            return self.hedge_policy.default_delay_ms
        return self.estimator.delay_ms(self.id, peer)

    def _send_batch_append(
        self, peer: str, prev_index: int, entries: List[LogEntry], term: int
    ) -> RpcEvent:
        if self.hedge_policy.max_hedges < 1 or not entries:
            return self._send_append(peer, prev_index, entries, term)
        self._hedge_seq += 1
        group = (self.id, "append", peer, self._hedge_seq)
        rpc = self._send_append(peer, prev_index, entries, term, hedge_group=group)
        self.append_primaries += 1
        if not rpc.ready():  # an instant send-buffer failure leaves nothing to race
            self._arm_append_hedge(
                rpc, peer, prev_index, entries, term, group, attempt=1
            )
        return rpc

    def _arm_append_hedge(
        self,
        rpc: RpcEvent,
        peer: str,
        prev_index: int,
        entries: List[LogEntry],
        term: int,
        group: Tuple,
        attempt: int,
    ) -> None:
        self.rt.kernel.schedule(
            self._hedge_delay_ms(peer),
            self._maybe_hedge_append,
            rpc,
            peer,
            prev_index,
            entries,
            term,
            group,
            attempt,
        )

    def _maybe_hedge_append(
        self,
        rpc: RpcEvent,
        peer: str,
        prev_index: int,
        entries: List[LogEntry],
        term: int,
        group: Tuple,
        attempt: int,
    ) -> None:
        if rpc.ready() or not self._leading(term):
            return
        handle = rpc.cancel_send
        if handle is not None and getattr(handle, "called", False):
            # The quorum-discard framework already cancelled this send:
            # the commit went through without this follower, so racing a
            # copy would only re-introduce the work the discard saved.
            return
        last = entries[-1].index
        if self._match_index.get(peer, 0) >= last:
            return  # acked through another path (repair) in the meantime
        if peer in self._repairing:
            return  # the repair coroutine owns this stream now
        self.append_hedges += 1
        self.hedges_by_peer[peer] = self.hedges_by_peer.get(peer, 0) + 1
        hedge = self._send_append(peer, prev_index, entries, term, hedge_group=group)
        if attempt < self.hedge_policy.max_hedges and not hedge.ready():
            self._arm_append_hedge(
                hedge, peer, prev_index, entries, term, group, attempt + 1
            )

    # ==================================================================
    # Speculative linearizable reads
    # ==================================================================
    def _probe_preference_order(self) -> List[str]:
        peers = self.voting_peers()
        if self.estimator is None:
            return peers
        # Probe the currently-fastest voters first; the slow one only
        # sees probes as hedges. Deterministic: estimator state is pure
        # simulation state, ties break on node id.
        return sorted(
            peers, key=lambda peer: (self.estimator.delay_ms(self.id, peer), peer)
        )

    def _start_hedged_probe(self, term: int) -> Optional[HedgedCall]:
        peers = self._probe_preference_order()
        needed = self.majority - 1
        if not peers or needed < 1:
            return None
        self.read_probes += 1
        return HedgedCall(
            self.ep,
            peers,
            "read_probe",
            {"term": term, "leader": self.id},
            size_bytes=32,
            quorum=needed,
            classify=lambda ev: isinstance(ev.reply, dict)
            and ev.reply.get("term") == term,
            policy=self.hedge_policy,
            estimator=self.estimator,
            name=f"{self.id}:read-probe-hedged",
        )

    def _serve_read(self, op):
        cfg = self.config
        # Same own-term-commit guard as the base class (a fresh leader
        # must not serve below an earlier leader's acknowledged tail).
        while self.role == Role.LEADER and not (
            self.commit_index >= self.log.last_index()
            or self.log.term_at(self.commit_index) == self.term
        ):
            yield self.rt.sleep(0.5)
        if self.role != Role.LEADER:
            return {"ok": False, "redirect": self.leader_hint}
        term = self.term
        read_index = self.commit_index
        probe: Optional[HedgedCall] = None
        if not (cfg.read_mode == "lease" and self.rt.now < self._lease_until):
            probe = self._start_hedged_probe(term)
        # Speculation: reach the read point and compute the result while
        # the probe is still in flight (the base class serializes the
        # probe round-trip before the apply wait).
        while self.last_applied < read_index and self.role == Role.LEADER:
            yield self.rt.sleep(0.5)
        if self.role != Role.LEADER:
            return {"ok": False, "redirect": self.leader_hint}
        yield self.rt.compute(cfg.apply_cost_ms, name="read")
        value = self.kv.get(op[1])
        if probe is not None:
            self.speculative_reads += 1
            if not probe.event.ready():
                yield probe.wait(timeout_ms=cfg.vote_rpc_timeout_ms)
            self.probe_hedges += probe.hedges_sent
            if not (probe.event.ready() and self._leading(term)):
                # Rollback-on-term-change: the speculated value is
                # discarded, never released to the client.
                self.speculation_rollbacks += 1
                return {"ok": False, "redirect": self.leader_hint}
        elif not self._leading(term):
            self.speculation_rollbacks += 1
            return {"ok": False, "redirect": self.leader_hint}
        self.reads_served += 1
        return {"ok": True, "result": value}


def deploy_hedged_raft(
    cluster: Cluster,
    group: List[str],
    config: Optional[RaftConfig] = None,
    spec: Optional[NodeSpec] = None,
    state_machine_factory=None,
    policy: Optional[HedgePolicy] = None,
    estimator: Optional[HedgeDelayEstimator] = None,
) -> Dict[str, HedgedRaftNode]:
    """Create and start one HedgedRaft group (mirror of
    :func:`repro.raft.service.deploy_depfast_raft`).

    One shared :class:`HedgeDelayEstimator` is attached to the cluster
    tracer for the whole group — every node's hedge delays draw from the
    same per-link percentile state the fail-slow scorer sees. Pass
    ``config=RaftConfig(discard_on_quorum=False)`` and an unbounded
    ``spec`` to get pure hedged-Raft (racing *instead of* quorum
    discards); defaults give hedged+DepFast (racing *on top of* them).
    """
    if len(group) % 2 == 0:
        raise ValueError(f"group size must be odd, got {len(group)}")
    policy = policy or HedgePolicy()
    if estimator is None:
        estimator = policy.make_estimator().attach(cluster.tracer)
    config = config or RaftConfig(preferred_leader=group[0])
    raft_nodes: Dict[str, HedgedRaftNode] = {}
    for node_id in group:
        node = cluster.add_node(node_id, spec=spec or depfast_node_spec())
        raft_nodes[node_id] = HedgedRaftNode(
            node,
            group,
            config=config,
            rng=cluster.rng.stream(f"raft:{node_id}"),
            state_machine=state_machine_factory() if state_machine_factory else None,
            durable=DurableRaftState(node_id),
            state_machine_factory=state_machine_factory,
            hedge_policy=policy,
            estimator=estimator,
        )
    for raft_node in raft_nodes.values():
        raft_node.start()
    return raft_nodes
