"""``HedgedCall``: race duplicate requests instead of waiting out a straggler.

The racing analog of :class:`repro.net.rpc.QuorumCall`. A quorum call
broadcasts to everyone up front and lets the framework *discard* work the
moment enough replies are in; a hedged call sends to the ``quorum``
preferred targets only, arms a timer at the observed P-th percentile of
those links' latency, and fires duplicate copies to the remaining targets
one at a time if the first wave is late. The race is decided when
``quorum`` acceptable replies arrive; losers are cancelled through the
idempotent ``cancel_send`` path (still buffered) or a server-side abort
(already on the wire).

Both primitives end at the same safety point — the caller proceeds on
``quorum`` acceptable replies — but make opposite bets on the tail:
quorum events pay full fan-out up front and never wait on a straggler;
hedged calls pay minimal fan-out up front and bet the timer fires rarely.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from repro.events.basic import RpcEvent
from repro.events.compound import QuorumEvent
from repro.hedging.estimator import HedgeDelayEstimator
from repro.net.rpc import RpcEndpoint, RpcError, is_hedge_abort_reply

# Caller-unique hedge group keys (monotonic like message ids; only
# equality matters, so the shared counter keeps runs deterministic).
_hedge_groups = itertools.count(1)


@dataclass(frozen=True)
class HedgePolicy:
    """Knobs for when and how aggressively to hedge.

    ``percentile`` is the hedge trigger point: fire a duplicate once the
    primary has been outstanding longer than this fraction of that
    link's observed latency distribution (Dean & Barroso use ~P95, which
    bounds duplicate work at ~5% of requests in the fault-free case).
    ``max_hedges`` caps duplicates per call; ``cancel_losers`` is the
    half of the defense DF007 lints for — without it every race leaks
    the loser's execution and bandwidth.
    """

    percentile: float = 0.95
    max_hedges: int = 1
    warmup_observations: int = 10
    default_delay_ms: float = 25.0
    min_delay_ms: float = 1.0
    max_delay_ms: float = 250.0
    cancel_losers: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.percentile < 1.0:
            raise ValueError(f"percentile must be in (0, 1), got {self.percentile}")
        if self.max_hedges < 0:
            raise ValueError(f"negative max_hedges {self.max_hedges}")
        if self.min_delay_ms < 0 or self.max_delay_ms < self.min_delay_ms:
            raise ValueError(
                f"bad delay clamp [{self.min_delay_ms}, {self.max_delay_ms}]"
            )

    def make_estimator(self) -> HedgeDelayEstimator:
        return HedgeDelayEstimator(
            percentile=self.percentile,
            warmup_observations=self.warmup_observations,
            default_delay_ms=self.default_delay_ms,
            min_delay_ms=self.min_delay_ms,
            max_delay_ms=self.max_delay_ms,
        )


class HedgedCall:
    """Send to the preferred targets, race stragglers, cancel losers.

    ``targets`` is a preference order: the first ``quorum`` entries get
    the request immediately, later entries are hedge candidates in
    order. All copies share one ``hedge_group`` key so the receiving
    endpoints execute the request at most once per server and honor
    abort notifications once the race is decided.

    Wait on ``.event`` (a 1-of-n or k-of-n :class:`QuorumEvent`);
    ``replies()``/``reply`` expose the winning payload(s).
    """

    def __init__(
        self,
        endpoint: RpcEndpoint,
        targets: Sequence[str],
        method: str,
        payload: Any = None,
        size_bytes: int = 0,
        quorum: int = 1,
        classify: Optional[Callable[[RpcEvent], bool]] = None,
        policy: Optional[HedgePolicy] = None,
        estimator: Optional[HedgeDelayEstimator] = None,
        name: str = "",
    ):
        if not targets:
            raise RpcError("hedged call needs at least one target")
        if quorum > len(targets):
            raise RpcError(f"quorum {quorum} > {len(targets)} targets")
        self.endpoint = endpoint
        self.targets = list(targets)
        self.method = method
        self.payload = payload
        self.size_bytes = size_bytes
        self.policy = policy or HedgePolicy()
        self.estimator = estimator
        self.group = (endpoint.node, method, next(_hedge_groups))
        self.calls: List[RpcEvent] = []
        self.hedges_sent = 0
        self.losers_cancelled = 0
        self.winner: Optional[RpcEvent] = None
        self._decided = False
        self._timer = None
        self.event = QuorumEvent(
            quorum,
            n_total=len(self.targets),
            classify=self._wrap_classifier(classify),
            name=name or f"hedge:{method}",
        )
        first_wave = self.targets[:quorum]
        for target in first_wave:
            self._send(target)
        self.event.subscribe(self._on_decided)
        tracer = getattr(endpoint.runtime.scheduler, "tracer", None)
        if tracer is not None:
            # Same §5 trace point QuorumCall feeds: arrival ranks over
            # the racers show the SPG (and the fail-slow scorer) exactly
            # where hedging re-introduces a wait on a slow node.
            self.event.subscribe(
                lambda ev, _t=tracer: _t.report_quorum_event(
                    endpoint.node, ev, endpoint.runtime.now
                )
            )
        self._arm(first_wave)

    # ------------------------------------------------------------------
    # Race machinery
    # ------------------------------------------------------------------
    @staticmethod
    def _wrap_classifier(
        classify: Optional[Callable[[RpcEvent], bool]]
    ) -> Callable[[RpcEvent], bool]:
        def accept(rpc_event: RpcEvent) -> bool:
            if not rpc_event.ok or is_hedge_abort_reply(rpc_event.reply):
                return False
            return classify is None or classify(rpc_event)

        return accept

    def _send(self, target: str) -> RpcEvent:
        rpc_event = self.endpoint.call(
            target,
            self.method,
            self.payload,
            self.size_bytes,
            hedge_group=self.group,
        )
        self.calls.append(rpc_event)
        self.event.add(rpc_event)
        return rpc_event

    def _delay_for(self, just_sent: Sequence[str]) -> float:
        if self.estimator is None:
            return self.policy.default_delay_ms
        # Wait out the *slowest expectation* in the outstanding wave:
        # hedging before the worst of the normal cases is just broadcast.
        return max(
            self.estimator.delay_ms(self.endpoint.node, target)
            for target in just_sent
        )

    def _arm(self, just_sent: Sequence[str]) -> None:
        if self._decided or self.hedges_sent >= self.policy.max_hedges:
            return
        if len(self.calls) >= len(self.targets):
            return  # nobody left to race
        delay_ms = self._delay_for(just_sent)
        kernel = self.endpoint.runtime.kernel
        self._timer = kernel.schedule(delay_ms, self._fire_hedge)

    def _fire_hedge(self) -> None:
        self._timer = None
        if self._decided or self.event.ready():
            return
        target = self.targets[len(self.calls)]
        self.hedges_sent += 1
        rpc_event = self._send(target)
        if not rpc_event.ready():  # instant send-buffer failures don't re-arm
            self._arm([target])

    def _on_decided(self, _event) -> None:
        if self._decided:
            return
        self._decided = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self.event.ok_children:
            self.winner = self.event.ok_children[0]
        if not self.policy.cancel_losers:
            return
        for rpc_event in self.calls:
            if rpc_event.ready():
                continue
            self.losers_cancelled += 1
            if rpc_event.cancel_send is not None and rpc_event.cancel_send():
                continue  # died in our own send buffer; no server copy exists
            # Already on the wire: the server drops the copy before
            # execution and answers with an abort-ack, which both cleans
            # the pending table and feeds the loser's true latency to
            # the estimator.
            self.endpoint.abort_hedge_group(rpc_event.to_node, self.group)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def reply(self) -> Any:
        """Payload of the race winner (None until decided)."""
        return None if self.winner is None else self.winner.reply

    def replies(self) -> List[Any]:
        """Payloads of the acceptably-completed calls so far."""
        return [rpc_event.reply for rpc_event in self.event.ok_children]

    def wait(self, timeout_ms: Optional[float] = None):
        return self.event.wait(timeout_ms)
