"""Hedged & speculative execution: the rival fail-slow defense.

Where DepFast's quorum events *wait out* a straggler (proceed on the
fastest quorum, discard the rest), hedging *races* it: send the primary
request, arm a timer at the observed P-th percentile of that link's
latency, and fire duplicate copies to other replicas if the primary has
not answered in time. First acceptable reply wins; losers are cancelled
client-side (send-buffer discard) and server-side (dedup/abort hook in
:class:`repro.net.rpc.RpcEndpoint`).

The package exists to put both bets side by side on the same faults:

- :mod:`repro.hedging.estimator` — per-link streaming latency
  percentiles (P² quantile), fed from the tracer's RPC trace points.
- :mod:`repro.hedging.hedge` — :class:`HedgedCall`, the racing analog of
  :class:`repro.net.rpc.QuorumCall`, plus :class:`HedgePolicy`.
- :mod:`repro.hedging.raft` — :class:`HedgedRaftNode`: hedged
  AppendEntries fan-out and speculative leader reads with
  rollback-on-term-change.
"""

from repro.hedging.estimator import HedgeDelayEstimator
from repro.hedging.hedge import HedgedCall, HedgePolicy
from repro.hedging.raft import HedgedRaftNode, deploy_hedged_raft

__all__ = [
    "HedgeDelayEstimator",
    "HedgedCall",
    "HedgePolicy",
    "HedgedRaftNode",
    "deploy_hedged_raft",
]
