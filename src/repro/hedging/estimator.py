"""Per-link latency percentile estimation for hedge delay selection.

A hedge timer should fire when the primary request is *unusually* slow
for its link — Dean & Barroso's "tail at scale" recipe sends the hedge
after the ~95th percentile of observed latency, bounding duplicate work
at a few percent of requests. This module keeps one streaming
:class:`repro.sim.metrics.P2Quantile` per ``(caller, peer)`` link, fed
from the same tracer RPC trace points the fail-slow
:class:`~repro.detect.scorer.SlownessScorer` consumes — no extra
instrumentation, no sample buffers.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.sim.metrics import P2Quantile


class HedgeDelayEstimator:
    """Streaming per-link RPC latency percentiles.

    Attach once per cluster via :meth:`attach`; every completed RPC then
    updates the quantile for its ``(caller, peer)`` link. Until a link
    has ``warmup_observations`` samples the estimator returns
    ``default_delay_ms`` — hedging on a cold estimate would either race
    everything (estimate too low) or nothing (too high). Estimates are
    clamped to ``[min_delay_ms, max_delay_ms]``: the floor keeps jitter
    on a healthy link from degenerating into broadcast, the ceiling
    keeps a fail-slow link's inflated percentile from disabling hedging
    exactly when it is needed.
    """

    def __init__(
        self,
        percentile: float = 0.95,
        warmup_observations: int = 10,
        default_delay_ms: float = 25.0,
        min_delay_ms: float = 1.0,
        max_delay_ms: float = 250.0,
    ):
        if not 0.0 < percentile < 1.0:
            raise ValueError(f"percentile must be in (0, 1), got {percentile}")
        if min_delay_ms > max_delay_ms:
            raise ValueError(
                f"min_delay_ms {min_delay_ms} > max_delay_ms {max_delay_ms}"
            )
        self.percentile = percentile
        self.warmup_observations = warmup_observations
        self.default_delay_ms = default_delay_ms
        self.min_delay_ms = min_delay_ms
        self.max_delay_ms = max_delay_ms
        self._links: Dict[Tuple[str, str], P2Quantile] = {}

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def attach(self, tracer) -> "HedgeDelayEstimator":
        """Subscribe to a :class:`~repro.trace.tracepoints.Tracer`."""
        tracer.add_rpc_listener(self.on_rpc_complete)
        return self

    def on_rpc_complete(
        self, node: str, peer: str, method: str, latency_ms: float, now: float
    ) -> None:
        """Tracer RPC listener: fold one completed call into its link."""
        quantile = self._links.get((node, peer))
        if quantile is None:
            quantile = self._links[(node, peer)] = P2Quantile(self.percentile)
        quantile.observe(latency_ms)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def observed(self, node: str, peer: str) -> int:
        """Number of completed RPCs folded into the ``node -> peer`` link."""
        quantile = self._links.get((node, peer))
        return 0 if quantile is None else quantile.count

    def raw_percentile_ms(self, node: str, peer: str) -> float:
        """Unclamped percentile estimate (0.0 when the link is unseen)."""
        quantile = self._links.get((node, peer))
        return 0.0 if quantile is None else quantile.value()

    def delay_ms(self, node: str, peer: str) -> float:
        """The hedge delay for one more call on the ``node -> peer`` link."""
        quantile = self._links.get((node, peer))
        if quantile is None or quantile.count < self.warmup_observations:
            return self.default_delay_ms
        estimate = quantile.value()
        if estimate < self.min_delay_ms:
            return self.min_delay_ms
        if estimate > self.max_delay_ms:
            return self.max_delay_ms
        return estimate
