"""DepFast reproduction: programming support for fail-slow fault tolerance.

Reproduces Yoo, Wang, Sinha, Mu & Xu, *"Fail-slow fault tolerance needs
programming support"* (HotOS '21) as a pure-Python library on a
deterministic discrete-event simulation substrate.

Quick tour of the public API::

    from repro import (
        Cluster,            # a simulated world: kernel, network, nodes
        QuorumEvent,        # the paper's core abstraction
        deploy_depfast_raft,  # stand up a DepFastRaft group
        FaultInjector, TABLE1,  # the paper's fail-slow fault catalog
        ClosedLoopDriver, YcsbWorkload,  # the measurement workload
        build_spg, check_fail_slow_tolerance,  # runtime verification
    )

See ``examples/quickstart.py`` for a runnable walk-through, DESIGN.md for
the system inventory, and EXPERIMENTS.md for paper-vs-measured results.
"""

from repro.baselines import (
    BASELINE_SYSTEMS,
    BaselineConfig,
    MongoLikeRsm,
    RethinkLikeRsm,
    TidbLikeRsm,
    deploy_baseline,
)
from repro.cluster import Cluster, Node, NodeSpec
from repro.detector import DetectorConfig, LeaderSlownessDetector
from repro.events import (
    AndEvent,
    Event,
    OrEvent,
    QuorumEvent,
    RpcEvent,
    SharedIntEvent,
    TimerEvent,
    ValueEvent,
)
from repro.faults import TABLE1, BackgroundJitter, FaultInjector, FaultSpec, FaultType
from repro.paxos import PaxosConfig, PaxosNode, deploy_paxos
from repro.raft import RaftConfig, RaftNode, deploy_depfast_raft, find_leader
from repro.raft.fastpath import FastPathAcceptor, FastPathCoordinator
from repro.runtime import Coroutine, Runtime, Scheduler
from repro.sim import Kernel
from repro.trace import Tracer, build_spg, check_fail_slow_tolerance, render_spg
from repro.workload import ClosedLoopDriver, KvServiceClient, WorkloadReport, YcsbWorkload

__version__ = "0.1.0"

__all__ = [
    "AndEvent",
    "BASELINE_SYSTEMS",
    "BackgroundJitter",
    "BaselineConfig",
    "ClosedLoopDriver",
    "Cluster",
    "Coroutine",
    "DetectorConfig",
    "Event",
    "FastPathAcceptor",
    "FastPathCoordinator",
    "FaultInjector",
    "FaultSpec",
    "FaultType",
    "Kernel",
    "KvServiceClient",
    "LeaderSlownessDetector",
    "MongoLikeRsm",
    "Node",
    "NodeSpec",
    "OrEvent",
    "PaxosConfig",
    "PaxosNode",
    "QuorumEvent",
    "RaftConfig",
    "RaftNode",
    "RethinkLikeRsm",
    "RpcEvent",
    "Runtime",
    "Scheduler",
    "SharedIntEvent",
    "TABLE1",
    "TidbLikeRsm",
    "TimerEvent",
    "Tracer",
    "ValueEvent",
    "WorkloadReport",
    "YcsbWorkload",
    "build_spg",
    "check_fail_slow_tolerance",
    "deploy_baseline",
    "deploy_depfast_raft",
    "deploy_paxos",
    "find_leader",
    "render_spg",
]
