"""Breaker matrix: write-behind circuit breaker on vs off across disk faults.

The mitigation matrix (PR 6) showed why this bench targets *followers*:
a single fail-slow disk on one member of a 3-node DepFast group is fully
hidden by the quorum (2-of-{local fsync, f1, f2} commits without it), so
leader-disk rows recover at 1.0x with zero damage. The scenario where a
sick disk actually hurts — and the common production one — is a **shared
storage backend**: both followers' disks degrade together, every commit
quorum must include at least one slow-disk follower ack, and the
follower's AppendEntries handler fsyncs before replying. Throughput
collapses to the crawling device's drain rate.

Each cell replays one disk fault on both followers, twice: once with the
full attribution + breaker loop attached, once bare. Reported per run:

* **detection latency** — fault onset to the first disk-attribution
  suspicion; **trip latency** — onset to the first breaker trip;
* **throughput-recovery time** — onset to the first sustained window back
  above ``recovery_fraction`` of the healthy baseline (censored at the
  horizon when it never recovers — the expected breaker-off outcome);
* **staleness high-water marks** — max queued bytes and max queue-head
  age across all breaker WALs, which must stay within the configured
  bounds;
* **false trips** — any trip in the fault-free control run (must be 0).

The rows are deliberately harsher than the Table 1 catalog defaults
(which model one cgroup-limited process, not a dying shared backend):
fail-slow studies place faulty-disk throughput at 1% or less of rated.

A separate **crash-during-tripped-breaker chaos run** kills one follower
while its breaker is OPEN, restarts it, and checks the §4 safety story:
the write-behind queue dies with the process (``lost_on_recovery`` > 0),
the group still converges, and the recorded client history stays
linearizable (Wing–Gong).

Everything is seeded-deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.breaker.attribution import AttributionConfig
from repro.breaker.write_behind import (
    BreakerConfig,
    BreakerState,
    CircuitBreakerWal,
    install_breaker_wals,
)
from repro.cluster.cluster import Cluster
from repro.detector.mitigation import MitigationConfig, MitigationController
from repro.faults.catalog import FaultSpec, FaultType
from repro.faults.injector import FaultInjector
from repro.raft.config import RaftConfig
from repro.raft.service import (
    deploy_depfast_raft,
    find_leader,
    restart_raft_node,
    wait_for_leader,
)
from repro.trace.linearize import HistoryRecorder, check_linearizable
from repro.workload.driver import ClosedLoopDriver
from repro.workload.ycsb import YcsbWorkload

CONTROL = "none"

# Shared-backend disk faults: a dying storage backend, not a cgroup cap.
# At 200 MB/s rated, 0.997 contention / 0.003 cap both leave ~0.6 MB/s —
# about 1.5 minutes per write-behind staleness budget of 64 MB.
BACKEND_CONTENTION = FaultSpec(
    FaultType.DISK_CONTENTION,
    description="shared storage backend contention: effective disk ~0.6 MB/s",
    params={"contender_load": 0.997},
)
FSYNC_STALL = FaultSpec(
    FaultType.DISK_SLOW,
    description="fsync stall pulse: bandwidth pinned to ~0.6 MB/s",
    params={"cap_fraction": 0.003},
)

MATRIX_FAULTS = ["disk_contention", "fsync_jitter", "disk_flapping"]
SMOKE_FAULTS = ["disk_contention"]


@dataclass
class BreakerParams:
    """Knobs for one breaker run (defaults sized for a few wall-seconds)."""

    group_size: int = 3
    n_clients: int = 32
    record_count: int = 10_000
    value_size: int = 1_000
    update_fraction: float = 0.8
    warmup_ms: float = 3_000.0
    fault_at_ms: float = 3_000.0
    end_ms: float = 20_000.0
    sample_window_ms: float = 500.0
    recovery_fraction: float = 0.6
    sustain_windows: int = 2
    request_timeout_ms: float = 400.0
    # fsync_jitter row: short stall pulses — every sample window contains
    # one, so a jittery disk cannot look healthy between stalls.
    jitter_on_ms: float = 400.0
    jitter_off_ms: float = 200.0
    # disk_flapping row: long slow/healthy phases (the breaker must trip
    # each slow phase and release in the healthy gaps).
    flap_on_ms: float = 4_000.0
    flap_off_ms: float = 3_000.0
    flap_cycles: int = 2
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    # Trip on the first suspicious window instead of the library-default
    # two: recovery time is dominated by the pre-trip backlog the leader
    # streams into the followers' disk queues (inflow x trip latency /
    # sick drain rate), so every saved window is worth seconds. The
    # fault-free control row asserts this costs no false trips.
    mitigation: MitigationConfig = field(
        default_factory=lambda: MitigationConfig(
            attribution=AttributionConfig(suspect_windows=1)
        )
    )

    def config(self, group: Sequence[str]) -> RaftConfig:
        return RaftConfig(
            preferred_leader=group[0],
            client_commit_timeout_ms=1_000.0,
            snapshot_threshold_entries=400,
            compaction_keep_entries=128,
        )

    def follower_ids(self, group: Sequence[str]) -> List[str]:
        # The shared-backend story: every follower's disk degrades; the
        # (preferred) leader's own device stays healthy as the baseline.
        return list(group[1:])


@dataclass
class BreakerRunResult:
    fault: str
    breaker_on: bool
    seed: int
    healthy_ops_s: float
    faulted_ops_s: float           # mean over the 4 windows after onset
    detection_ms: Optional[float]  # None = disks never suspected
    trip_ms: Optional[float]       # None = breaker never tripped
    recovery_ms: float             # censored at horizon when not recovered
    recovered: bool
    horizon_ms: float
    trips: int
    releases: int
    demotions: int
    absorbed_syncs: int
    passthrough_syncs: int
    queued_bytes_hwm: int
    lag_ms_hwm: float
    max_queued_bytes: int
    max_lag_ms: float
    false_trips: int               # control row only

    @property
    def censored(self) -> bool:
        return not self.recovered

    @property
    def staleness_ok(self) -> bool:
        return (
            self.queued_bytes_hwm <= self.max_queued_bytes
            and self.lag_ms_hwm <= self.max_lag_ms
        )


def _schedule_fault(
    injector: FaultInjector, params: BreakerParams, fault: str, followers: List[str]
) -> None:
    start = params.fault_at_ms
    horizon = params.end_ms
    if fault == "disk_contention":
        for node_id in followers:
            injector.inject_transient(node_id, BACKEND_CONTENTION, start, horizon - start)
    elif fault == "fsync_jitter":
        period = params.jitter_on_ms + params.jitter_off_ms
        t = start
        while t < horizon:
            for node_id in followers:
                injector.inject_transient(node_id, FSYNC_STALL, t, params.jitter_on_ms)
            t += period
    elif fault == "disk_flapping":
        period = params.flap_on_ms + params.flap_off_ms
        for cycle in range(params.flap_cycles):
            t = start + cycle * period
            for node_id in followers:
                injector.inject_transient(
                    node_id, BACKEND_CONTENTION, t, params.flap_on_ms
                )
    elif fault != CONTROL:
        raise KeyError(f"unknown breaker fault {fault!r}; known: {MATRIX_FAULTS}")


def _breaker_wals(cluster: Cluster, group: Sequence[str]) -> List[CircuitBreakerWal]:
    wals = []
    for node_id in group:
        wal = cluster.node(node_id).wal
        if isinstance(wal, CircuitBreakerWal):
            wals.append(wal)
    return wals


def run_breaker_once(
    fault: str,
    breaker_on: bool,
    seed: int = 7,
    params: Optional[BreakerParams] = None,
) -> BreakerRunResult:
    """One seeded fault-vs-breaker run; deterministic end to end."""
    params = params or BreakerParams()
    cluster = Cluster(seed=seed)
    group = [f"s{i + 1}" for i in range(params.group_size)]
    raft = deploy_depfast_raft(cluster, group, config=params.config(group))
    controller: Optional[MitigationController] = None
    if breaker_on:
        install_breaker_wals(cluster, group, config=params.breaker)
        controller = MitigationController(
            cluster, raft, detectors=[], config=params.mitigation
        )
        controller.start()
    workload = YcsbWorkload(
        cluster.rng.stream("workload"),
        record_count=params.record_count,
        value_size=params.value_size,
        update_fraction=params.update_fraction,
        distribution="uniform",
    )
    driver = ClosedLoopDriver(
        cluster,
        group,
        workload,
        n_clients=params.n_clients,
        think_time_ms=2.0,
        request_timeout_ms=params.request_timeout_ms,
        sessions=True,
    )
    wait_for_leader(cluster, raft)

    injector = FaultInjector(cluster)
    followers = params.follower_ids(group)
    _schedule_fault(injector, params, fault, followers)

    driver.start()
    window = params.sample_window_ms
    samples: List[Tuple[float, float]] = []
    t = 0.0
    while t < params.end_ms:
        t_next = min(t + window, params.end_ms)
        cluster.run(t_next)
        samples.append((t_next, driver.report(t, t_next).throughput_ops_s))
        t = t_next
    driver.stop()

    fault_at = params.fault_at_ms
    horizon = params.end_ms - fault_at
    baseline_windows = [ops for end, ops in samples if 1_000.0 < end <= fault_at]
    healthy = sum(baseline_windows) / len(baseline_windows) if baseline_windows else 0.0
    after = [ops for end, ops in samples if end > fault_at]
    faulted = sum(after[:4]) / len(after[:4]) if after else 0.0

    recovery_ms = horizon
    recovered = False
    if fault != CONTROL and healthy > 0:
        threshold = params.recovery_fraction * healthy
        tail = [(end, ops) for end, ops in samples if end > fault_at]
        need = max(1, params.sustain_windows)
        for i in range(len(tail) - need + 1):
            if all(ops >= threshold for _, ops in tail[i : i + need]):
                recovery_ms = tail[i][0] - fault_at
                recovered = True
                break
    if fault == CONTROL:
        recovery_ms = 0.0
        recovered = True

    detection_ms: Optional[float] = None
    trip_ms: Optional[float] = None
    trips = releases = demotions = 0
    false_trips = 0
    if controller is not None:
        if controller.disks is not None:
            first = controller.disks.first_suspected_at()
            if first is not None and first >= fault_at:
                detection_ms = first - fault_at
        first_trip = controller.first_action_at(("breaker_trip",))
        if first_trip is not None and first_trip >= fault_at:
            trip_ms = first_trip - fault_at
        trips = controller.breaker_trips
        releases = controller.breaker_releases
        demotions = controller.demotions
        if fault == CONTROL:
            false_trips = controller.breaker_trips

    absorbed = passthrough = 0
    queued_hwm = 0
    lag_hwm = 0.0
    for wal in _breaker_wals(cluster, group):
        absorbed += wal.absorbed_syncs
        passthrough += wal.passthrough_syncs
        queued_hwm = max(queued_hwm, wal.queued_bytes_hwm)
        lag_hwm = max(lag_hwm, wal.lag_ms_hwm)

    return BreakerRunResult(
        fault=fault,
        breaker_on=breaker_on,
        seed=seed,
        healthy_ops_s=healthy,
        faulted_ops_s=faulted,
        detection_ms=detection_ms,
        trip_ms=trip_ms,
        recovery_ms=recovery_ms,
        recovered=recovered,
        horizon_ms=horizon,
        trips=trips,
        releases=releases,
        demotions=demotions,
        absorbed_syncs=absorbed,
        passthrough_syncs=passthrough,
        queued_bytes_hwm=queued_hwm,
        lag_ms_hwm=lag_hwm,
        max_queued_bytes=params.breaker.max_queued_bytes,
        max_lag_ms=params.breaker.max_lag_ms,
        false_trips=false_trips,
    )


# ----------------------------------------------------------------------
# Crash-during-tripped-breaker chaos
# ----------------------------------------------------------------------
@dataclass
class BreakerChaosResult:
    seed: int
    linearizable: bool
    converged: bool
    double_applies: int
    breaker_open_at_crash: bool
    queued_bytes_at_crash: int
    lost_on_recovery: int
    trips: int
    completed_ops: int
    client_errors: int
    checked_ops: int
    indeterminate_ops: int
    digest: str

    @property
    def ok(self) -> bool:
        return self.linearizable and self.converged and self.double_applies == 0


def run_breaker_chaos(
    seed: int = 7, params: Optional[BreakerParams] = None
) -> BreakerChaosResult:
    """Crash one follower while its breaker is OPEN; check safety.

    Timeline: backend contention hits both followers at ``fault_at``;
    once tripped, the crashed follower's write-behind queue dies with the
    process. It restarts two seconds later, recovers only what was
    actually fsynced, and the group must converge (and the client history
    stay linearizable) after the fault clears.
    """
    params = params or BreakerParams()
    cluster = Cluster(seed=seed)
    group = [f"s{i + 1}" for i in range(params.group_size)]
    config = params.config(group)
    # Chaos-style election timing so failover, not timeout constants,
    # dominates the crash window.
    config.heartbeat_interval_ms = 50.0
    config.election_timeout_min_ms = 300.0
    config.election_timeout_max_ms = 600.0
    raft = deploy_depfast_raft(cluster, group, config=config)
    install_breaker_wals(cluster, group, config=params.breaker)
    controller = MitigationController(cluster, raft, detectors=[], config=params.mitigation)
    controller.start()
    history = HistoryRecorder()
    workload = YcsbWorkload(
        cluster.rng.stream("workload"),
        record_count=64,
        value_size=params.value_size,
        update_fraction=0.6,
        distribution="uniform",
    )
    driver = ClosedLoopDriver(
        cluster,
        group,
        workload,
        n_clients=8,
        think_time_ms=2.0,
        request_timeout_ms=params.request_timeout_ms,
        sessions=True,
        backoff_ms=20.0,
        max_attempts=40,
        history=history,
    )
    wait_for_leader(cluster, raft)

    injector = FaultInjector(cluster)
    followers = params.follower_ids(group)
    victim = followers[0]
    fault_at = params.fault_at_ms
    # Heal well before the horizon so convergence happens on a healthy
    # backend; crash 60% of the way through the fault window (the breaker
    # is reliably OPEN by then) and restart while the disk is still sick.
    clear_at = params.end_ms - 4_000.0
    for node_id in followers:
        injector.inject_transient(node_id, BACKEND_CONTENTION, fault_at, clear_at - fault_at)

    crash_state: Dict[str, object] = {}

    def _crash_victim() -> None:
        wal = cluster.node(victim).wal
        crash_state["open"] = (
            isinstance(wal, CircuitBreakerWal) and wal.state == BreakerState.OPEN
        )
        crash_state["queued"] = getattr(wal, "queued_bytes", 0)
        cluster.node(victim).crash("chaos: crash while breaker tripped")

    crash_at = fault_at + 0.6 * (clear_at - fault_at)
    cluster.kernel.schedule_at(crash_at, _crash_victim)
    cluster.kernel.schedule_at(
        crash_at + 2_000.0, lambda: restart_raft_node(cluster, raft, victim)
    )

    driver.start()
    cluster.run(params.end_ms)
    driver.stop()

    converged = False
    deadline = params.end_ms + 10_000.0
    while cluster.kernel.now < deadline:
        cluster.run(min(deadline, cluster.kernel.now + 250.0))
        if cluster.crashed_nodes():
            continue
        applied = {raft[node_id].last_applied for node_id in group}
        commits = {raft[node_id].commit_index for node_id in group}
        digests = {raft[node_id].kv.stable_digest() for node_id in group}
        if len(applied) == 1 and len(commits) == 1 and len(digests) == 1:
            converged = True
            break

    verdict = check_linearizable(history)
    return BreakerChaosResult(
        seed=seed,
        linearizable=verdict.ok,
        converged=converged,
        double_applies=sum(raft[node_id].kv.double_applies for node_id in group),
        breaker_open_at_crash=bool(crash_state.get("open", False)),
        queued_bytes_at_crash=int(crash_state.get("queued", 0)),
        lost_on_recovery=raft[victim].durable.lost_on_recovery,
        trips=controller.breaker_trips,
        completed_ops=driver.completed,
        client_errors=driver.errors,
        checked_ops=verdict.checked_ops,
        indeterminate_ops=verdict.indeterminate_ops,
        digest=raft[group[0]].kv.stable_digest(),
    )


# ----------------------------------------------------------------------
# The matrix
# ----------------------------------------------------------------------
@dataclass
class BreakerMatrixResult:
    pairs: List[Tuple[BreakerRunResult, BreakerRunResult]]  # (on, off)
    control: BreakerRunResult
    chaos: Optional[BreakerChaosResult]

    def speedup(self, fault: str) -> float:
        for on, off in self.pairs:
            if on.fault == fault:
                if on.recovery_ms <= 0:
                    return float("inf")
                return off.recovery_ms / on.recovery_ms
        raise KeyError(fault)

    @property
    def faults_at_2x(self) -> List[str]:
        return [on.fault for on, _ in self.pairs if self.speedup(on.fault) >= 2.0]

    @property
    def staleness_ok(self) -> bool:
        return all(on.staleness_ok for on, _ in self.pairs) and self.control.staleness_ok

    @property
    def ok(self) -> bool:
        return (
            len(self.faults_at_2x) == len(self.pairs)
            and self.control.false_trips == 0
            and self.staleness_ok
            and (self.chaos is None or self.chaos.ok)
        )


def run_breaker_matrix(
    faults: Optional[Sequence[str]] = None,
    seed: int = 7,
    params: Optional[BreakerParams] = None,
    include_chaos: bool = True,
) -> BreakerMatrixResult:
    """The full campaign: every fault on/off, plus control and chaos."""
    params = params or BreakerParams()
    pairs = []
    for fault in faults if faults is not None else MATRIX_FAULTS:
        on = run_breaker_once(fault, True, seed=seed, params=params)
        off = run_breaker_once(fault, False, seed=seed, params=params)
        pairs.append((on, off))
    control = run_breaker_once(CONTROL, True, seed=seed, params=params)
    chaos = run_breaker_chaos(seed=seed, params=params) if include_chaos else None
    return BreakerMatrixResult(pairs=pairs, control=control, chaos=chaos)


def _fmt_ms(value: Optional[float]) -> str:
    return f"{value:7.0f}ms" if value is not None else "      --"


def render_breaker_run(run: BreakerRunResult) -> str:
    loop = "on " if run.breaker_on else "off"
    recov = f"{run.recovery_ms:7.0f}ms" + (" (censored)" if run.censored else "")
    staleness = ""
    if run.breaker_on and (run.trips or run.absorbed_syncs):
        staleness = (
            f"  queue hwm {run.queued_bytes_hwm / 1e6:.1f}MB"
            f"/{run.max_queued_bytes / 1e6:.0f}MB"
            f" lag hwm {run.lag_ms_hwm / 1e3:.1f}s/{run.max_lag_ms / 1e3:.0f}s"
        )
    return (
        f"  {run.fault:16s} breaker={loop} detect={_fmt_ms(run.detection_ms)} "
        f"trip={_fmt_ms(run.trip_ms)} recover={recov}  "
        f"tput {run.faulted_ops_s:6.0f}/{run.healthy_ops_s:6.0f} ops/s  "
        f"trips={run.trips} releases={run.releases} demotions={run.demotions}"
        f"{staleness}"
    )


def render_breaker_chaos(run: BreakerChaosResult) -> str:
    flags = [
        "linearizable" if run.linearizable else "NOT-LINEARIZABLE",
        "converged" if run.converged else "NOT-CONVERGED",
        "exactly-once" if run.double_applies == 0 else f"{run.double_applies} DOUBLE-APPLIES",
        "crashed-while-OPEN" if run.breaker_open_at_crash else "crashed-while-closed",
    ]
    return (
        f"  crash-under-trip  {' '.join(flags)}\n"
        f"    queued at crash: {run.queued_bytes_at_crash / 1e6:.2f}MB -> "
        f"{run.lost_on_recovery} entries lost on recovery; trips={run.trips}, "
        f"{run.completed_ops} ops ({run.checked_ops} checked, "
        f"{run.indeterminate_ops} indeterminate, {run.client_errors} gave up)  "
        f"digest={run.digest}"
    )


def render_breaker_matrix(result: BreakerMatrixResult) -> str:
    lines = ["breaker matrix (both-follower disk faults, write-behind on vs off):"]
    for on, off in result.pairs:
        lines.append(render_breaker_run(on))
        lines.append(render_breaker_run(off))
        speedup = result.speedup(on.fault)
        shown = "inf" if speedup == float("inf") else f"{speedup:.1f}x"
        bound = "within bounds" if on.staleness_ok else "STALENESS BOUND EXCEEDED"
        lines.append(f"    -> recovery speedup {shown}; staleness {bound}")
    lines.append(render_breaker_run(result.control))
    lines.append(f"    -> false trips on fault-free control: {result.control.false_trips}")
    if result.chaos is not None:
        lines.append(render_breaker_chaos(result.chaos))
    verdict = "MATRIX OK" if result.ok else "MATRIX BELOW TARGET"
    lines.append(
        f"{verdict}: {len(result.faults_at_2x)}/{len(result.pairs)} disk faults "
        f">=2x faster recovery with the breaker on "
        f"({', '.join(result.faults_at_2x) if result.faults_at_2x else 'none'})"
    )
    return "\n".join(lines)


def smoke_params() -> BreakerParams:
    """A scaled-down matrix for CI: shorter horizon, fewer clients."""
    return BreakerParams(
        n_clients=16,
        warmup_ms=2_000.0,
        fault_at_ms=2_000.0,
        end_ms=12_000.0,
        flap_on_ms=3_000.0,
        flap_off_ms=2_000.0,
    )
