"""Figure 2: the slowness propagation graph of a 3-shard deployment.

Deploys DepFastRaft three times (shards {s1–s3}, {s4–s6}, {s7–s9}), drives
each shard from its own client (c1–c3), and builds the SPG from the shared
tracer. The paper's figure shows: green quorum edges (labelled 2/3) inside
each shard, red single-wait edges (1/1) only from clients to leaders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.bench.experiments import ExperimentParams
from repro.cluster.cluster import Cluster
from repro.raft.config import RaftConfig
from repro.raft.service import deploy_depfast_raft
from repro.trace.spg import build_spg, quorum_edges, render_spg, single_wait_edges
from repro.trace.verify import ToleranceReport, check_fail_slow_tolerance
from repro.workload.driver import ClosedLoopDriver
from repro.workload.ycsb import YcsbWorkload

SHARDS: List[List[str]] = [
    ["s1", "s2", "s3"],
    ["s4", "s5", "s6"],
    ["s7", "s8", "s9"],
]


@dataclass
class Figure2Result:
    graph: nx.DiGraph
    tolerance: ToleranceReport
    green_edges: List[Tuple[str, str]]
    red_edges: List[Tuple[str, str]]
    wait_records: int


def run_figure2(
    run_ms: float = 3000.0,
    clients_per_shard: int = 8,
    seed: int = 7,
) -> Figure2Result:
    cluster = Cluster(seed=seed)
    for index, shard in enumerate(SHARDS):
        deploy_depfast_raft(
            cluster, shard, config=RaftConfig(preferred_leader=shard[0])
        )
    for index, shard in enumerate(SHARDS):
        workload = YcsbWorkload(
            cluster.rng.stream(f"ycsb-{index}"), record_count=10_000, value_size=1000
        )
        # One client machine per shard, named c1..c3 like the figure.
        driver = ClosedLoopDriver(
            cluster,
            shard,
            workload,
            n_clients=clients_per_shard,
            client_ids=[f"c{index+1}"],
        )
        driver.start()
    cluster.run(until_ms=run_ms)

    records = cluster.tracer.records
    graph = build_spg(records)
    tolerance = check_fail_slow_tolerance(records, SHARDS)
    return Figure2Result(
        graph=graph,
        tolerance=tolerance,
        green_edges=quorum_edges(graph),
        red_edges=single_wait_edges(graph),
        wait_records=len(records),
    )


def render_figure2(result: Figure2Result) -> str:
    lines = [
        "Figure 2: slowness propagation graph (3-shard DepFastRaft)",
        render_spg(result.graph),
        "",
        result.tolerance.summary(),
    ]
    return "\n".join(lines)


def shape_checks(result: Figure2Result) -> Dict[str, bool]:
    """The figure's qualitative content."""
    leaders = {shard[0] for shard in SHARDS}
    # Every red (single-wait) edge originates at a client; servers never
    # single-wait on each other. Startup retries may touch followers, but
    # each client's *dominant* red edge is its shard leader.
    red_from_clients_only = all(src.startswith("c") for src, _dst in result.red_edges)
    dominant_targets_leaders = True
    for client in ("c1", "c2", "c3"):
        client_edges = [
            (result.graph.edges[(src, dst)]["count"], dst)
            for src, dst in result.red_edges
            if src == client
        ]
        if not client_edges:
            dominant_targets_leaders = False
            continue
        _count, dominant = max(client_edges)
        dominant_targets_leaders &= dominant in leaders
    intra_shard_green = any(
        result.graph.edges[edge]["label"] == "2/3" for edge in result.green_edges
    )
    return {
        "no_intra_quorum_single_waits": result.tolerance.tolerant,
        "red_edges_only_from_clients": red_from_clients_only,
        "clients_wait_dominantly_on_leaders": dominant_targets_leaders,
        "green_quorum_edges_labelled_2_of_3": intra_shard_green,
        "all_shards_present": all(
            result.graph.has_node(node) for shard in SHARDS for node in shard
        ),
    }
