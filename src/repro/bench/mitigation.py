"""Mitigation matrix: detector-on vs detector-off across Table 1 faults.

Each cell of the matrix replays one Table 1 fail-slow fault against the
group's leader under a closed-loop workload, twice: once with the
detection/mitigation loop attached (follower-side leader detectors +
the :class:`~repro.detector.mitigation.MitigationController`) and once
bare. Per run we report

* **detection latency** — fault onset to the first suspicion (detector
  verdict or scorer hysteresis edge);
* **mitigation time** — fault onset to the first effective action
  (leadership moved off the faulted node, or a controller demotion);
* **throughput-recovery time** — fault onset to the first sustained
  window back above ``recovery_fraction`` of the healthy baseline,
  censored at the horizon when the run never recovers (the expected
  detector-off outcome: a fail-slow leader stays leader);
* **false-positive demotions** — any demotion or suspicion in the
  fault-free control run (must be zero).

A *flapping* row drives the leader slow/healthy/slow via
:meth:`~repro.faults.chaos.Nemesis.schedule_flapping` and additionally
reports how many distinct suspicions were raised — a one-shot detector
scores 1 and sleeps through later pulses.

Everything is seeded-deterministic: one (seed, fault, detector_on)
triple always produces the same numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.detector.leader_detector import DetectorConfig
from repro.detector.mitigation import MitigationConfig, deploy_mitigation
from repro.faults.chaos import Nemesis
from repro.faults.injector import FaultInjector
from repro.raft.config import RaftConfig
from repro.raft.service import deploy_depfast_raft, find_leader, wait_for_leader
from repro.workload.driver import ClosedLoopDriver
from repro.workload.ycsb import YcsbWorkload

# The sentinel fault names for the two special matrix rows.
CONTROL = "none"
FLAPPING = "flapping"

# Default Table 1 rows for the matrix (all injected on the leader, where
# fail-slow hurts most and detector-off has no escape hatch).
MATRIX_FAULTS = [
    "cpu_slow",
    "cpu_contention",
    "disk_slow",
    "disk_contention",
    "memory_contention",
    "network_slow",
]


@dataclass
class MitigationParams:
    """Knobs for one mitigation run (defaults sized for a few wall-seconds)."""

    group_size: int = 3
    # Enough closed-loop pressure that a fail-slow leader visibly backs
    # up (its pending queue must clear the detector's threshold).
    n_clients: int = 32
    record_count: int = 10_000
    value_size: int = 1_000
    update_fraction: float = 0.8
    warmup_ms: float = 3_000.0
    fault_at_ms: float = 3_000.0
    end_ms: float = 20_000.0
    # Leader faults run to the horizon: the point of the matrix is what
    # happens while the fault *persists*, not after it expires.
    fault_duration_ms: Optional[float] = None
    sample_window_ms: float = 500.0
    # Recovery = sustained throughput above this fraction of the healthy
    # (pre-fault) per-window mean.
    recovery_fraction: float = 0.6
    sustain_windows: int = 2
    # Flapping row: on/off pulse lengths and pulse count.
    flap_on_ms: float = 4_000.0
    flap_off_ms: float = 3_000.0
    flap_cycles: int = 2
    request_timeout_ms: float = 400.0
    # Slightly more sensitive crawl threshold than the detector default:
    # memory contention degrades commits to ~1/3 of healthy, right at
    # the stock 0.3 boundary. Healthy rate tracks the learned best rate
    # closely, so 0.4 stays far from false-positive territory (the
    # control row asserts that).
    detector: DetectorConfig = field(
        default_factory=lambda: DetectorConfig(commit_rate_fraction=0.4)
    )
    mitigation: MitigationConfig = field(default_factory=MitigationConfig)

    def config(self, group: Sequence[str]) -> RaftConfig:
        # Default protocol timing on purpose: tight chaos-style election
        # timeouts would let vanilla Raft "detect" a network-slow leader
        # by accident (delayed heartbeats blow a 600ms timeout), hiding
        # exactly the blind spot the detector loop is for.
        return RaftConfig(
            preferred_leader=group[0],
            client_commit_timeout_ms=1_000.0,
            # Keep the log compacted: these runs commit tens of
            # thousands of entries and WAL bookkeeping is O(retained).
            snapshot_threshold_entries=400,
            compaction_keep_entries=128,
        )


@dataclass
class MitigationRunResult:
    fault: str
    detector_on: bool
    seed: int
    healthy_ops_s: float
    faulted_ops_s: float          # mean over the 4 windows after onset
    detection_ms: Optional[float]  # None = never detected
    mitigation_ms: Optional[float]  # None = leadership never moved / no action
    recovery_ms: float             # censored at horizon_ms when not recovered
    recovered: bool
    horizon_ms: float
    suspicions: int
    transfers: int
    demotions: int
    promotions: int
    false_positive_demotions: int
    leader_timeline: List[Tuple[float, Optional[str]]] = field(default_factory=list)

    @property
    def censored(self) -> bool:
        return not self.recovered


def run_mitigation_once(
    fault: str,
    detector_on: bool,
    seed: int = 7,
    params: Optional[MitigationParams] = None,
) -> MitigationRunResult:
    """One seeded fault-vs-loop run; deterministic end to end.

    ``fault`` is a Table 1 name, ``"none"`` for the fault-free control,
    or ``"flapping"`` for the pulsed-leader-slowness row.
    """
    params = params or MitigationParams()
    cluster = Cluster(seed=seed)
    group = [f"s{i + 1}" for i in range(params.group_size)]
    raft = deploy_depfast_raft(cluster, group, config=params.config(group))
    workload = YcsbWorkload(
        cluster.rng.stream("workload"),
        record_count=params.record_count,
        value_size=params.value_size,
        update_fraction=params.update_fraction,
        distribution="uniform",
    )
    driver = ClosedLoopDriver(
        cluster,
        group,
        workload,
        n_clients=params.n_clients,
        think_time_ms=2.0,
        request_timeout_ms=params.request_timeout_ms,
        sessions=True,
    )
    wait_for_leader(cluster, raft)

    controller = None
    if detector_on:
        _detectors, controller = deploy_mitigation(
            cluster,
            raft,
            detector_config=params.detector,
            config=params.mitigation,
        )

    injector = FaultInjector(cluster)
    fault_node = group[0]  # the preferred leader
    if fault == FLAPPING:
        nemesis = Nemesis(cluster, raft, injector=injector)
        nemesis.schedule_flapping(
            "__leader__",
            "cpu_slow",
            params.fault_at_ms,
            params.flap_on_ms,
            params.flap_off_ms,
            params.flap_cycles,
        )
    elif fault != CONTROL:
        duration = params.fault_duration_ms
        if duration is None:
            duration = params.end_ms - params.fault_at_ms
        injector.inject_transient(fault_node, fault, params.fault_at_ms, duration)

    driver.start()

    # Advance in sampling windows, recording per-window throughput and
    # the leader identity at each window edge.
    window = params.sample_window_ms
    samples: List[Tuple[float, float, Optional[str]]] = []  # (end, ops_s, leader)
    t = 0.0
    while t < params.end_ms:
        t_next = min(t + window, params.end_ms)
        cluster.run(t_next)
        leader = find_leader(raft)
        samples.append(
            (
                t_next,
                driver.report(t, t_next).throughput_ops_s,
                leader.id if leader is not None else None,
            )
        )
        t = t_next
    driver.stop()

    fault_at = params.fault_at_ms
    horizon = params.end_ms - fault_at
    # Healthy baseline: windows fully inside (1000ms, fault onset] — the
    # first second is startup/election noise.
    baseline_windows = [ops for end, ops, _ in samples if 1_000.0 < end <= fault_at]
    healthy = (
        sum(baseline_windows) / len(baseline_windows) if baseline_windows else 0.0
    )
    after = [ops for end, ops, _ in samples if end > fault_at]
    faulted = sum(after[:4]) / len(after[:4]) if after else 0.0

    # Recovery: first window-end past onset opening a run of
    # ``sustain_windows`` consecutive windows at/above the threshold.
    recovery_ms = horizon
    recovered = False
    if fault != CONTROL and healthy > 0:
        threshold = params.recovery_fraction * healthy
        tail = [(end, ops) for end, ops, _ in samples if end > fault_at]
        need = max(1, params.sustain_windows)
        for i in range(len(tail) - need + 1):
            if all(ops >= threshold for _, ops in tail[i : i + need]):
                recovery_ms = tail[i][0] - fault_at
                recovered = True
                break

    # Mitigation: when did leadership actually move off the faulted node
    # (or, failing that, when did the controller first act)?
    mitigation_ms: Optional[float] = None
    for end, _ops, leader in samples:
        if end > fault_at and leader is not None and leader != fault_node:
            mitigation_ms = end - fault_at
            break
    detection_ms: Optional[float] = None
    suspicions = 0
    transfers = demotions = promotions = 0
    false_positives = 0
    if controller is not None:
        first = controller.first_detection_at()
        if first is not None and first >= fault_at:
            detection_ms = first - fault_at
        suspicions = sum(len(d.suspicions) for d in controller.detectors)
        transfers = controller.transfers
        demotions = controller.demotions
        promotions = controller.promotions
        if mitigation_ms is None:
            acted = controller.first_action_at()
            if acted is not None and acted >= fault_at:
                mitigation_ms = acted - fault_at
        if fault == CONTROL:
            false_positives = controller.demotions + suspicions
    if fault == CONTROL:
        recovery_ms = 0.0
        recovered = True

    return MitigationRunResult(
        fault=fault,
        detector_on=detector_on,
        seed=seed,
        healthy_ops_s=healthy,
        faulted_ops_s=faulted,
        detection_ms=detection_ms,
        mitigation_ms=mitigation_ms,
        recovery_ms=recovery_ms,
        recovered=recovered,
        horizon_ms=horizon,
        suspicions=suspicions,
        transfers=transfers,
        demotions=demotions,
        promotions=promotions,
        false_positive_demotions=false_positives,
        leader_timeline=[(end, leader) for end, _ops, leader in samples],
    )


@dataclass
class MitigationMatrixResult:
    pairs: List[Tuple[MitigationRunResult, MitigationRunResult]]  # (on, off)
    control: MitigationRunResult
    flapping: Optional[MitigationRunResult]

    def speedup(self, fault: str) -> float:
        """Throughput-recovery speedup of detector-on over detector-off."""
        for on, off in self.pairs:
            if on.fault == fault:
                if on.recovery_ms <= 0:
                    return float("inf")
                return off.recovery_ms / on.recovery_ms
        raise KeyError(fault)

    @property
    def faults_at_2x(self) -> List[str]:
        return [on.fault for on, _ in self.pairs if self.speedup(on.fault) >= 2.0]

    @property
    def target_at_2x(self) -> int:
        # The acceptance bar is >=3 fault types on the full Table 1
        # matrix; a user-narrowed subset scales down to "all requested"
        # so a clean 2/2 run isn't reported as below target.
        return min(3, len(self.pairs))

    @property
    def ok(self) -> bool:
        return (
            len(self.faults_at_2x) >= self.target_at_2x
            and self.control.false_positive_demotions == 0
        )


def run_mitigation_matrix(
    faults: Optional[Sequence[str]] = None,
    seed: int = 7,
    params: Optional[MitigationParams] = None,
    include_flapping: bool = True,
) -> MitigationMatrixResult:
    """The full campaign: every fault on/off, plus control and flapping."""
    params = params or MitigationParams()
    pairs = []
    for fault in faults if faults is not None else MATRIX_FAULTS:
        on = run_mitigation_once(fault, True, seed=seed, params=params)
        off = run_mitigation_once(fault, False, seed=seed, params=params)
        pairs.append((on, off))
    control = run_mitigation_once(CONTROL, True, seed=seed, params=params)
    flapping = (
        run_mitigation_once(FLAPPING, True, seed=seed, params=params)
        if include_flapping
        else None
    )
    return MitigationMatrixResult(pairs=pairs, control=control, flapping=flapping)


def _fmt_ms(value: Optional[float]) -> str:
    return f"{value:7.0f}ms" if value is not None else "      --"


def render_mitigation_run(run: MitigationRunResult) -> str:
    loop = "on " if run.detector_on else "off"
    recov = f"{run.recovery_ms:7.0f}ms" + (" (censored)" if run.censored else "")
    return (
        f"  {run.fault:16s} loop={loop} detect={_fmt_ms(run.detection_ms)} "
        f"mitigate={_fmt_ms(run.mitigation_ms)} recover={recov}  "
        f"tput {run.faulted_ops_s:6.0f}/{run.healthy_ops_s:6.0f} ops/s  "
        f"suspicions={run.suspicions} transfers={run.transfers} "
        f"demotions={run.demotions} promotions={run.promotions}"
    )


def render_mitigation_matrix(result: MitigationMatrixResult) -> str:
    lines = ["mitigation matrix (leader faults, detector on vs off):"]
    for on, off in result.pairs:
        lines.append(render_mitigation_run(on))
        lines.append(render_mitigation_run(off))
        speedup = result.speedup(on.fault)
        shown = "inf" if speedup == float("inf") else f"{speedup:.1f}x"
        lines.append(f"    -> recovery speedup {shown}")
    lines.append(render_mitigation_run(result.control))
    lines.append(
        f"    -> false-positive demotions: {result.control.false_positive_demotions}"
    )
    if result.flapping is not None:
        lines.append(render_mitigation_run(result.flapping))
        lines.append(
            f"    -> re-detections across pulses: {result.flapping.suspicions}"
        )
    verdict = "MATRIX OK" if result.ok else "MATRIX BELOW TARGET"
    lines.append(
        f"{verdict}: {len(result.faults_at_2x)}/{len(result.pairs)} faults "
        f">=2x faster recovery with the loop on (target {result.target_at_2x}; "
        f"{', '.join(result.faults_at_2x) if result.faults_at_2x else 'none'})"
    )
    return "\n".join(lines)


def smoke_params() -> MitigationParams:
    """A scaled-down matrix for CI: shorter horizon, fewer clients."""
    return MitigationParams(
        n_clients=16,
        warmup_ms=2_000.0,
        fault_at_ms=2_000.0,
        end_ms=12_000.0,
        flap_on_ms=3_000.0,
        flap_off_ms=2_000.0,
    )
