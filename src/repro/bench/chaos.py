"""Chaos campaign: nemesis schedules + safety verdicts over many seeds.

One chaos *run* deploys a DepFastRaft group, points session-enabled
closed-loop clients at it, lets a seeded :class:`~repro.faults.chaos.Nemesis`
compose crash–restarts, partitions, message loss and Table 1 fail-slow
transients for a window, heals everything, waits for convergence, and
then renders verdicts:

* **linearizable** — the recorded client history passes the Wing–Gong
  checker (:mod:`repro.trace.linearize`);
* **exactly-once** — no client request id was applied twice by any
  replica's state machine (session dedup held across retries, failover
  and recovery);
* **converged** — after the final heal every replica applied the same
  prefix and their state digests agree;
* **availability** — throughput during the chaos window vs. the healthy
  warm-up, plus errors (an availability *report*, not an assertion: a
  run with the leader crashed is expected to dip).

A *campaign* repeats this across seeds and group sizes; one failing seed
fails the campaign and prints its nemesis log for replay. Everything
downstream of the seed is deterministic, so a verdict is reproducible
with ``python -m repro chaos --seed N``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.faults.chaos import Nemesis
from repro.faults.injector import FaultInjector
from repro.raft.config import RaftConfig
from repro.raft.service import deploy_depfast_raft, wait_for_leader
from repro.trace.linearize import HistoryRecorder, check_linearizable
from repro.workload.driver import ClosedLoopDriver
from repro.workload.ycsb import YcsbWorkload


@dataclass
class ChaosParams:
    """Knobs for one chaos run (defaults sized for a few wall-seconds)."""

    group_size: int = 3
    n_clients: int = 6
    record_count: int = 32  # small keyspace → real read/write races
    value_size: int = 16
    update_fraction: float = 0.6
    read_mode: str = "read_index"
    warmup_ms: float = 1_500.0
    chaos_window_ms: float = 8_000.0
    converge_deadline_ms: float = 10_000.0
    events: int = 10
    request_timeout_ms: float = 400.0
    backoff_ms: float = 20.0
    max_attempts: int = 40
    majority_guard: bool = True
    snapshot_threshold_entries: Optional[int] = 400

    def config(self, group: Sequence[str]) -> RaftConfig:
        # Tighter timing than the measurement experiments: chaos windows
        # are short, and we want failover (not its timeout constants) to
        # dominate the run.
        return RaftConfig(
            preferred_leader=group[0],
            heartbeat_interval_ms=50.0,
            election_timeout_min_ms=300.0,
            election_timeout_max_ms=600.0,
            client_commit_timeout_ms=1_000.0,
            read_mode=self.read_mode,
            snapshot_threshold_entries=self.snapshot_threshold_entries,
            compaction_keep_entries=128,
        )


@dataclass
class ChaosRunResult:
    seed: int
    group_size: int
    linearizable: bool
    converged: bool
    double_applies: int
    duplicates_deduped: int
    checked_ops: int
    indeterminate_ops: int
    completed_ops: int
    client_errors: int
    crashes: int
    restarts: int
    partitions: int
    heals: int
    skipped_events: int
    recoveries: int
    lost_unacked_entries: int
    healthy_throughput_ops_s: float
    chaos_throughput_ops_s: float
    digest: str
    nemesis_log: List = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.linearizable and self.converged and self.double_applies == 0

    @property
    def availability(self) -> float:
        if self.healthy_throughput_ops_s <= 0:
            return 0.0
        return self.chaos_throughput_ops_s / self.healthy_throughput_ops_s


def run_chaos_once(
    seed: int,
    params: Optional[ChaosParams] = None,
    on_cluster: Optional[Callable[[Cluster], None]] = None,
) -> ChaosRunResult:
    """One seeded chaos run; deterministic end to end.

    ``on_cluster`` is called with the freshly-built cluster before any
    node is deployed — the determinism harness uses it to install
    observation probes without perturbing the run.
    """
    params = params or ChaosParams()
    cluster = Cluster(seed=seed)
    if on_cluster is not None:
        on_cluster(cluster)
    group = [f"s{i + 1}" for i in range(params.group_size)]
    raft = deploy_depfast_raft(cluster, group, config=params.config(group))
    history = HistoryRecorder()
    workload = YcsbWorkload(
        cluster.rng.stream("workload"),
        record_count=params.record_count,
        value_size=params.value_size,
        update_fraction=params.update_fraction,
        distribution="uniform",
    )
    driver = ClosedLoopDriver(
        cluster,
        group,
        workload,
        n_clients=params.n_clients,
        think_time_ms=2.0,
        request_timeout_ms=params.request_timeout_ms,
        sessions=True,
        backoff_ms=params.backoff_ms,
        max_attempts=params.max_attempts,
        history=history,
    )
    wait_for_leader(cluster, raft)
    driver.start()
    cluster.run(params.warmup_ms)

    nemesis = Nemesis(
        cluster,
        raft,
        injector=FaultInjector(cluster),
        majority_guard=params.majority_guard,
    )
    chaos_start = params.warmup_ms
    chaos_end = chaos_start + params.chaos_window_ms
    nemesis.random_schedule(
        cluster.rng.stream("nemesis"), chaos_start, chaos_end, events=params.events
    )
    cluster.run(chaos_end)
    nemesis.heal_everything()

    # Stop new traffic, drain in-flight operations, then wait until every
    # replica applied the same prefix and the digests agree.
    driver.stop()
    converged = False
    deadline = chaos_end + params.converge_deadline_ms
    while cluster.kernel.now < deadline:
        cluster.run(min(deadline, cluster.kernel.now + 250.0))
        if cluster.crashed_nodes():
            continue
        applied = {raft[node_id].last_applied for node_id in group}
        commits = {raft[node_id].commit_index for node_id in group}
        digests = {raft[node_id].kv.stable_digest() for node_id in group}
        if len(applied) == 1 and len(commits) == 1 and len(digests) == 1:
            converged = True
            break

    verdict = check_linearizable(history)
    double_applies = sum(raft[node_id].kv.double_applies for node_id in group)
    deduped = sum(raft[node_id].kv.duplicates_deduped for node_id in group)
    recoveries = sum(raft[node_id].durable.recoveries for node_id in group)
    lost = sum(raft[node_id].durable.lost_on_recovery for node_id in group)
    healthy = driver.report(0.0, chaos_start)
    during = driver.report(chaos_start, chaos_end)
    return ChaosRunResult(
        seed=seed,
        group_size=params.group_size,
        linearizable=verdict.ok,
        converged=converged,
        double_applies=double_applies,
        duplicates_deduped=deduped,
        checked_ops=verdict.checked_ops,
        indeterminate_ops=verdict.indeterminate_ops,
        completed_ops=driver.completed,
        client_errors=driver.errors,
        crashes=nemesis.crashes,
        restarts=nemesis.restarts,
        partitions=nemesis.partitions,
        heals=nemesis.heals,
        skipped_events=nemesis.skipped,
        recoveries=recoveries,
        lost_unacked_entries=lost,
        healthy_throughput_ops_s=healthy.throughput_ops_s,
        chaos_throughput_ops_s=during.throughput_ops_s,
        digest=raft[group[0]].kv.stable_digest(),
        nemesis_log=list(nemesis.log),
    )


@dataclass
class CampaignResult:
    runs: List[ChaosRunResult]

    @property
    def ok(self) -> bool:
        return all(run.ok for run in self.runs)

    @property
    def failures(self) -> List[ChaosRunResult]:
        return [run for run in self.runs if not run.ok]


def run_chaos_campaign(
    seeds: Sequence[int],
    group_sizes: Sequence[int] = (3, 5),
    params: Optional[ChaosParams] = None,
) -> CampaignResult:
    """The acceptance campaign: every (seed, group size) must be safe."""
    base = params or ChaosParams()
    runs: List[ChaosRunResult] = []
    for group_size in group_sizes:
        for seed in seeds:
            run_params = ChaosParams(**{**base.__dict__, "group_size": group_size})
            runs.append(run_chaos_once(seed, run_params))
    return CampaignResult(runs=runs)


def render_chaos_run(run: ChaosRunResult, verbose: bool = False) -> str:
    flags = []
    flags.append("linearizable" if run.linearizable else "NOT-LINEARIZABLE")
    flags.append("converged" if run.converged else "NOT-CONVERGED")
    flags.append(
        "exactly-once" if run.double_applies == 0 else f"{run.double_applies} DOUBLE-APPLIES"
    )
    lines = [
        f"seed={run.seed} n={run.group_size}: {' '.join(flags)}",
        f"  ops: {run.completed_ops} completed, {run.checked_ops} checked, "
        f"{run.indeterminate_ops} indeterminate, {run.duplicates_deduped} retries deduped, "
        f"{run.client_errors} gave up",
        f"  nemesis: {run.crashes} crashes / {run.restarts} restarts "
        f"({run.recoveries} recoveries, {run.lost_unacked_entries} unacked entries dropped), "
        f"{run.partitions} partitions / {run.heals} heals, {run.skipped_events} skipped",
        f"  availability during chaos: {100 * run.availability:.0f}% "
        f"({run.chaos_throughput_ops_s:.0f} of {run.healthy_throughput_ops_s:.0f} ops/s)  "
        f"digest={run.digest}",
    ]
    if verbose or not run.ok:
        for t, kind, detail in run.nemesis_log:
            lines.append(f"    {t:9.1f}ms {kind:10s} {detail}")
    return "\n".join(lines)


def render_chaos_campaign(result: CampaignResult, verbose: bool = False) -> str:
    lines = [render_chaos_run(run, verbose=verbose) for run in result.runs]
    verdict = "CAMPAIGN SAFE" if result.ok else f"{len(result.failures)} UNSAFE RUNS"
    lines.append(
        f"{verdict}: {len(result.runs)} runs, "
        f"{sum(run.crashes for run in result.runs)} crashes, "
        f"{sum(run.partitions for run in result.runs)} partitions, "
        f"{sum(run.duplicates_deduped for run in result.runs)} retries deduped, "
        f"0 tolerated double-applies"
    )
    return "\n".join(lines)
