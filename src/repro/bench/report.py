"""Text rendering of experiment results, one table per figure panel."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.faults.catalog import fault_names
from repro.workload.stats import WorkloadReport

METRICS = ("throughput", "avg_latency", "p99_latency")
METRIC_LABELS = {
    "throughput": "Throughput",
    "avg_latency": "Average Latency",
    "p99_latency": "P99 Latency",
}


def _metric_value(report: WorkloadReport, metric: str) -> float:
    if metric == "throughput":
        return report.throughput_ops_s
    if metric == "avg_latency":
        return report.avg_latency_ms
    if metric == "p99_latency":
        return report.p99_latency_ms
    raise ValueError(f"unknown metric {metric!r}")


def format_normalized_table(
    results: Dict[str, Dict[str, WorkloadReport]],
    metric: str,
    title: str = "",
) -> str:
    """Figure 1 style: rows = systems, columns = faults, cells normalized.

    ``results[system][fault]`` must include the "none" baseline column.
    Crashed runs are flagged with ``*``.
    """
    faults = fault_names(include_baseline=True)
    header = f"{'system':<14}" + "".join(f"{fault:>19}" for fault in faults)
    lines = [title, header] if title else [header]
    for system, sweeps in results.items():
        baseline = sweeps["none"]
        row = [f"{system:<14}"]
        for fault in faults:
            report = sweeps.get(fault)
            if report is None:
                row.append(f"{'-':>19}")
                continue
            value = _metric_value(report, metric)
            base = _metric_value(baseline, metric)
            normalized = value / base if base > 0 else 0.0
            crash = "*" if report.crashed else ""
            row.append(f"{normalized:>17.2f}{crash:<2}")
        lines.append("".join(row))
    if any(sweep.get(f) and sweep[f].crashed for sweep in results.values() for f in faults):
        lines.append("  (* = a node crashed during the run)")
    return "\n".join(lines)


def format_figure_table(
    results: Dict[str, Dict[str, WorkloadReport]],
    metric: str,
    title: str = "",
    unit: str = "",
) -> str:
    """Figure 3 style: absolute values, rows = setups, columns = faults."""
    faults = fault_names(include_baseline=True)
    header = f"{'setup':<14}" + "".join(f"{fault:>19}" for fault in faults)
    lines = [title, header] if title else [header]
    for setup, sweeps in results.items():
        row = [f"{setup:<14}"]
        for fault in faults:
            report = sweeps.get(fault)
            if report is None:
                row.append(f"{'-':>19}")
                continue
            value = _metric_value(report, metric)
            crash = "*" if report.crashed else ""
            row.append(f"{value:>17.1f}{crash:<2}")
        lines.append("".join(row))
    if unit:
        lines.append(f"  (values in {unit})")
    return "\n".join(lines)


def max_drift(sweeps: Dict[str, WorkloadReport], metric: str) -> float:
    """Largest relative deviation from the no-fault run across faults."""
    baseline = _metric_value(sweeps["none"], metric)
    if baseline <= 0:
        return 0.0
    deviations = [
        abs(_metric_value(report, metric) - baseline) / baseline
        for fault, report in sweeps.items()
        if fault != "none"
    ]
    return max(deviations, default=0.0)
