"""Figure 1: existing RSM implementations with one fail-slow follower.

Three-node deployments of the MongoDB-like, TiDB-like and RethinkDB-like
baselines, each run under no fault and under every Table 1 fault on one
follower. Results are normalized to each system's own no-fault run.

Expected shape (paper §2.2): up to 17–41% throughput loss, 21–50% average
latency inflation, 1.6–3.46× P99 inflation, and the RethinkDB leader
crashing under CPU slowness.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.baselines import BASELINE_SYSTEMS
from repro.bench.experiments import ExperimentParams, run_fault_sweep
from repro.bench.report import METRICS, METRIC_LABELS, format_normalized_table
from repro.faults.catalog import fault_names
from repro.workload.stats import WorkloadReport

Figure1Results = Dict[str, Dict[str, WorkloadReport]]


def run_figure1(
    params: Optional[ExperimentParams] = None,
    systems=None,
) -> Figure1Results:
    """All baseline systems × all fault conditions."""
    params = params or ExperimentParams()
    systems = systems or sorted(BASELINE_SYSTEMS)
    return {
        system: run_fault_sweep(system, fault_names(), params)
        for system in systems
    }


def render_figure1(results: Figure1Results) -> str:
    panels = []
    for panel, metric in zip("abc", METRICS):
        panels.append(
            format_normalized_table(
                results,
                metric,
                title=f"Figure 1({panel}): {METRIC_LABELS[metric]} (normalized to no-fault)",
            )
        )
    return "\n\n".join(panels)


def shape_checks(results: Figure1Results) -> Dict[str, bool]:
    """The qualitative claims of §2.2, evaluated on these results."""
    worst_tput = min(
        report.throughput_ops_s / sweeps["none"].throughput_ops_s
        for sweeps in results.values()
        for fault, report in sweeps.items()
        if fault != "none" and sweeps["none"].throughput_ops_s > 0
    )
    worst_p99 = max(
        report.p99_latency_ms / sweeps["none"].p99_latency_ms
        for sweeps in results.values()
        for fault, report in sweeps.items()
        if fault != "none" and sweeps["none"].p99_latency_ms > 0
    )
    rethink = results.get("rethink-like", {})
    return {
        "significant_throughput_loss": worst_tput < 0.83,  # >= 17% drop somewhere
        "significant_p99_inflation": worst_p99 > 1.6,
        "rethink_leader_crashes_under_cpu_slowness": bool(
            rethink.get("cpu_slow") and rethink["cpu_slow"].crashed
        ),
        "no_baseline_crash_without_fault": all(
            not sweeps["none"].crashed for sweeps in results.values()
        ),
    }
