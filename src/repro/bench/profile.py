"""Virtual-time profiler: how fast does the simulator simulate?

Two measurements, both over real (wall-clock) time:

* :func:`profile_scenario` runs one of the seeded determinism scenarios
  (3-node Raft / Multi-Paxos / chain / chaos — the same runs whose traces
  are golden-pinned) with the kernel's per-module event counter enabled,
  and reports executed events per wall-second, the virtual-to-wall speed
  ratio, and where the events went per subsystem;
* :func:`microbench_events_per_sec` times the kernel hot loop alone
  (schedule + run over a spread of due-times, same shape as
  ``benchmarks/bench_core_microbench.py::test_kernel_schedule_and_run``)
  — the number tracked in ``benchmarks/results/BENCH_kernel.json`` and
  guarded by the CI smoke gate (:func:`check_baseline`).

CLI: ``python -m repro profile <scenario>`` (see ``repro.cli``).
"""

# depfast: allow-file(DF008) — this module's whole purpose is comparing
# host wall-clock time against virtual time (events/sec, speedup ratios);
# the perf_counter() reads never feed back into the simulation.

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.bench.determinism import DEFAULT_SEED, SCENARIOS, TraceDigest, run_traced
from repro.sim.kernel import Kernel

BASELINE_PATH = (
    pathlib.Path(__file__).resolve().parents[3]
    / "benchmarks"
    / "results"
    / "BENCH_kernel.json"
)

# CI smoke gate: fail when the microbench drops below this fraction of the
# committed baseline. Generous because shared CI runners are noisy.
REGRESSION_FLOOR = 0.8


@dataclass
class ProfileReport:
    """Wall-clock cost of one seeded scenario run."""

    scenario: str
    seed: int
    wall_seconds: float
    events_executed: int
    events_per_sec: float
    virtual_ms: float
    # Virtual milliseconds simulated per wall millisecond (>1 = faster
    # than real time).
    speedup_vs_realtime: float
    subsystem_counts: Dict[str, int] = field(default_factory=dict)
    digest: Optional[TraceDigest] = None


def _subsystem(module: str) -> str:
    """Collapse ``repro.net.network`` → ``repro.net`` for the report."""
    parts = module.split(".")
    return ".".join(parts[:2]) if len(parts) > 1 else module


def profile_scenario(scenario: str, seed: int = DEFAULT_SEED) -> ProfileReport:
    """Run one determinism scenario with kernel profiling enabled."""
    captured = {}

    def on_cluster(cluster) -> None:
        cluster.kernel.enable_profile()
        captured["kernel"] = cluster.kernel

    start = time.perf_counter()
    digest = run_traced(scenario, seed=seed, on_cluster=on_cluster)
    wall = time.perf_counter() - start

    kernel: Kernel = captured["kernel"]
    subsystems: Dict[str, int] = {}
    for module, count in kernel.profile_counts().items():
        key = _subsystem(module)
        subsystems[key] = subsystems.get(key, 0) + count
    return ProfileReport(
        scenario=scenario,
        seed=seed,
        wall_seconds=wall,
        events_executed=kernel.events_executed,
        events_per_sec=kernel.events_executed / wall if wall > 0 else 0.0,
        virtual_ms=kernel.now,
        speedup_vs_realtime=(kernel.now / (wall * 1000.0)) if wall > 0 else 0.0,
        subsystem_counts=subsystems,
        digest=digest,
    )


def render_profile(report: ProfileReport) -> str:
    lines = [
        f"scenario {report.scenario} (seed {report.seed})",
        f"  wall time        {report.wall_seconds * 1000.0:,.0f} ms",
        f"  virtual time     {report.virtual_ms:,.0f} ms "
        f"({report.speedup_vs_realtime:,.1f}x real time)",
        f"  events executed  {report.events_executed:,}",
        f"  events/sec       {report.events_per_sec:,.0f}",
        "  per-subsystem event counts:",
    ]
    total = max(1, report.events_executed)
    ranked = sorted(report.subsystem_counts.items(), key=lambda kv: -kv[1])
    for subsystem, count in ranked:
        lines.append(f"    {subsystem:<24} {count:>10,}  ({100.0 * count / total:.1f}%)")
    return "\n".join(lines)


def microbench_events_per_sec(
    n_events: int = 20_000, repeats: int = 5
) -> float:
    """Kernel hot-loop throughput: schedule + drain ``n_events`` callbacks.

    Same event shape as the pytest-benchmark microbench (due-times spread
    over 97 distinct values so both the heap and the same-time batch paths
    are exercised); best of ``repeats`` to shed scheduler noise.
    """
    nop = _nop
    best = float("inf")
    for _ in range(repeats):
        kernel = Kernel()
        schedule = kernel.schedule
        start = time.perf_counter()
        for i in range(n_events):
            schedule(float(i % 97), nop)
        kernel.run_until_idle()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return n_events / best


def _nop() -> None:
    return None


def check_baseline(
    baseline_path: pathlib.Path = BASELINE_PATH,
    floor: float = REGRESSION_FLOOR,
) -> int:
    """CI smoke gate: compare the live microbench to the committed number.

    Returns a process exit code; prints its verdict. The bar is the
    file's ``gate_events_per_sec`` (set below dev-box numbers to absorb
    CI-runner variance); absent that, the newest trajectory entry.
    """
    trajectory = json.loads(pathlib.Path(baseline_path).read_text())
    baseline = trajectory.get(
        "gate_events_per_sec", trajectory["entries"][-1]["kernel_events_per_sec"]
    )
    measured = microbench_events_per_sec()
    ratio = measured / baseline
    verdict = "ok" if ratio >= floor else "REGRESSION"
    print(
        f"kernel microbench: {measured:,.0f} events/sec "
        f"(baseline {baseline:,.0f}, ratio {ratio:.2f}, floor {floor:.2f}) {verdict}"
    )
    return 0 if ratio >= floor else 1


__all__ = [
    "ProfileReport",
    "profile_scenario",
    "render_profile",
    "microbench_events_per_sec",
    "check_baseline",
    "SCENARIOS",
]
