"""Figure 3: DepFastRaft with a minority of fail-slow followers.

Three- and five-node DepFastRaft groups under every Table 1 fault on one
(3 nodes) or two (5 nodes) followers, reported in absolute units like the
paper's bars: requests/s and milliseconds. The headline claim is the 5%
band: no metric drifts more than 5% from the no-fault run.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional

from repro.bench.experiments import ExperimentParams, run_fault_sweep
from repro.bench.report import METRICS, METRIC_LABELS, format_figure_table, max_drift
from repro.faults.catalog import fault_names
from repro.workload.stats import WorkloadReport

Figure3Results = Dict[str, Dict[str, WorkloadReport]]


def run_figure3(
    params: Optional[ExperimentParams] = None,
    group_sizes=(3, 5),
) -> Figure3Results:
    params = params or ExperimentParams()
    results: Figure3Results = {}
    for size in group_sizes:
        sized = replace(params, group_size=size)
        results[f"{size} nodes"] = run_fault_sweep("depfast", fault_names(), sized)
    return results


def render_figure3(results: Figure3Results) -> str:
    panels = []
    units = {"throughput": "requests/s", "avg_latency": "ms", "p99_latency": "ms"}
    for panel, metric in zip("abc", METRICS):
        panels.append(
            format_figure_table(
                results,
                metric,
                title=f"Figure 3({panel}): DepFastRaft {METRIC_LABELS[metric]}",
                unit=units[metric],
            )
        )
    drift_lines = ["Drift vs no-fault (paper claim: within 5%):"]
    for setup, sweeps in results.items():
        drifts = ", ".join(
            f"{METRIC_LABELS[m]}={max_drift(sweeps, m)*100:.1f}%" for m in METRICS
        )
        drift_lines.append(f"  {setup}: {drifts}")
    return "\n\n".join(panels + ["\n".join(drift_lines)])


def shape_checks(results: Figure3Results, band: float = 0.05) -> Dict[str, bool]:
    checks: Dict[str, bool] = {}
    for setup, sweeps in results.items():
        for metric in METRICS:
            checks[f"{setup}:{metric}:within_band"] = max_drift(sweeps, metric) <= band
        checks[f"{setup}:no_crashes"] = all(
            not report.crashed for report in sweeps.values()
        )
        # Paper: "base performance ... at about 5K requests per second".
        checks[f"{setup}:base_throughput_kilo_range"] = (
            2000.0 <= sweeps["none"].throughput_ops_s <= 20_000.0
        )
    return checks
