"""Experiment harness: the code that regenerates every table and figure.

Each module corresponds to one artifact of the paper's evaluation:

* :mod:`repro.bench.table1` — verifies the six fault injections hit the
  resources Table 1 says they hit, with measured magnitudes;
* :mod:`repro.bench.figure1` — the three baseline RSMs, 3 nodes, one
  fail-slow follower: normalized throughput / avg latency / P99;
* :mod:`repro.bench.figure2` — the slowness propagation graph of a
  3-shard DepFastRaft deployment;
* :mod:`repro.bench.figure3` — DepFastRaft, 3 and 5 nodes, minority of
  fail-slow followers: absolute metrics and the 5%-drift check.

The ``benchmarks/`` directory wraps these in pytest-benchmark harnesses;
:mod:`repro.bench.report` renders the same results as text tables.
"""

from repro.bench.experiments import ExperimentParams, run_rsm_experiment
from repro.bench.report import format_figure_table, format_normalized_table

__all__ = [
    "ExperimentParams",
    "format_figure_table",
    "format_normalized_table",
    "run_rsm_experiment",
]
