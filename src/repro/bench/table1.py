"""Table 1: the fault catalog, with measured resource-level effects.

For each fault, deploy one node, measure a probe operation's duration on
the targeted resource healthy vs faulted, and report the slowdown. This
verifies the injections implement what Table 1 describes (5% CPU quota →
~20× CPU slowdown, 16× contender share → ~17×, +400 ms NIC delay, …).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.cluster.cluster import Cluster
from repro.faults.catalog import TABLE1, fault_names
from repro.faults.injector import FaultInjector


@dataclass
class FaultEffect:
    fault: str
    description: str
    resource: str
    healthy_ms: float
    faulted_ms: float

    @property
    def slowdown(self) -> float:
        if self.healthy_ms <= 0:
            return 0.0
        return self.faulted_ms / self.healthy_ms


def _cpu_probe(cluster: Cluster, node_id: str) -> float:
    """Virtual ms to complete 1 CPU-ms of work on an idle CPU."""
    node = cluster.node(node_id)
    start = cluster.kernel.now
    done = []
    node.cpu.submit(1.0, on_done=lambda: done.append(cluster.kernel.now))
    cluster.kernel.run_until_idle()
    return done[0] - start


def _disk_probe(cluster: Cluster, node_id: str, n_bytes: int = 1_000_000) -> float:
    node = cluster.node(node_id)
    start = cluster.kernel.now
    done = []
    node.disk.submit(float(n_bytes), on_done=lambda: done.append(cluster.kernel.now))
    cluster.kernel.run_until_idle()
    return done[0] - start


def _nic_probe(cluster: Cluster, node_id: str) -> float:
    return cluster.node(node_id).nic.delay_ms()


def _memory_probe(cluster: Cluster, node_id: str) -> float:
    """CPU probe under the node's current memory pressure (swap thrash)."""
    return _cpu_probe(cluster, node_id)


_PROBES = {
    "cpu_slow": ("cpu", _cpu_probe),
    "cpu_contention": ("cpu", _cpu_probe),
    "disk_slow": ("disk", _disk_probe),
    "disk_contention": ("disk", _disk_probe),
    "memory_contention": ("cpu (swap thrash)", _memory_probe),
    "network_slow": ("nic", _nic_probe),
}


def run_table1() -> List[FaultEffect]:
    effects: List[FaultEffect] = []
    for fault in fault_names():
        resource, probe = _PROBES[fault]
        cluster = Cluster(seed=1)
        cluster.add_node("n1")
        injector = FaultInjector(cluster)
        healthy = probe(cluster, "n1")
        injector.inject("n1", fault)
        faulted = probe(cluster, "n1")
        injector.clear("n1")
        effects.append(
            FaultEffect(
                fault=fault,
                description=TABLE1[fault].description,
                resource=resource,
                healthy_ms=healthy,
                faulted_ms=faulted,
            )
        )
    return effects


def render_table1(effects: List[FaultEffect]) -> str:
    lines = [
        "Table 1: simulated fail-slow faults and their measured effects",
        f"{'fault':<20}{'resource':<20}{'healthy':>12}{'faulted':>12}{'slowdown':>10}  description",
    ]
    for effect in effects:
        lines.append(
            f"{effect.fault:<20}{effect.resource:<20}"
            f"{effect.healthy_ms:>10.3f}ms{effect.faulted_ms:>10.3f}ms"
            f"{effect.slowdown:>9.1f}x  {effect.description}"
        )
    return "\n".join(lines)


def shape_checks(effects: List[FaultEffect]) -> Dict[str, bool]:
    by_name = {effect.fault: effect for effect in effects}
    return {
        "cpu_slow_is_20x": abs(by_name["cpu_slow"].slowdown - 20.0) < 0.5,
        "cpu_contention_is_17x": abs(by_name["cpu_contention"].slowdown - 17.0) < 0.5,
        "disk_slow_throttles": by_name["disk_slow"].slowdown > 5.0,
        "disk_contention_throttles": by_name["disk_contention"].slowdown > 2.0,
        "memory_contention_thrashes": by_name["memory_contention"].slowdown > 1.5,
        "network_slow_adds_400ms": (
            by_name["network_slow"].faulted_ms - by_name["network_slow"].healthy_ms
        )
        == 400.0,
    }
