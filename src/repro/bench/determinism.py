"""Seeded event-trace digests: the determinism harness for the hot path.

Every performance change to the simulator substrate (kernel queue, network
delivery, metrics) must be *equivalence-preserving*: the paper's claims are
about virtual-time behaviour, so an optimisation that shifts a single
virtual timestamp invalidates every artifact. This module runs small,
fully-seeded scenarios — 3-node Raft, Multi-Paxos, chain replication and
one chaos schedule — and folds their complete delivery traces into a
SHA-256 digest.

The digests captured *before* the PR-5 hot-path overhaul are committed in
``tests/fixtures/determinism_golden.json``; ``tests/test_determinism.py``
asserts the current code still produces them bit-for-bit. Regenerate the
goldens (only when semantics change intentionally) with::

    PYTHONPATH=src python -m repro.bench.determinism --write-golden

What goes into a digest:

* every successful message delivery, in order: ``repr`` of the virtual
  delivery time plus src/dst/method/msg_id — so both timestamps and the
  global delivery order are pinned;
* the final virtual clock reading;
* client-visible outcomes (operations completed, errors) and, for the
  chaos scenario, the safety verdicts and replica state digest.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import asdict, dataclass
from typing import Callable, Dict

from repro.cluster.cluster import Cluster
from repro.faults.injector import FaultInjector
from repro.workload.driver import ClosedLoopDriver
from repro.workload.ycsb import YcsbWorkload

GOLDEN_PATH = (
    pathlib.Path(__file__).resolve().parents[3]
    / "tests"
    / "fixtures"
    / "determinism_golden.json"
)

DEFAULT_SEED = 42


@dataclass
class TraceDigest:
    """Bit-for-bit summary of one seeded scenario run."""

    scenario: str
    seed: int
    trace_hash: str
    deliveries: int
    final_time_ms: float
    completed_ops: int
    errors: int


class _TraceHasher:
    """Accumulates the delivery stream into a SHA-256 digest.

    Message ids come from a process-global counter, so the hash folds in
    ids *relative to the scenario's first message* — the digest must not
    depend on how many messages earlier runs in the same process created.
    """

    def __init__(self) -> None:
        self._hash = hashlib.sha256()
        self.deliveries = 0
        self._base_msg_id: int | None = None

    def on_delivery(self, now: float, message) -> None:
        self.deliveries += 1
        if self._base_msg_id is None:
            self._base_msg_id = message.msg_id
        rel_id = message.msg_id - self._base_msg_id
        self._hash.update(
            f"{now!r} {message.src} {message.dst} {message.method} {rel_id}\n".encode()
        )

    def fold(self, *values) -> None:
        for value in values:
            self._hash.update(f"{value!r}\n".encode())

    def hexdigest(self) -> str:
        return self._hash.hexdigest()


def _run_rsm_scenario(
    scenario: str, seed: int, on_cluster: Callable[[Cluster], None] | None = None
) -> TraceDigest:
    """Raft / Paxos / chain: short faulted YCSB run with a delivery probe."""
    cluster = Cluster(seed=seed)
    if on_cluster is not None:
        on_cluster(cluster)
    hasher = _TraceHasher()
    cluster.network.delivery_probe = hasher.on_delivery
    group = ["s1", "s2", "s3"]

    if scenario == "raft":
        from repro.raft.config import RaftConfig
        from repro.raft.service import deploy_depfast_raft

        deploy_depfast_raft(cluster, group, config=RaftConfig(preferred_leader="s1"))
    elif scenario == "hedged":
        from repro.hedging import deploy_hedged_raft
        from repro.raft.config import RaftConfig

        # Hedge timers and the P² delay estimator both run off the seeded
        # kernel clock, so the racing path is pinned like everything else.
        deploy_hedged_raft(cluster, group, config=RaftConfig(preferred_leader="s1"))
    elif scenario == "paxos":
        from repro.paxos import PaxosConfig, deploy_paxos

        deploy_paxos(cluster, group, config=PaxosConfig(preferred_leader="s1"))
    elif scenario == "chain":
        from repro.chain import deploy_chain

        deploy_chain(cluster, group)
    else:  # pragma: no cover - registry guards this
        raise ValueError(f"unknown RSM scenario {scenario!r}")

    # One fail-slow follower for the whole run, so the faulted code paths
    # (resource re-timing, backpressure) are part of the pinned trace.
    FaultInjector(cluster).inject("s3", "cpu_slow")

    workload = YcsbWorkload(
        cluster.rng.stream("ycsb"),
        record_count=1_000,
        value_size=100,
        update_fraction=1.0,
    )
    driver = ClosedLoopDriver(cluster, group, workload, n_clients=8)
    driver.start()
    cluster.run(until_ms=3_000.0)

    hasher.fold(cluster.kernel.now, driver.completed, driver.errors)
    return TraceDigest(
        scenario=scenario,
        seed=seed,
        trace_hash=hasher.hexdigest(),
        deliveries=hasher.deliveries,
        final_time_ms=cluster.kernel.now,
        completed_ops=driver.completed,
        errors=driver.errors,
    )


def _run_chaos_scenario(
    scenario: str, seed: int, on_cluster: Callable[[Cluster], None] | None = None
) -> TraceDigest:
    """One short seeded chaos schedule (crashes/partitions/loss/fail-slow)."""
    from repro.bench.chaos import ChaosParams, run_chaos_once

    hasher = _TraceHasher()
    final_time = {}
    caller_hook = on_cluster

    def on_cluster(cluster: Cluster) -> None:
        if caller_hook is not None:
            caller_hook(cluster)
        cluster.network.delivery_probe = hasher.on_delivery
        final_time["cluster"] = cluster

    params = ChaosParams(
        n_clients=4,
        events=6,
        warmup_ms=800.0,
        chaos_window_ms=3_000.0,
        converge_deadline_ms=8_000.0,
    )
    result = run_chaos_once(seed, params, on_cluster=on_cluster)
    kernel_now = final_time["cluster"].kernel.now
    hasher.fold(
        kernel_now,
        result.completed_ops,
        result.client_errors,
        result.linearizable,
        result.converged,
        result.double_applies,
        result.crashes,
        result.restarts,
        result.partitions,
        result.digest,
    )
    return TraceDigest(
        scenario=scenario,
        seed=seed,
        trace_hash=hasher.hexdigest(),
        deliveries=hasher.deliveries,
        final_time_ms=kernel_now,
        completed_ops=result.completed_ops,
        errors=result.client_errors,
    )


def _run_breaker_scenario(
    scenario: str, seed: int, on_cluster: Callable[[Cluster], None] | None = None
) -> TraceDigest:
    """Write-behind breaker path: trip, absorb, crash-while-tripped, restart.

    A follower's disk crawls for the whole run; the attribution loop trips
    its breaker, acks come from the write-behind queue, then the node is
    killed while OPEN (the queue dies unfsynced) and restarted. The fold
    pins the breaker telemetry alongside the delivery trace, so the
    trip/absorb/retire/recover paths are all equivalence-checked.
    """
    from repro.bench.breaker import BACKEND_CONTENTION
    from repro.breaker import AttributionConfig, install_breaker_wals
    from repro.detector.mitigation import MitigationConfig, MitigationController
    from repro.raft.config import RaftConfig
    from repro.raft.service import deploy_depfast_raft, restart_raft_node

    cluster = Cluster(seed=seed)
    if on_cluster is not None:
        on_cluster(cluster)
    hasher = _TraceHasher()
    cluster.network.delivery_probe = hasher.on_delivery
    group = ["s1", "s2", "s3"]
    raft = deploy_depfast_raft(cluster, group, config=RaftConfig(preferred_leader="s1"))
    install_breaker_wals(cluster, group)
    controller = MitigationController(
        cluster,
        raft,
        detectors=[],
        config=MitigationConfig(
            window_ms=250.0,
            attribution=AttributionConfig(suspect_windows=1, min_samples=3),
        ),
    )
    controller.start()

    FaultInjector(cluster).inject_transient("s3", BACKEND_CONTENTION, 500.0, 3_000.0)
    cluster.kernel.schedule_at(1_800.0, lambda: cluster.node("s3").crash("breaker scenario"))
    cluster.kernel.schedule_at(2_300.0, lambda: restart_raft_node(cluster, raft, "s3"))

    workload = YcsbWorkload(
        cluster.rng.stream("ycsb"),
        record_count=1_000,
        value_size=100,
        update_fraction=1.0,
    )
    driver = ClosedLoopDriver(cluster, group, workload, n_clients=8)
    driver.start()
    cluster.run(until_ms=3_500.0)

    wal = cluster.node("s3").wal
    hasher.fold(
        cluster.kernel.now,
        driver.completed,
        driver.errors,
        controller.breaker_trips,
        controller.breaker_releases,
        raft["s3"].durable.lost_on_recovery,
        wal.state.value,
        wal.absorbed_syncs,
    )
    return TraceDigest(
        scenario=scenario,
        seed=seed,
        trace_hash=hasher.hexdigest(),
        deliveries=hasher.deliveries,
        final_time_ms=cluster.kernel.now,
        completed_ops=driver.completed,
        errors=driver.errors,
    )


SCENARIOS: Dict[str, Callable[..., TraceDigest]] = {
    "raft": _run_rsm_scenario,
    "hedged": _run_rsm_scenario,
    "paxos": _run_rsm_scenario,
    "chain": _run_rsm_scenario,
    "chaos": _run_chaos_scenario,
    "breaker": _run_breaker_scenario,
}


def run_traced(
    scenario: str,
    seed: int = DEFAULT_SEED,
    on_cluster: Callable[[Cluster], None] | None = None,
) -> TraceDigest:
    """Run one named scenario with the trace probe installed.

    ``on_cluster`` is called with the freshly-built cluster before the run
    starts — the hook the virtual-time profiler uses to reach the kernel.
    """
    runner = SCENARIOS.get(scenario)
    if runner is None:
        raise ValueError(f"unknown scenario {scenario!r}; known: {sorted(SCENARIOS)}")
    return runner(scenario, seed, on_cluster)


def write_golden(path: pathlib.Path = GOLDEN_PATH) -> Dict[str, dict]:
    """Capture all scenarios and write the golden fixture."""
    golden = {name: asdict(run_traced(name)) for name in sorted(SCENARIOS)}
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
    return golden


def load_golden(path: pathlib.Path = GOLDEN_PATH) -> Dict[str, dict]:
    return json.loads(path.read_text())


if __name__ == "__main__":  # pragma: no cover - capture utility
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--write-golden", action="store_true")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    args = parser.parse_args()
    if args.write_golden:
        for name, entry in write_golden().items():
            print(f"{name}: {entry['trace_hash'][:16]}… ({entry['deliveries']} deliveries)")
    else:
        for name in sorted(SCENARIOS):
            digest = run_traced(name, seed=args.seed)
            print(
                f"{name}: hash={digest.trace_hash} deliveries={digest.deliveries} "
                f"t={digest.final_time_ms} ops={digest.completed_ops}"
            )
