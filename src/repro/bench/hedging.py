"""Hedging matrix: four fail-slow defenses raced across Table 1 faults.

Figure 3 of the paper shows quorum events decoupling a slow *follower*
from client latency. This matrix replays that experiment with the rival
defense in the ring, under every Table 1 fault plus a fault-free
control, for four systems:

* ``raft``           — baseline: quorum waits only (no discard,
  unbounded buffers);
* ``depfast``        — the paper's defense: quorum discard + bounded
  send buffers;
* ``hedged``         — the rival: racing instead of discarding (hedged
  AppendEntries + speculative reads; no discard, unbounded buffers);
* ``hedged+depfast`` — both bets together.

The fault lands on a follower, the workload is a mixed read/write
closed loop with ``read_index`` reads. Per cell we report the post-onset
P50/P99/P999 client latency, throughput, and the racing costs: duplicate
-work amplification ``(primaries + hedges) / primaries``, how many of
those duplicates were aimed at the already-faulted node, server-side
dedup/abort counts, and the SPG wait time into the faulted node — the
coupling the hedges re-introduce. Seeded-deterministic end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.node import NodeSpec
from repro.faults.injector import FaultInjector
from repro.hedging.hedge import HedgePolicy
from repro.hedging.raft import HedgedRaftNode, deploy_hedged_raft
from repro.raft.config import RaftConfig
from repro.raft.service import deploy_depfast_raft, wait_for_leader
from repro.trace.spg import build_spg
from repro.workload.driver import ClosedLoopDriver
from repro.workload.ycsb import YcsbWorkload

CONTROL = "none"

# Table 1 rows, all injected on a follower (Figure 3's setup: the member
# a quorum can out-wait — and the one a hedge races).
MATRIX_FAULTS = [
    "cpu_slow",
    "cpu_contention",
    "disk_slow",
    "disk_contention",
    "memory_contention",
    "network_slow",
]

SYSTEMS = ["raft", "depfast", "hedged", "hedged+depfast"]


@dataclass
class HedgingParams:
    """Knobs for one matrix cell (defaults sized for a few wall-seconds)."""

    group_size: int = 3
    n_clients: int = 24
    record_count: int = 2_000
    value_size: int = 500
    # Mixed workload: the write majority keeps an apply backlog alive
    # (what speculative reads overlap with) and exercises hedged
    # replication; the read minority exercises read_index reads.
    update_fraction: float = 0.6
    warmup_ms: float = 2_000.0
    fault_at_ms: float = 2_000.0
    end_ms: float = 8_000.0
    # Follower faults run to the horizon, as in Figure 3: the question
    # is steady-state tail latency while the fault persists.
    fault_duration_ms: Optional[float] = None
    request_timeout_ms: float = 1_000.0
    policy: HedgePolicy = field(default_factory=HedgePolicy)

    def config(self, group: Sequence[str], discard_on_quorum: bool) -> RaftConfig:
        return RaftConfig(
            preferred_leader=group[0],
            read_mode="read_index",
            discard_on_quorum=discard_on_quorum,
            client_commit_timeout_ms=2_000.0,
            snapshot_threshold_entries=400,
            compaction_keep_entries=128,
        )


@dataclass
class HedgingRunResult:
    system: str
    fault: str
    seed: int
    completed: int
    errors: int
    throughput_ops_s: float
    p50_ms: float
    p99_ms: float
    p999_ms: float
    healthy_p99_ms: float
    # Racing costs (zero for the non-hedged systems).
    append_primaries: int
    append_hedges: int
    probe_hedges: int
    hedges_to_faulted: int
    speculative_reads: int
    speculation_rollbacks: int
    hedges_deduped: int
    hedges_aborted: int
    repairs_started: int
    # SPG annotation: aggregate wait time server coroutines spent on
    # edges into the faulted node, and whether any of it was a red
    # (single-source) edge — the coupling signature.
    coupling_wait_ms: float
    coupling_red_edges: int

    @property
    def amplification(self) -> float:
        """Duplicate-work amplification on the replication fan-out."""
        if self.append_primaries <= 0:
            return 1.0
        return (self.append_primaries + self.append_hedges) / self.append_primaries


def _deploy(system: str, cluster: Cluster, group: List[str], params: HedgingParams):
    unbounded = NodeSpec()
    if system == "raft":
        return deploy_depfast_raft(
            cluster, group, config=params.config(group, False), spec=unbounded
        )
    if system == "depfast":
        return deploy_depfast_raft(cluster, group, config=params.config(group, True))
    if system == "hedged":
        return deploy_hedged_raft(
            cluster,
            group,
            config=params.config(group, False),
            spec=unbounded,
            policy=params.policy,
        )
    if system == "hedged+depfast":
        return deploy_hedged_raft(
            cluster, group, config=params.config(group, True), policy=params.policy
        )
    raise ValueError(f"unknown system {system!r}")


def run_hedging_once(
    system: str,
    fault: str,
    seed: int = 7,
    params: Optional[HedgingParams] = None,
) -> HedgingRunResult:
    """One seeded (system, fault) cell; deterministic end to end."""
    params = params or HedgingParams()
    cluster = Cluster(seed=seed)
    group = [f"s{i + 1}" for i in range(params.group_size)]
    raft = _deploy(system, cluster, group, params)
    workload = YcsbWorkload(
        cluster.rng.stream("workload"),
        record_count=params.record_count,
        value_size=params.value_size,
        update_fraction=params.update_fraction,
        distribution="uniform",
    )
    driver = ClosedLoopDriver(
        cluster,
        group,
        workload,
        n_clients=params.n_clients,
        think_time_ms=2.0,
        request_timeout_ms=params.request_timeout_ms,
        sessions=True,
    )
    wait_for_leader(cluster, raft)

    fault_node = group[-1]  # a follower (preferred leader is group[0])
    if fault != CONTROL:
        duration = params.fault_duration_ms
        if duration is None:
            duration = params.end_ms - params.fault_at_ms
        FaultInjector(cluster).inject_transient(
            fault_node, fault, params.fault_at_ms, duration
        )

    driver.start()
    cluster.run(until_ms=params.end_ms)
    driver.stop()

    fault_at, end = params.fault_at_ms, params.end_ms
    report = driver.report(fault_at, end)
    recorder = driver.recorder

    primaries = hedges = probe_hedges = to_faulted = 0
    spec_reads = rollbacks = 0
    for raft_node in raft.values():
        if isinstance(raft_node, HedgedRaftNode):
            primaries += raft_node.append_primaries
            hedges += raft_node.append_hedges
            probe_hedges += raft_node.probe_hedges
            to_faulted += raft_node.hedges_by_peer.get(fault_node, 0)
            spec_reads += raft_node.speculative_reads
            rollbacks += raft_node.speculation_rollbacks

    graph = build_spg(cluster.tracer.records)
    coupling_wait = 0.0
    red_edges = 0
    for src, dst, data in graph.edges(data=True):
        if dst == fault_node and src in group:
            coupling_wait += data["total_wait_ms"]
            if data["color"] == "red":
                red_edges += 1

    return HedgingRunResult(
        system=system,
        fault=fault,
        seed=seed,
        completed=driver.completed,
        errors=driver.errors,
        throughput_ops_s=report.throughput_ops_s,
        p50_ms=recorder.percentile(50.0, fault_at, end),
        p99_ms=recorder.percentile(99.0, fault_at, end),
        p999_ms=recorder.percentile(99.9, fault_at, end),
        healthy_p99_ms=recorder.percentile(99.0, 1_000.0, fault_at),
        append_primaries=primaries,
        append_hedges=hedges,
        probe_hedges=probe_hedges,
        hedges_to_faulted=to_faulted,
        speculative_reads=spec_reads,
        speculation_rollbacks=rollbacks,
        hedges_deduped=sum(n.ep.hedges_deduped for n in raft.values()),
        hedges_aborted=sum(n.ep.hedges_aborted for n in raft.values()),
        repairs_started=sum(n.repairs_started for n in raft.values()),
        coupling_wait_ms=coupling_wait,
        coupling_red_edges=red_edges,
    )


@dataclass
class HedgingMatrixResult:
    cells: Dict[str, Dict[str, HedgingRunResult]]  # fault -> system -> run

    def _faults(self) -> List[str]:
        return [fault for fault in self.cells if fault != CONTROL]

    def p99_wins(self) -> List[str]:
        """Faults where a hedged system beats DepFastRaft on P99."""
        wins = []
        for fault in self._faults():
            row = self.cells[fault]
            depfast = row["depfast"].p99_ms
            hedged_best = min(
                row[system].p99_ms
                for system in ("hedged", "hedged+depfast")
                if system in row
            )
            if hedged_best < depfast:
                wins.append(fault)
        return wins

    def recoupling(self) -> List[str]:
        """Faults where hedging re-couples the slowness DepFast decoupled.

        Evidence: duplicate work aimed at the faulted node (the hedge
        pays the slow link again) combined with a P99 no better than
        DepFast's, or measurable amplification with worse throughput.
        """
        recoupled = []
        for fault in self._faults():
            row = self.cells[fault]
            hedged = row.get("hedged")
            depfast = row.get("depfast")
            if hedged is None or depfast is None:
                continue
            wasted = hedged.hedges_to_faulted > 0 or hedged.amplification > 1.02
            no_gain = (
                hedged.p99_ms >= depfast.p99_ms
                or hedged.throughput_ops_s < depfast.throughput_ops_s
            )
            if wasted and no_gain:
                recoupled.append(fault)
        return recoupled

    @property
    def ok(self) -> bool:
        return bool(self.p99_wins()) and bool(self.recoupling())


def run_hedging_matrix(
    faults: Optional[Sequence[str]] = None,
    seed: int = 7,
    params: Optional[HedgingParams] = None,
    systems: Optional[Sequence[str]] = None,
) -> HedgingMatrixResult:
    """The full campaign: every (fault, system) cell plus the control row."""
    params = params or HedgingParams()
    wanted_faults = list(faults) if faults is not None else list(MATRIX_FAULTS)
    wanted_systems = list(systems) if systems is not None else list(SYSTEMS)
    cells: Dict[str, Dict[str, HedgingRunResult]] = {}
    for fault in [CONTROL] + wanted_faults:
        cells[fault] = {}
        for system in wanted_systems:
            cells[fault][system] = run_hedging_once(
                system, fault, seed=seed, params=params
            )
    return HedgingMatrixResult(cells=cells)


def render_hedging_run(run: HedgingRunResult) -> str:
    extras = ""
    if run.append_hedges or run.probe_hedges or run.speculative_reads:
        extras = (
            f"  amp={run.amplification:.3f} hedges={run.append_hedges}"
            f"(->faulted {run.hedges_to_faulted}) probes+{run.probe_hedges} "
            f"dedup={run.hedges_deduped} spec={run.speculative_reads}"
            f"/rb{run.speculation_rollbacks}"
        )
    return (
        f"    {run.system:15s} p50={run.p50_ms:7.2f} p99={run.p99_ms:8.2f} "
        f"p999={run.p999_ms:8.2f}  {run.throughput_ops_s:6.0f} ops/s "
        f"err={run.errors:<4d} couple={run.coupling_wait_ms:8.0f}ms"
        f"{'!' * run.coupling_red_edges}{extras}"
    )


def render_hedging_matrix(result: HedgingMatrixResult) -> str:
    lines = [
        "hedging matrix (follower faults; post-onset client latency, ms):",
    ]
    for fault, row in result.cells.items():
        lines.append(f"  {fault}:")
        for system in SYSTEMS:
            if system in row:
                lines.append(render_hedging_run(row[system]))
    wins = result.p99_wins()
    recoupled = result.recoupling()
    lines.append(
        f"  hedging beats depfast on P99 under: {', '.join(wins) if wins else 'none'}"
    )
    lines.append(
        "  hedging re-couples slowness under: "
        f"{', '.join(recoupled) if recoupled else 'none'}"
    )
    verdict = "MATRIX OK" if result.ok else "MATRIX BELOW TARGET"
    lines.append(
        f"{verdict}: need >=1 fault where racing wins and >=1 where it "
        "re-couples the straggler"
    )
    return "\n".join(lines)


def smoke_params() -> HedgingParams:
    """A scaled-down matrix for CI: shorter horizon, fewer clients."""
    return HedgingParams(
        n_clients=12,
        record_count=1_000,
        warmup_ms=1_500.0,
        fault_at_ms=1_500.0,
        end_ms=5_000.0,
    )


SMOKE_FAULTS = ["cpu_slow", "network_slow"]
