"""The shared experiment runner: deploy → inject → drive → measure.

Mirrors §2.1's methodology: an update-only YCSB-like workload from
closed-loop clients, one (or a minority of) randomly-chosen follower(s)
carrying a Table 1 fault for the whole run, metrics from the steady-state
window, and per-system normalization against the system's own no-fault
run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.baselines import BASELINE_SYSTEMS, deploy_baseline
from repro.cluster.cluster import Cluster
from repro.faults.injector import FaultInjector
from repro.faults.jitter import BackgroundJitter
from repro.raft.config import RaftConfig
from repro.raft.service import deploy_depfast_raft
from repro.workload.driver import ClosedLoopDriver
from repro.workload.stats import WorkloadReport
from repro.workload.ycsb import YcsbWorkload

SYSTEMS = ["depfast", "paxos"] + sorted(BASELINE_SYSTEMS)


@dataclass
class ExperimentParams:
    """One run's knobs. Defaults reproduce the paper's operating point."""

    group_size: int = 3
    n_clients: int = 48
    seed: int = 42
    warmup_ms: float = 2000.0
    end_ms: float = 10_000.0
    record_count: int = 500_000
    value_size: int = 1000
    update_fraction: float = 1.0
    background_jitter: bool = False
    faulty_followers: Optional[int] = None  # default: 1 (3 nodes) / minority

    def group(self) -> List[str]:
        return [f"s{i+1}" for i in range(self.group_size)]

    def n_faulty(self) -> int:
        if self.faulty_followers is not None:
            return self.faulty_followers
        return 1 if self.group_size == 3 else (self.group_size - 1) // 2

    def scaled_for_smoke(self) -> "ExperimentParams":
        """A fast profile for CI smoke runs (shapes, not magnitudes)."""
        return replace(self, n_clients=16, warmup_ms=1000.0, end_ms=4000.0)


def bench_params() -> ExperimentParams:
    """Params selected by the REPRO_BENCH_PROFILE env var (paper|smoke)."""
    params = ExperimentParams()
    if os.environ.get("REPRO_BENCH_PROFILE", "paper") == "smoke":
        return params.scaled_for_smoke()
    return params


def run_rsm_experiment(
    system: str, fault: str, params: Optional[ExperimentParams] = None
) -> WorkloadReport:
    """Run one (system, fault) cell and return its workload report.

    ``system`` is "depfast" or one of the baseline names; ``fault`` is a
    Table 1 name ("none" for the normalization baseline). Faults are
    injected on the *last* followers of the group — never the leader
    (s1) — matching the paper's fail-slow-follower focus.
    """
    params = params or ExperimentParams()
    cluster = Cluster(seed=params.seed)
    group = params.group()

    if system == "depfast":
        deploy_depfast_raft(
            cluster, group, config=RaftConfig(preferred_leader=group[0])
        )
    elif system == "paxos":
        from repro.paxos import PaxosConfig, deploy_paxos

        deploy_paxos(cluster, group, config=PaxosConfig(preferred_leader=group[0]))
    elif system in BASELINE_SYSTEMS:
        deploy_baseline(cluster, BASELINE_SYSTEMS[system], group)
    else:
        raise ValueError(f"unknown system {system!r}; known: {SYSTEMS}")

    injector = FaultInjector(cluster)
    if fault != "none":
        for victim in group[-params.n_faulty():]:
            injector.inject(victim, fault)

    jitter = None
    if params.background_jitter:
        jitter = BackgroundJitter(
            cluster, group, cluster.rng.stream("bg-jitter")
        )
        jitter.start()

    workload = YcsbWorkload(
        cluster.rng.stream("ycsb"),
        record_count=params.record_count,
        value_size=params.value_size,
        update_fraction=params.update_fraction,
    )
    driver = ClosedLoopDriver(
        cluster, group, workload, n_clients=params.n_clients
    )
    driver.start()
    cluster.run(until_ms=params.end_ms)
    return driver.report(params.warmup_ms, params.end_ms)


def run_fault_sweep(
    system: str,
    faults: List[str],
    params: Optional[ExperimentParams] = None,
) -> Dict[str, WorkloadReport]:
    """One system across a list of fault conditions (always incl. 'none')."""
    params = params or ExperimentParams()
    conditions = ["none"] + [fault for fault in faults if fault != "none"]
    return {
        fault: run_rsm_experiment(system, fault, params) for fault in conditions
    }
