"""Chain replication — the topology that propagates fail-slow by design.

§2.1: "We turned off chained replication which by design could propagate
fail-slow faults", and §3.3 proposes using SPGs to "reason about design
tradeoffs between fail-slow fault tolerance and other properties (e.g.,
load balancing in chained replications)".

This package makes that tradeoff measurable: a van Renesse/Schneider-style
chain (writes enter at the head, flow through every node, ack at the tail)
built on the same DepFast runtime. Every hop is a 1/1 wait — the SPG is a
red path and the tolerance checker fails it — so *any* single fail-slow
node throttles every write, in contrast to DepFastRaft's quorum green
edges (``benchmarks/bench_chain_vs_quorum.py``).
"""

from repro.chain.chain import ChainNode, deploy_chain

__all__ = ["ChainNode", "deploy_chain"]
