"""Chain replication on the DepFast runtime.

Writes enter at the head, are applied and persisted at every node in chain
order, and are acknowledged once the tail holds them; reads are served by
the tail (van Renesse & Schneider, OSDI '04). The head's wait for the
tail's ack is a single event sourced at the tail — a structural 1/1 wait,
which is precisely why a fail-slow node *anywhere* in the chain throttles
every write. The implementation shares the cost model of the RSMs so the
comparison bench isolates the replication topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional

from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.events.base import Event
from repro.events.basic import ValueEvent
from repro.storage.kvstore import KvStore


@dataclass
class ChainConfig:
    client_op_cost_ms: float = 0.45
    forward_cost_ms: float = 0.07
    apply_cost_ms: float = 0.06
    ack_timeout_ms: float = 3000.0


class ChainNode:
    """One member of a replication chain."""

    def __init__(self, node: Node, chain: List[str], config: Optional[ChainConfig] = None):
        if node.node_id not in chain:
            raise ValueError(f"{node.node_id} not in chain {chain}")
        self.node = node
        self.id = node.node_id
        self.chain = list(chain)
        self.config = config or ChainConfig()
        self.rt = node.runtime
        self.ep = node.endpoint
        self.kv = KvStore()

        position = chain.index(self.id)
        self.is_head = position == 0
        self.is_tail = position == len(chain) - 1
        self.successor: Optional[str] = None if self.is_tail else chain[position + 1]
        self.head = chain[0]
        self.tail = chain[-1]

        self._next_seq = 0
        self._pending: Dict[int, ValueEvent] = {}
        self._apply_gate = Event(name="chain-gate")
        self._apply_gate.trigger()
        self.writes_acked = 0

        self.ep.register("client_request", self._on_client_request)
        self.ep.register("chain_write", self._on_chain_write)
        self.ep.register("chain_ack", self._on_chain_ack)

    def start(self) -> None:
        self.node.start()

    # ------------------------------------------------------------------
    # Client entry
    # ------------------------------------------------------------------
    def _on_client_request(self, payload: Dict[str, Any], src: str) -> Generator:
        cfg = self.config
        op = payload["op"]
        if op[0] == "get":
            # Reads are the tail's job: it holds only fully-replicated state.
            if not self.is_tail:
                return {"ok": False, "redirect": self.tail}
            yield self.rt.compute(cfg.apply_cost_ms, name="chain-read")
            return {"ok": True, "result": self.kv.get(op[1])}
        if not self.is_head:
            return {"ok": False, "redirect": self.head}
        yield self.rt.compute(cfg.client_op_cost_ms, name="client-op")
        self._next_seq += 1
        # depfast: allow(DF011) — ``seq`` is an allocation, not a snapshot:
        # each request owns the number it drew, and ``self._next_seq``
        # advancing while we are parked is other requests drawing theirs.
        seq = self._next_seq
        # The wait point of chain replication: one event, sourced at the
        # tail. The SPG shows it as a red head→tail edge; the tolerance
        # checker flags it.
        acked = ValueEvent(name=f"chain-ack@{seq}", source=self.tail)
        self._pending[seq] = acked
        yield from self._apply_and_persist(op)
        self.ep.notify(
            self.successor,
            "chain_write",
            {"seq": seq, "op": op},
            size_bytes=_op_size(op),
        )
        # depfast: allow(DF001) — inherent to chain replication: the head
        # must hear from the tail, so this red edge is the protocol itself
        # (it is what Figure 1 measures), not an implementation slip.
        result = yield acked.wait(timeout_ms=cfg.ack_timeout_ms)
        self._pending.pop(seq, None)
        if result.timed_out:
            return {"ok": False, "redirect": None}
        return {"ok": True, "result": None}

    # ------------------------------------------------------------------
    # Chain propagation
    # ------------------------------------------------------------------
    def _on_chain_write(self, payload: Dict[str, Any], src: str) -> Generator:
        cfg = self.config
        yield self.rt.compute(cfg.forward_cost_ms, name="chain-forward")
        yield from self._apply_and_persist(payload["op"])
        if self.is_tail:
            self.ep.notify(self.head, "chain_ack", {"seq": payload["seq"]}, size_bytes=32)
        else:
            self.ep.notify(
                self.successor,
                "chain_write",
                payload,
                size_bytes=_op_size(payload["op"]),
            )
        return None

    def _apply_and_persist(self, op) -> Generator:
        # Serialize applies in arrival order (same gate idiom as the RSMs).
        previous_gate = self._apply_gate
        my_gate = Event(name=f"{self.id}:chain-gate")
        self._apply_gate = my_gate
        try:
            if not previous_gate.ready():
                yield previous_gate.wait()
            yield self.rt.compute(self.config.apply_cost_ms, name="chain-apply")
            self.node.wal.append(_op_size(op))
            sync = self.node.wal.sync()
            yield sync.wait()
            self.kv.apply(op)
        finally:
            my_gate.trigger(self.rt.now)

    def _on_chain_ack(self, payload: Dict[str, Any], src: str) -> Generator:
        acked = self._pending.get(payload["seq"])
        if acked is not None and not acked.ready():
            self.writes_acked += 1
            acked.set(True, now=self.rt.now)
        return None
        yield  # pragma: no cover - marks this as a generator


def _op_size(op) -> int:
    return 32 + sum(len(str(part)) for part in op)


def deploy_chain(
    cluster: Cluster,
    chain: List[str],
    config: Optional[ChainConfig] = None,
) -> Dict[str, ChainNode]:
    """Create and start a replication chain (head = first, tail = last)."""
    if len(chain) < 2:
        raise ValueError("a chain needs at least two nodes")
    nodes = {}
    for node_id in chain:
        node = cluster.add_node(node_id)
        nodes[node_id] = ChainNode(node, chain, config=config)
    for chain_node in nodes.values():
        chain_node.start()
    return nodes
