"""§3.2: fast-path/slow-path rounds expressed via nested compound events.

Measures decision latency of the fast path (unanimous accept) vs the slow
fallback (conflicts) vs a fail-slow acceptor (tolerated by the fast quorum
leaving one straggler out).
"""

from conftest import save_result

from repro.cluster.cluster import Cluster
from repro.raft.fastpath import FastPathAcceptor, FastPathCoordinator


def _world(n_acceptors=5, seed=3):
    cluster = Cluster(seed=seed)
    coordinator_node = cluster.add_node("coord")
    acceptors = {}
    for i in range(n_acceptors):
        node = cluster.add_node(f"a{i+1}")
        acceptors[node.node_id] = FastPathAcceptor(node)
        node.start()
    coordinator_node.start()
    coordinator = FastPathCoordinator(coordinator_node, sorted(acceptors))
    return cluster, coordinator_node, coordinator, acceptors


def _propose(cluster, node, coordinator, decree, value):
    outcomes = []

    def script():
        outcome = yield from coordinator.propose(decree, value)
        outcomes.append(outcome)

    started = cluster.kernel.now
    node.runtime.spawn(script())
    cluster.run(until_ms=cluster.kernel.now + 10_000.0)
    outcome = outcomes[0]
    return outcome, outcome.decided_at_ms - started


def test_fastpath_latency_profile(benchmark):
    def run():
        rows = []
        # Clean fast path.
        cluster, node, coordinator, acceptors = _world()
        outcome, latency = _propose(cluster, node, coordinator, 1, "X")
        rows.append(("unanimous (fast path)", outcome.path, latency))
        # Conflicted: falls back to the slow round.
        cluster, node, coordinator, acceptors = _world()
        acceptors["a1"].preseed(1, "RIVAL")
        acceptors["a2"].preseed(1, "RIVAL")
        outcome, latency = _propose(cluster, node, coordinator, 1, "X")
        rows.append(("2 conflicts (slow path)", outcome.path, latency))
        # One fail-slow acceptor: fast quorum (4/5) proceeds without it.
        cluster, node, coordinator, acceptors = _world()
        cluster.node("a5").cpu.set_quota(0.0001)
        outcome, latency = _propose(cluster, node, coordinator, 1, "X")
        rows.append(("1 fail-slow acceptor", outcome.path, latency))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Fast-path/slow-path decision latency (5 acceptors):"]
    for label, path, latency in rows:
        lines.append(f"  {label:<26} -> {path:<5} in {latency:8.2f} ms")
    save_result("fastpath", "\n".join(lines))
    by_label = {label: (path, latency) for label, path, latency in rows}
    assert by_label["unanimous (fast path)"][0] == "fast"
    assert by_label["2 conflicts (slow path)"][0] == "slow"
    # The fail-slow acceptor is simply left out of the 4/5 fast quorum.
    assert by_label["1 fail-slow acceptor"][0] == "fast"
    assert by_label["1 fail-slow acceptor"][1] < 100.0
    # The slow path costs an extra round.
    assert by_label["2 conflicts (slow path)"][1] > by_label["unanimous (fast path)"][1]
