"""Shared helpers for the benchmark suite.

Profiles: set ``REPRO_BENCH_PROFILE=smoke`` for a fast shape-only pass
(shorter windows, fewer clients; crash-timing assertions are skipped).
The default ``paper`` profile reproduces the EXPERIMENTS.md numbers.
"""

from __future__ import annotations

import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def paper_profile() -> bool:
    return os.environ.get("REPRO_BENCH_PROFILE", "paper") == "paper"


def save_result(name: str, text: str) -> None:
    """Persist a rendered table so EXPERIMENTS.md can reference it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
