"""Ablations of the §2.2 root causes and DepFast's countermeasures.

Each ablation toggles exactly one design choice DESIGN.md calls out and
shows the corresponding pathology appear or disappear:

* quorum-aware discard + bounded buffers (DepFast framework policy) vs
  blind unbounded buffering — leader-side backlog under a CPU-slow
  follower;
* TiDB's EntryCache size — a large cache removes the blocking disk reads
  and recovers throughput;
* MongoDB's flow-control checkpoint — disabling it removes the stalls.
"""

from dataclasses import replace

from conftest import paper_profile, save_result

from repro.baselines import deploy_baseline
from repro.baselines.mongo_like import MongoLikeRsm
from repro.baselines.tidb_like import TidbLikeRsm
from repro.cluster.cluster import Cluster
from repro.cluster.node import NodeSpec
from repro.faults.injector import FaultInjector
from repro.raft.config import RaftConfig
from repro.raft.service import deploy_depfast_raft
from repro.workload.driver import ClosedLoopDriver
from repro.workload.ycsb import YcsbWorkload

GROUP = ["s1", "s2", "s3"]


def _drive(cluster, n_clients=48, until=8000.0):
    workload = YcsbWorkload(
        cluster.rng.stream("ycsb"), record_count=100_000, value_size=1000
    )
    driver = ClosedLoopDriver(cluster, GROUP, workload, n_clients=n_clients)
    driver.start()
    cluster.run(until_ms=until)
    return driver.report(2000.0, until)


def _depfast_run(discard: bool, buffer_limit, fault="cpu_slow"):
    cluster = Cluster(seed=42)
    config = RaftConfig(preferred_leader="s1", discard_on_quorum=discard)
    spec = NodeSpec(send_buffer_limit=buffer_limit)
    deploy_depfast_raft(cluster, GROUP, config=config, spec=spec)
    FaultInjector(cluster).inject("s3", fault)
    report = _drive(cluster)
    backlog = cluster.network.buffered_bytes_from("s1")
    return report, backlog


def test_ablation_quorum_discard_and_buffer_bound(benchmark):
    def run():
        protected, protected_backlog = _depfast_run(
            discard=True, buffer_limit=4 * 1024 * 1024
        )
        blind, blind_backlog = _depfast_run(discard=False, buffer_limit=None)
        return protected, protected_backlog, blind, blind_backlog

    protected, protected_backlog, blind, blind_backlog = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    lines = [
        "Ablation: framework fail-slow policy (quorum discard + bounded buffers)",
        f"  protected: backlog={protected_backlog/2**20:8.2f} MB  "
        f"tput={protected.throughput_ops_s:7.0f} ops/s",
        f"  blind:     backlog={blind_backlog/2**20:8.2f} MB  "
        f"tput={blind.throughput_ops_s:7.0f} ops/s",
    ]
    save_result("ablation_discard", "\n".join(lines))
    # Blind buffering accumulates orders of magnitude more leader memory.
    assert protected_backlog <= 4 * 1024 * 1024
    assert blind_backlog > 4 * protected_backlog


def test_ablation_tidb_entry_cache_size(benchmark):
    def run_with_cache(cache_entries):
        cluster = Cluster(seed=42)
        config = TidbLikeRsm.default_config("s1")
        config = replace(config, entry_cache_entries=cache_entries)
        nodes = deploy_baseline(cluster, TidbLikeRsm, GROUP, config=config)
        FaultInjector(cluster).inject("s3", "cpu_slow")
        report = _drive(cluster)
        return report, nodes["s1"].blocking_reads

    def run():
        small = run_with_cache(512)
        large = run_with_cache(1_000_000)  # effectively infinite
        return small, large

    (small_report, small_reads), (large_report, large_reads) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    lines = [
        "Ablation: TiDB-like EntryCache size under a cpu_slow follower",
        f"  cache=512:     blocking_reads={small_reads:6d}  "
        f"tput={small_report.throughput_ops_s:7.0f} ops/s",
        f"  cache=1M:      blocking_reads={large_reads:6d}  "
        f"tput={large_report.throughput_ops_s:7.0f} ops/s",
    ]
    save_result("ablation_entry_cache", "\n".join(lines))
    assert small_reads > 0
    assert large_reads == 0
    if paper_profile():
        assert large_report.throughput_ops_s > 1.15 * small_report.throughput_ops_s


def test_ablation_mongo_checkpoint_interval(benchmark):
    def run_with_checkpoint(every_batches):
        cluster = Cluster(seed=42)
        nodes = deploy_baseline(cluster, MongoLikeRsm, GROUP)
        nodes["s1"].checkpoint_every_batches = every_batches
        FaultInjector(cluster).inject("s3", "cpu_slow")
        report = _drive(cluster)
        return report, nodes["s1"].checkpoint_stalls

    def run():
        frequent = run_with_checkpoint(8)
        disabled = run_with_checkpoint(10**9)
        return frequent, disabled

    (freq_report, freq_stalls), (off_report, off_stalls) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    lines = [
        "Ablation: MongoDB-like flow-control checkpoint under a cpu_slow follower",
        f"  checkpoint every 8 batches: stalls={freq_stalls:5d}  "
        f"tput={freq_report.throughput_ops_s:7.0f} ops/s  p99={freq_report.p99_latency_ms:7.2f} ms",
        f"  checkpoint disabled:        stalls={off_stalls:5d}  "
        f"tput={off_report.throughput_ops_s:7.0f} ops/s  p99={off_report.p99_latency_ms:7.2f} ms",
    ]
    save_result("ablation_checkpoint", "\n".join(lines))
    assert freq_stalls > 0
    assert off_stalls == 0
    if paper_profile():
        assert off_report.throughput_ops_s > 1.2 * freq_report.throughput_ops_s
        assert off_report.p99_latency_ms < 0.6 * freq_report.p99_latency_ms
