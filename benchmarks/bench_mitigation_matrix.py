"""The closed-loop acceptance matrix: detect → mitigate → recover.

Replays Table 1 leader faults (plus a flapping variant and a fault-free
control) with the full detection/mitigation loop on and off, and holds
the loop to the PR's bar:

* detector-on recovers throughput >= 2x faster than detector-off for at
  least three fault types (off is censored at the horizon whenever the
  fail-slow leader simply keeps its lease);
* the fault-free control run performs zero mitigations — no
  false-positive demotions, transfers, or suspicions;
* the flapping fault is re-detected on later pulses, not just the first.
"""

from conftest import paper_profile, save_result

from repro.bench.mitigation import (
    MitigationParams,
    render_mitigation_matrix,
    run_mitigation_matrix,
    smoke_params,
)


def test_mitigation_matrix(benchmark):
    params = MitigationParams() if paper_profile() else smoke_params()

    result = benchmark.pedantic(
        lambda: run_mitigation_matrix(seed=7, params=params),
        rounds=1,
        iterations=1,
    )
    save_result("mitigation_matrix", render_mitigation_matrix(result))

    # Zero mitigation actions on a healthy cluster.
    assert result.control.false_positive_demotions == 0
    assert result.control.suspicions == 0
    assert result.control.transfers == 0

    # The loop pays for itself on at least three Table 1 fault types.
    assert len(result.faults_at_2x) >= 3, (
        f"only {result.faults_at_2x} recovered >=2x faster"
    )

    # Flapping slowness is caught again on later pulses (the one-shot
    # detector regression), and the loop still recovers throughput.
    assert result.flapping is not None
    assert result.flapping.suspicions >= 2
    assert result.flapping.recovered
