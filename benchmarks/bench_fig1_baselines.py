"""Figure 1: baseline RSMs (mongo/tidb/rethink-like) with a fail-slow follower.

Regenerates all three panels: normalized throughput, average latency and
P99 latency for 3 systems × 6 fault types (plus the no-fault baseline).

Expected shape: double-digit throughput loss and latency inflation with
multi-x P99 blowups somewhere in the grid, and the RethinkDB-like leader
crashing under CPU slowness (paper §2.2 / Figure 1).
"""

from conftest import paper_profile, save_result

from repro.bench.experiments import bench_params
from repro.bench.figure1 import render_figure1, run_figure1, shape_checks


def test_figure1_baselines_under_fail_slow_follower(benchmark):
    params = bench_params()
    results = benchmark.pedantic(run_figure1, args=(params,), rounds=1, iterations=1)
    save_result("figure1", render_figure1(results))
    checks = shape_checks(results)
    if not paper_profile():
        # Smoke profile: the short window cannot reproduce OOM timing.
        checks.pop("rethink_leader_crashes_under_cpu_slowness", None)
    failed = [name for name, ok in checks.items() if not ok]
    assert not failed, f"Figure 1 shape checks failed: {failed}"
