"""The disk-breaker acceptance matrix: attribute → trip → absorb → drain.

Replays shared-backend disk faults on both followers (plus a fault-free
control) with the write-behind circuit breaker on and off, and holds the
loop to the PR's bar:

* breaker-on recovers throughput >= 2x faster than breaker-off for every
  disk fault row (off is censored at the horizon whenever the quorum
  stays pinned to the crawling disks);
* the fault-free control run trips zero breakers;
* the write-behind queue never exceeds its staleness budget (bytes or
  lag) on any run;
* crashing a follower while its breaker is OPEN loses the queued
  entries (honest recovery) yet the group converges and the recorded
  client history stays linearizable.
"""

import pytest
from conftest import paper_profile, save_result

from repro.bench.breaker import (
    BreakerParams,
    render_breaker_matrix,
    run_breaker_matrix,
    smoke_params,
)

# The paper-profile matrix runs for minutes; CI exercises the smoke
# profile through `python -m repro breaker --smoke` in the bench lane.
pytestmark = pytest.mark.slow


def test_breaker_matrix(benchmark):
    params = BreakerParams() if paper_profile() else smoke_params()

    result = benchmark.pedantic(
        lambda: run_breaker_matrix(seed=7, params=params),
        rounds=1,
        iterations=1,
    )
    save_result("breaker_matrix", render_breaker_matrix(result))

    # Zero trips on a healthy cluster.
    assert result.control.false_trips == 0
    assert result.control.trips == 0

    # The breaker pays for itself on every disk fault row.
    assert len(result.faults_at_2x) == len(result.pairs), (
        f"only {result.faults_at_2x} recovered >=2x faster"
    )

    # Bounded staleness held everywhere.
    assert result.staleness_ok

    # Crash-during-tripped-breaker: queued entries die with the process,
    # but safety holds.
    assert result.chaos is not None
    assert result.chaos.linearizable
    assert result.chaos.converged
    assert result.chaos.double_applies == 0
    assert result.chaos.breaker_open_at_crash
    assert result.chaos.lost_on_recovery > 0
