"""§5 extension: cross-shard transactions under fail-slow minorities.

Three DepFastRaft shards (s1–s9), 2PC transactions spanning shards from
closed-loop coordinators. With one fail-slow follower in *every* shard,
commit throughput and latency hold (each shard's prepare/commit records
commit on its majority quorum); a fail-slow shard *leader*, by contrast,
gates every transaction touching that shard — the same residual red edge
as Figure 2.
"""

from conftest import save_result

from repro.cluster.cluster import Cluster
from repro.faults.injector import FaultInjector
from repro.sim.metrics import LatencyRecorder
from repro.txn.store import deploy_sharded_store
from repro.workload.stats import WorkloadReport


def _run(fault_on: str, n_coordinators: int = 16, end_ms: float = 6000.0):
    """fault_on: 'none' | 'followers' | 'leader'."""
    cluster = Cluster(seed=31)
    store = deploy_sharded_store(cluster, n_shards=3, replicas=3)
    store.wait_for_leaders()
    injector = FaultInjector(cluster)
    if fault_on == "followers":
        for shard in store.shard_map.shard_names():
            injector.inject(store.shard_map.group_of(shard)[-1], "cpu_slow")
    elif fault_on == "leader":
        injector.inject(store.shard_map.group_of("shard0")[0], "cpu_slow")

    client = cluster.add_client("cx")
    client.start()
    recorder = LatencyRecorder("txn")
    rng = cluster.rng.stream("txn-keys")
    aborted = [0]

    def coordinator_loop(coordinator, worker: int):
        count = 0
        while True:
            count += 1
            # Two keys, usually on different shards.
            writes = {
                f"k{rng.randrange(10_000)}": f"w{worker}-{count}",
                f"k{rng.randrange(10_000)}": f"w{worker}-{count}b",
            }
            started = coordinator.node.runtime.now
            outcome = yield from coordinator.transact(writes)
            if outcome.committed:
                recorder.record(coordinator.node.runtime.now, outcome.latency_ms)
            else:
                aborted[0] += 1

    for worker in range(n_coordinators):
        coordinator = store.coordinator(client)
        client.runtime.spawn(coordinator_loop(coordinator, worker))
    cluster.run(until_ms=end_ms)
    report = WorkloadReport.from_recorder(recorder, 2000.0, end_ms, errors=aborted[0])
    return report


def test_transactions_tolerate_fail_slow_shard_minorities(benchmark):
    def run():
        return {
            condition: _run(condition)
            for condition in ("none", "followers", "leader")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Cross-shard 2PC under fail-slow (cpu_slow) nodes:",
        f"{'condition':<22}{'txn/s':>10}{'avg (ms)':>10}{'p99 (ms)':>10}{'aborts':>8}",
    ]
    for condition, report in results.items():
        label = {
            "none": "healthy",
            "followers": "1 slow follower/shard",
            "leader": "1 slow shard LEADER",
        }[condition]
        lines.append(
            f"{label:<22}{report.throughput_ops_s:>10.0f}{report.avg_latency_ms:>10.2f}"
            f"{report.p99_latency_ms:>10.2f}{report.errors:>8d}"
        )
    save_result("txn_failslow", "\n".join(lines))

    healthy = results["none"]
    followers = results["followers"]
    leader = results["leader"]
    assert healthy.throughput_ops_s > 500.0
    # Slow minorities in every shard: within a tight band of healthy.
    drift = abs(followers.throughput_ops_s - healthy.throughput_ops_s)
    assert drift / healthy.throughput_ops_s < 0.08
    # A slow shard leader gates transactions (the known residual case).
    assert leader.throughput_ops_s < 0.7 * healthy.throughput_ops_s
