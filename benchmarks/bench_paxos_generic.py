"""§4's genericity claim: a second protocol on DepFast, same tolerance.

"The design of DepFast is generic and is not specific to any distributed
protocols." Multi-Paxos (Prepare/Accept/Commit — the §2.3 spaghetti
example) runs on the identical runtime, framework and fault harness as
DepFastRaft, and shows the same Figure 3 shape: every metric inside a
tight band under every Table 1 fault on a follower/acceptor.
"""

from conftest import paper_profile, save_result

from repro.bench.experiments import bench_params, run_fault_sweep
from repro.bench.report import METRICS, format_figure_table, max_drift
from repro.faults.catalog import fault_names


def test_multipaxos_is_fail_slow_tolerant_too(benchmark):
    params = bench_params()

    def run():
        return {"paxos 3 nodes": run_fault_sweep("paxos", fault_names(), params)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    panels = [
        format_figure_table(results, metric, title=f"Multi-Paxos on DepFast: {metric}")
        for metric in METRICS
    ]
    sweeps = results["paxos 3 nodes"]
    drifts = {metric: max_drift(sweeps, metric) for metric in METRICS}
    panels.append(
        "drift vs no-fault: "
        + ", ".join(f"{metric}={value*100:.1f}%" for metric, value in drifts.items())
    )
    save_result("paxos_generic", "\n\n".join(panels))
    band = 0.05 if paper_profile() else 0.15
    for metric, drift in drifts.items():
        assert drift <= band, f"paxos {metric} drift {drift:.3f} > {band}"
    assert sweeps["none"].throughput_ops_s > 2000.0
    assert not any(report.crashed for report in sweeps.values())
