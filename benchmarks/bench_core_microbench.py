"""Microbenchmarks of the DepFast core: kernel, events, coroutines.

These are real (wall-clock) pytest-benchmark measurements of the library
primitives themselves — useful for tracking regressions in the simulator
substrate that every experiment above depends on.
"""

from repro.events.basic import ValueEvent
from repro.events.compound import QuorumEvent
from repro.runtime.runtime import Runtime
from repro.sim.kernel import Kernel
from repro.sim.resources import CpuResource


def test_kernel_schedule_and_run(benchmark):
    def run():
        kernel = Kernel()
        for i in range(1000):
            kernel.schedule(float(i % 97), lambda: None)
        kernel.run_until_idle()

    benchmark(run)


def test_event_trigger_fanout(benchmark):
    def run():
        event = ValueEvent()
        hits = []
        for _ in range(100):
            event.subscribe(lambda _ev: hits.append(1))
        event.set(1)
        return len(hits)

    assert benchmark(run) == 100


def test_quorum_event_composition(benchmark):
    def run():
        quorum = QuorumEvent(quorum=51, n_total=100)
        children = [ValueEvent() for _ in range(100)]
        for child in children:
            quorum.add(child)
        for child in children[:51]:
            child.set(1)
        return quorum.ready()

    assert benchmark(run)


def test_coroutine_spawn_and_wait_cycle(benchmark):
    def run():
        kernel = Kernel()
        runtime = Runtime(kernel, node="n", cpu=CpuResource(kernel))
        done = []

        def task():
            for _ in range(10):
                yield runtime.sleep(1.0)
            done.append(True)

        for _ in range(50):
            runtime.spawn(task())
        kernel.run_until_idle()
        return len(done)

    assert benchmark(run) == 50


def test_cpu_resource_throughput(benchmark):
    def run():
        kernel = Kernel()
        cpu = CpuResource(kernel, base_rate=4.0)
        completed = []
        for _ in range(1000):
            cpu.submit(0.1, on_done=lambda: completed.append(1))
        kernel.run_until_idle()
        return len(completed)

    assert benchmark(run) == 1000
