"""Tail-at-scale matrix: hedged/speculative execution vs quorum events.

Races four fail-slow defenses — baseline Raft, DepFastRaft (quorum
discard + bounded buffers), hedged-Raft (racing instead of discarding),
and hedged+DepFast — across the six Table 1 follower faults plus a
fault-free control, and holds the result to the PR's bar:

* at least one fault class where a hedged system beats DepFastRaft on
  post-onset P99 client latency;
* at least one fault class where hedging *re-couples* the slowness the
  quorum events decoupled: duplicate work aimed at the faulted link
  (amplification > 1) without a latency or throughput gain;
* the fault-free control pays a bounded hedging tax — duplicate-work
  amplification stays under 10% (the P95 trigger fires on ~5% of sends
  by construction);
* speculative reads never roll back in any steady-leader run (rollback
  is reserved for actual term changes).
"""

from conftest import paper_profile, save_result

from repro.bench.hedging import (
    CONTROL,
    HedgingParams,
    SMOKE_FAULTS,
    render_hedging_matrix,
    run_hedging_matrix,
    smoke_params,
)


def test_hedging_matrix(benchmark):
    if paper_profile():
        params, faults = HedgingParams(), None
    else:
        params, faults = smoke_params(), SMOKE_FAULTS

    result = benchmark.pedantic(
        lambda: run_hedging_matrix(faults=faults, seed=7, params=params),
        rounds=1,
        iterations=1,
    )
    save_result("hedging_matrix", render_hedging_matrix(result))

    # The head-to-head produced both halves of the story.
    wins = result.p99_wins()
    recoupled = result.recoupling()
    assert wins, "no fault class where hedging beat DepFastRaft on P99"
    assert recoupled, "no fault class where hedging re-coupled the straggler"

    # Fault-free control: the racing tax is bounded and reads are clean.
    for system in ("hedged", "hedged+depfast"):
        control = result.cells[CONTROL][system]
        assert control.amplification < 1.10, (
            f"{system}: control amplification {control.amplification:.3f}"
        )
        assert control.speculation_rollbacks == 0
        assert control.errors == 0

    # Hedge copies that reached a server were deduplicated, not
    # re-executed: dedup+abort accounts for copies actually delivered
    # (the remainder died in send buffers or were still in flight).
    for fault, row in result.cells.items():
        for run in row.values():
            delivered = run.hedges_deduped + run.hedges_aborted
            assert delivered <= run.append_hedges + run.probe_hedges, (
                f"{run.system}/{fault}: more dedups than hedges sent"
            )
