"""Figure 3: DepFastRaft with a minority of fail-slow followers.

Regenerates all three panels (absolute throughput, average latency, P99)
for 3- and 5-node groups under every Table 1 fault, plus the paper's
headline check: every metric stays within a 5% band of the no-fault run.
"""

from conftest import paper_profile, save_result

from repro.bench.experiments import bench_params
from repro.bench.figure3 import render_figure3, run_figure3, shape_checks


def test_figure3_depfastraft_fail_slow_tolerance(benchmark):
    params = bench_params()
    results = benchmark.pedantic(run_figure3, args=(params,), rounds=1, iterations=1)
    save_result("figure3", render_figure3(results))
    band = 0.05 if paper_profile() else 0.15
    checks = shape_checks(results, band=band)
    failed = [name for name, ok in checks.items() if not ok]
    assert not failed, f"Figure 3 shape checks failed: {failed}"
