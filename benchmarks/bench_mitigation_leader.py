"""§5 future work: detect a fail-slow *leader* and re-elect it away.

A fail-slow leader is the one case Figure 3's quorums cannot hide (and the
paper's Figure 2 shows as the residual client→leader red edge). This bench
injects CPU slowness into the leader at t=3s and compares:

* vanilla DepFastRaft — heartbeats still flow, so no re-election ever
  happens and throughput stays collapsed;
* DepFastRaft + the trace-point detector — followers notice a backed-up,
  non-committing leader, suspect it, elect a healthy replacement, and the
  fail-slow node becomes a *follower*, which DepFastRaft tolerates.
"""

from conftest import paper_profile, save_result

from repro.cluster.cluster import Cluster
from repro.detector.leader_detector import attach_detectors
from repro.faults.injector import FaultInjector
from repro.raft.config import RaftConfig
from repro.raft.service import deploy_depfast_raft, find_leader, wait_for_leader
from repro.workload.driver import ClosedLoopDriver
from repro.workload.ycsb import YcsbWorkload

GROUP = ["s1", "s2", "s3"]
FAULT_AT = 3000.0
END = 20_000.0


def _run(with_detector: bool):
    cluster = Cluster(seed=19)
    raft = deploy_depfast_raft(cluster, GROUP, config=RaftConfig(preferred_leader="s1"))
    if with_detector:
        attach_detectors(raft)
    wait_for_leader(cluster, raft)
    workload = YcsbWorkload(cluster.rng.stream("ycsb"), record_count=100_000, value_size=1000)
    driver = ClosedLoopDriver(cluster, GROUP, workload, n_clients=32)
    driver.start()
    cluster.run(until_ms=FAULT_AT)
    FaultInjector(cluster).inject("s1", "cpu_slow")
    cluster.run(until_ms=END)
    healthy = driver.report(1000.0, FAULT_AT)
    tail = driver.report(END - 6000.0, END)
    leader = find_leader(raft)
    return healthy, tail, leader.id if leader else None


def test_fail_slow_leader_mitigation(benchmark):
    def run():
        return _run(with_detector=False), _run(with_detector=True)

    (vanilla, mitigated) = benchmark.pedantic(run, rounds=1, iterations=1)
    v_healthy, v_tail, v_leader = vanilla
    m_healthy, m_tail, m_leader = mitigated
    lines = [
        "Mitigation: fail-slow LEADER (cpu_slow on s1 at t=3s)",
        f"  vanilla:   leader stays {v_leader};   tput {v_healthy.throughput_ops_s:7.0f} -> "
        f"{v_tail.throughput_ops_s:7.0f} ops/s",
        f"  detector:  leader now  {m_leader};   tput {m_healthy.throughput_ops_s:7.0f} -> "
        f"{m_tail.throughput_ops_s:7.0f} ops/s",
    ]
    save_result("mitigation", "\n".join(lines))
    assert v_leader == "s1"  # vanilla Raft never demotes a slow leader
    assert m_leader != "s1"  # the detector's re-election demoted it
    assert v_tail.throughput_ops_s < 0.6 * v_healthy.throughput_ops_s
    if paper_profile():
        # Post-mitigation throughput recovers; a fail-slow *follower* is
        # well tolerated (Figure 3).
        assert m_tail.throughput_ops_s > 2.0 * v_tail.throughput_ops_s
