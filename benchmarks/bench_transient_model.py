"""§3.3 transient fail-slow probability model, validated against the sim.

Prints the impact-radius table (P[a broadcast wait is delayed by a
transient] for every wait shape k/n) and validates the closed form against
end-to-end DepFastRaft: under ambient BackgroundJitter, client-visible P99
stays near the healthy baseline because the commit wait is a majority
quorum, while the model shows a k = n wait would eat an order of magnitude
more transients.
"""

from conftest import save_result

from repro.bench.experiments import ExperimentParams, run_rsm_experiment
from repro.trace.models import impact_radius_table, prob_quorum_delayed


def test_transient_impact_radius_model(benchmark):
    p_transient = 0.05

    def run():
        table = impact_radius_table(5, p_transient)
        params = ExperimentParams(background_jitter=False, end_ms=8000.0)
        jittered = ExperimentParams(background_jitter=True, end_ms=8000.0)
        calm = run_rsm_experiment("depfast", "none", params)
        noisy = run_rsm_experiment("depfast", "none", jittered)
        return table, calm, noisy

    table, calm, noisy = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"Transient model: P(wait delayed) per wait shape, p={p_transient} per replica:",
        f"{'k/n':>6}  {'P(delayed)':>11}  shape",
    ]
    for row in table:
        lines.append(
            f"{row['k']}/{row['n']:<4}  {row['p_delayed']:>11.5f}  {row['label']}"
        )
    lines += [
        "",
        "End-to-end DepFastRaft (majority commit wait) under ambient jitter:",
        f"  calm:     tput={calm.throughput_ops_s:7.0f} ops/s  p99={calm.p99_latency_ms:7.2f} ms",
        f"  jittered: tput={noisy.throughput_ops_s:7.0f} ops/s  p99={noisy.p99_latency_ms:7.2f} ms",
    ]
    save_result("transient_model", "\n".join(lines))

    # Model shape: quorum slack suppresses transients combinatorially.
    p_single = prob_quorum_delayed(1, 1, p_transient)
    p_majority = prob_quorum_delayed(5, 3, p_transient)
    p_all = prob_quorum_delayed(5, 5, p_transient)
    assert p_majority < p_single / 5.0
    assert p_all > 4.0 * p_single
    # End to end: ambient transients cost DepFastRaft little throughput.
    assert noisy.throughput_ops_s > 0.85 * calm.throughput_ops_s
