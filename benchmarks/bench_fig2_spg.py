"""Figure 2: the slowness propagation graph of 3-shard DepFastRaft.

Regenerates the figure's content: a node-granularity SPG over s1–s9 and
clients c1–c3 where intra-shard waits are green quorum edges (2/3) and the
only red single-wait edges run from clients to shard leaders.
"""

from conftest import save_result

from repro.bench.figure2 import render_figure2, run_figure2, shape_checks


def test_figure2_slowness_propagation_graph(benchmark):
    result = benchmark.pedantic(run_figure2, rounds=1, iterations=1)
    save_result("figure2", render_figure2(result))
    checks = shape_checks(result)
    failed = [name for name, ok in checks.items() if not ok]
    assert not failed, f"Figure 2 shape checks failed: {failed}"
    assert result.wait_records > 1000  # thousands of aggregated waits
