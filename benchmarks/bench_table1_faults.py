"""Table 1: fault catalog — verifies each injection's resource-level effect."""

from conftest import save_result

from repro.bench.table1 import render_table1, run_table1, shape_checks


def test_table1_fault_catalog(benchmark):
    effects = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    save_result("table1", render_table1(effects))
    checks = shape_checks(effects)
    failed = [name for name, ok in checks.items() if not ok]
    assert not failed, f"Table 1 checks failed: {failed}"
