"""Chain replication vs quorum replication under one fail-slow node.

The design-tradeoff analysis §3.3 proposes: chain replication (every write
flows through every node — 1/1 waits) against DepFastRaft (majority
quorums) on identical hardware, workload and fault. The chain collapses to
the slow node's pace; the quorum system doesn't notice. The SPG/tolerance
checker predicts exactly this from the wait structure alone.
"""

from conftest import save_result

from repro.chain import deploy_chain
from repro.cluster.cluster import Cluster
from repro.faults.injector import FaultInjector
from repro.raft.config import RaftConfig
from repro.raft.service import deploy_depfast_raft
from repro.trace.verify import check_fail_slow_tolerance
from repro.workload.driver import ClosedLoopDriver
from repro.workload.ycsb import YcsbWorkload

GROUP = ["s1", "s2", "s3"]
FAULTS = ["none", "cpu_slow", "disk_slow", "network_slow"]


def _run(system: str, fault: str):
    cluster = Cluster(seed=42)
    if system == "chain":
        deploy_chain(cluster, GROUP)
    else:
        deploy_depfast_raft(cluster, GROUP, config=RaftConfig(preferred_leader="s1"))
    if fault != "none":
        FaultInjector(cluster).inject("s2", fault)  # middle node / follower
    workload = YcsbWorkload(cluster.rng.stream("ycsb"), record_count=100_000, value_size=1000)
    driver = ClosedLoopDriver(cluster, GROUP, workload, n_clients=32)
    driver.start()
    cluster.run(until_ms=8000.0)
    report = driver.report(2000.0, 8000.0)
    tolerance = check_fail_slow_tolerance(cluster.tracer.records, [GROUP])
    return report, tolerance


def test_chain_vs_quorum_fail_slow(benchmark):
    def run():
        results = {}
        for system in ("chain", "depfast"):
            for fault in FAULTS:
                results[(system, fault)] = _run(system, fault)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Chain replication vs DepFastRaft, one fail-slow node (s2):",
        f"{'system':<10}{'fault':<15}{'tput (ops/s)':>14}{'normalized':>12}{'checker':>10}",
    ]
    for system in ("chain", "depfast"):
        base = results[(system, "none")][0].throughput_ops_s
        for fault in FAULTS:
            report, tolerance = results[(system, fault)]
            verdict = "PASS" if tolerance.tolerant else "FAIL"
            lines.append(
                f"{system:<10}{fault:<15}{report.throughput_ops_s:>14.0f}"
                f"{report.throughput_ops_s / base:>12.2f}{verdict:>10}"
            )
    save_result("chain_vs_quorum", "\n".join(lines))

    # The wait-structure verdicts.
    assert not results[("chain", "none")][1].tolerant       # red path
    assert results[("depfast", "none")][1].tolerant          # green quorums
    # The performance consequences.
    chain_base = results[("chain", "none")][0].throughput_ops_s
    chain_slow = results[("chain", "cpu_slow")][0].throughput_ops_s
    assert chain_slow < 0.5 * chain_base
    raft_base = results[("depfast", "none")][0].throughput_ops_s
    for fault in FAULTS[1:]:
        raft_fault = results[("depfast", fault)][0].throughput_ops_s
        assert abs(raft_fault - raft_base) / raft_base < 0.05
