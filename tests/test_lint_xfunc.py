"""Whole-program depfast-lint: interprocedural shape flow, cross-module
resolution, baselines, SARIF, and output determinism."""

import json
import time
import textwrap
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    RULES,
    apply_baseline,
    load_baseline,
    render_baseline,
    render_json,
    render_sarif,
    run_lint,
    scan_module,
    scan_paths,
)
from repro.analysis.lint import EXIT_CLEAN, EXIT_FINDINGS
from repro.cli import main as cli_main

REPO = Path(__file__).resolve().parent.parent
FIXTURES = REPO / "tests" / "fixtures"
LINT_FIXTURES = FIXTURES / "lint"
SRC = REPO / "src" / "repro"


def write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return str(path)


class TestInterproceduralShapes:
    """Shapes flow through returns, parameters and self. attributes."""

    def test_two_hop_return_flow_fires_df001_and_df002(self):
        result = run_lint([str(LINT_FIXTURES / "df001_two_hop.py")])
        rules = {f.rule_id for f in result.findings}
        assert rules == {"DF001", "DF002"}
        # Both fire at the wait site, two call hops from the constructor.
        assert all(f.lineno == 16 for f in result.findings)

    def test_parameter_flow_upgrades_helper_wait_site(self, tmp_path):
        # The helper is module-level, lexically outside any replica class;
        # the event shape arrives through its parameter and the replica
        # calling context arrives through the call graph.
        path = write(
            tmp_path,
            "node.py",
            """
            from repro.events.basic import Event


            def await_ack(ack):
                result = yield ack.wait(timeout_ms=50.0)
                return result


            class Node:
                def __init__(self, node_id, group):
                    if node_id not in group:
                        raise ValueError(node_id)
                    self.id = node_id

                def replicate(self, op):
                    ack = Event(name="ack", source="s2")
                    result = yield from await_ack(ack)
                    return result
            """,
        )
        result = run_lint([path])
        solo = [f for f in result.findings if f.rule_id == "DF001"]
        assert len(solo) == 1
        assert solo[0].qualname == "await_ack"

    def test_self_attribute_flow_resolves_cross_method(self, tmp_path):
        scan = scan_module(
            write(
                tmp_path,
                "gate.py",
                """
                from repro.events.compound import QuorumEvent


                class Gate:
                    def __init__(self, node_id, group):
                        if node_id not in group:
                            raise ValueError(node_id)
                        self.id = node_id
                        self.gate = QuorumEvent(2, n_total=3, name="gate")

                    def wait_commit(self):
                        result = yield self.gate.wait(timeout_ms=100.0)
                        return result
                """,
            )
        )
        sites = scan.by_name["wait_commit"].wait_sites
        assert len(sites) == 1
        assert sites[0].shape.is_quorum()
        assert sites[0].has_timeout

    def test_cross_module_two_hop_needs_xfunc(self, tmp_path):
        write(
            tmp_path,
            "helpers.py",
            """
            from repro.events.basic import Event


            def remote_ack(op):
                return make_ack(op)


            def make_ack(op):
                return Event(name="ack", source="s2")
            """,
        )
        write(
            tmp_path,
            "node.py",
            """
            from helpers import remote_ack


            class Node:
                def __init__(self, node_id, group):
                    if node_id not in group:
                        raise ValueError(node_id)
                    self.id = node_id

                def replicate(self, op):
                    ack = remote_ack(op)
                    result = yield ack.wait()
                    return result
            """,
        )
        whole = run_lint([str(tmp_path)])
        assert {f.rule_id for f in whole.findings} == {"DF001", "DF002"}
        # --no-xfunc: each module on its own, the import is opaque, and
        # the linter (which only flags what it resolved) stays silent.
        solo = run_lint([str(tmp_path)], xfunc=False)
        assert solo.findings == []


class TestDf004BothDirections:
    def test_two_hop_leak_fires_at_drop_site(self):
        result = run_lint([str(LINT_FIXTURES / "df004_two_hop.py")])
        leaks = [f for f in result.findings if f.rule_id == "DF004"]
        assert len(leaks) == 1
        assert leaks[0].lineno == 12
        assert "TwoHopLeaker._announce" in leaks[0].message

    def test_consumption_in_callee_is_not_a_leak(self):
        result = run_lint([str(LINT_FIXTURES / "df004_consumed_ok.py")])
        assert result.findings == []


class TestFixpointTermination:
    def test_mutually_recursive_helpers_terminate(self):
        start = time.monotonic()
        scans = scan_paths([str(FIXTURES / "xfunc")])
        assert time.monotonic() - start < 5.0
        program = scans[0].program
        names = {f.name for f in program.functions}
        assert {"ping", "pong"} <= names
        # The cycle's conflicting sources resolve to unknown, never to a
        # wrong concrete shape (and never to a finding).
        result = run_lint([str(FIXTURES / "xfunc")])
        assert result.findings == []


class TestDeterministicOutput:
    @settings(max_examples=10, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_output_byte_identical_under_file_permutation(self, rng):
        files = sorted(str(p) for p in LINT_FIXTURES.glob("*.py"))
        rng.shuffle(files)
        shuffled = render_json(run_lint(files), strict=True, root=str(REPO))
        baseline = render_json(
            run_lint([str(LINT_FIXTURES)]), strict=True, root=str(REPO)
        )
        assert shuffled == baseline

    def test_repeated_runs_byte_identical(self):
        first = render_json(run_lint([str(LINT_FIXTURES)]), root=str(REPO))
        second = render_json(run_lint([str(LINT_FIXTURES)]), root=str(REPO))
        assert first == second


class TestBaseline:
    def test_baseline_accepts_known_findings(self, tmp_path):
        result = run_lint([str(LINT_FIXTURES)])
        assert result.active(strict=True)
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(render_baseline(result.findings))

        fresh = run_lint([str(LINT_FIXTURES)])
        apply_baseline(fresh.findings, load_baseline(str(baseline_path)))
        assert fresh.active(strict=True) == []
        assert fresh.exit_code(strict=True) == EXIT_CLEAN

    def test_new_findings_still_gate(self, tmp_path):
        result = run_lint([str(LINT_FIXTURES)])
        accepted = load_baseline_from(render_baseline(result.findings))
        # Drop one fingerprint: that finding is "new" again.
        removed = sorted(accepted)[0]
        accepted.discard(removed)

        fresh = run_lint([str(LINT_FIXTURES)])
        apply_baseline(fresh.findings, accepted)
        active = fresh.active(strict=True)
        assert len(active) == 1
        assert fresh.exit_code(strict=True) == EXIT_FINDINGS

    def test_cli_write_then_gate_roundtrip(self, tmp_path, capsys):
        baseline_path = str(tmp_path / "baseline.json")
        code = cli_main(
            ["lint", str(LINT_FIXTURES), "--write-baseline", baseline_path]
        )
        capsys.readouterr()
        assert code == EXIT_CLEAN
        # Without the baseline the fixtures fail; with it they pass.
        assert (
            cli_main(["lint", str(LINT_FIXTURES), "--strict"]) == EXIT_FINDINGS
        )
        capsys.readouterr()
        code = cli_main(
            [
                "lint",
                str(LINT_FIXTURES),
                "--strict",
                "--baseline",
                baseline_path,
            ]
        )
        out = capsys.readouterr().out
        assert code == EXIT_CLEAN
        assert "baselined" in out


def load_baseline_from(text):
    payload = json.loads(text)
    return set(payload["fingerprints"])


class TestSarif:
    def test_sarif_structure(self):
        result = run_lint([str(LINT_FIXTURES)])
        payload = json.loads(render_sarif(result, root=str(REPO)))
        assert payload["version"] == "2.1.0"
        assert payload["$schema"].endswith("sarif-schema-2.1.0.json")
        assert len(payload["runs"]) == 1
        run = payload["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "depfast-lint"
        declared = {rule["id"] for rule in driver["rules"]}
        assert declared == set(RULES)
        for rule in driver["rules"]:
            assert rule["defaultConfiguration"]["level"] in ("error", "warning")
            assert rule["shortDescription"]["text"]
        assert len(run["results"]) == len(result.findings)
        for entry in run["results"]:
            assert entry["ruleId"] in RULES
            assert entry["level"] in ("error", "warning")
            assert entry["message"]["text"]
            location = entry["locations"][0]["physicalLocation"]
            assert not location["artifactLocation"]["uri"].startswith("/")
            assert location["region"]["startLine"] >= 1
            assert entry["partialFingerprints"]["depfast/v1"].count("::") == 2

    def test_sarif_cli_emits_parseable_json(self, capsys):
        code = cli_main(
            ["lint", str(LINT_FIXTURES / "clean_quorum.py"), "--format", "sarif"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == EXIT_CLEAN
        assert payload["runs"][0]["results"] == []


class TestWholeRepoLintBudget:
    def test_src_repro_lints_under_ten_seconds(self):
        start = time.monotonic()
        result = run_lint([str(SRC)])
        elapsed = time.monotonic() - start
        assert elapsed < 10.0, f"lint took {elapsed:.1f}s"
        assert result.scans  # actually scanned the tree


class TestSanitizerFixtures:
    @pytest.mark.parametrize(
        "name, rule, line",
        [
            ("df008_wall_clock.py", "DF008", 11),
            ("df009_unseeded_random.py", "DF009", 11),
            ("df010_unordered_iter.py", "DF010", 11),
            ("df011_stale_read.py", "DF011", 15),
        ],
    )
    def test_sanitizer_rule_fires_once_at_line(self, name, rule, line):
        result = run_lint([str(LINT_FIXTURES / name)])
        found = [f for f in result.findings if f.rule_id == rule]
        assert len(found) == 1, [f.rule_id for f in result.findings]
        assert found[0].lineno == line
        # Each sanitizer fixture carries a clean variant beside the bad
        # one; nothing else may fire.
        assert {f.rule_id for f in result.findings} == {rule}
