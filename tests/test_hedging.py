"""Hedged & speculative execution: primitive, server hooks, Raft variant.

Covers the racing side of the fail-slow story end to end:

* the P²-fed per-link delay estimator (warmup, clamps, tracer feeding);
* ``HedgedCall`` race mechanics — timers from the seeded kernel clock,
  loser cancellation through both the send-buffer and abort paths, and
  abort-ack classification;
* the server-side hedge hooks on ``RpcEndpoint._handle`` (dedup executes
  a group at most once; aborted groups answer with an abort-ack);
* ``HedgedRaftNode``: speculative reads on a steady leader, and
  linearizability under a flapping fail-slow nemesis with client
  sessions — hedged duplicates must not become double-applies.
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.node import NodeSpec
from repro.faults.chaos import Nemesis
from repro.hedging import HedgeDelayEstimator, HedgedCall, HedgePolicy, deploy_hedged_raft
from repro.net.rpc import HEDGE_ABORTED_REPLY, RpcError, is_hedge_abort_reply
from repro.raft.config import RaftConfig
from repro.raft.service import find_leader, wait_for_leader
from repro.trace.linearize import HistoryRecorder, check_linearizable
from repro.workload.driver import ClosedLoopDriver
from repro.workload.ycsb import YcsbWorkload


def make_cluster(n=3, **spec_kwargs):
    cluster = Cluster(seed=11)
    nodes = [
        cluster.add_node(f"s{i + 1}", spec=NodeSpec(**spec_kwargs))
        for i in range(n)
    ]
    return cluster, nodes


def register_sleeper(server, method="read", delay_ms=0.5):
    def handler(payload, src, _rt=server.runtime, _d=delay_ms):
        yield _rt.sleep(_d)
        return {"from": _rt.node, "value": payload}

    server.endpoint.register(method, handler)


class TestHedgeDelayEstimator:
    def test_warmup_returns_default(self):
        est = HedgeDelayEstimator(warmup_observations=5, default_delay_ms=30.0)
        for _ in range(4):
            est.on_rpc_complete("a", "b", "m", 10.0, 0.0)
        assert est.delay_ms("a", "b") == 30.0
        est.on_rpc_complete("a", "b", "m", 10.0, 0.0)
        assert est.delay_ms("a", "b") == pytest.approx(10.0)

    def test_unseen_link_returns_default(self):
        est = HedgeDelayEstimator(default_delay_ms=25.0)
        assert est.delay_ms("a", "nowhere") == 25.0
        assert est.observed("a", "nowhere") == 0
        assert est.raw_percentile_ms("a", "nowhere") == 0.0

    def test_estimates_are_clamped(self):
        est = HedgeDelayEstimator(
            warmup_observations=5, min_delay_ms=2.0, max_delay_ms=40.0
        )
        for _ in range(6):
            est.on_rpc_complete("a", "fast", "m", 0.1, 0.0)
            est.on_rpc_complete("a", "slow", "m", 500.0, 0.0)
        assert est.delay_ms("a", "fast") == 2.0
        assert est.delay_ms("a", "slow") == 40.0

    def test_links_are_independent(self):
        est = HedgeDelayEstimator(warmup_observations=1)
        est.on_rpc_complete("a", "b", "m", 5.0, 0.0)
        est.on_rpc_complete("a", "c", "m", 50.0, 0.0)
        assert est.delay_ms("a", "b") == pytest.approx(5.0)
        assert est.delay_ms("a", "c") == pytest.approx(50.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            HedgeDelayEstimator(percentile=1.5)
        with pytest.raises(ValueError):
            HedgeDelayEstimator(min_delay_ms=10.0, max_delay_ms=1.0)

    def test_attach_feeds_from_cluster_tracer(self):
        cluster, nodes = make_cluster(2)
        server, client = nodes
        register_sleeper(server)
        for node in nodes:
            node.start()
        est = HedgeDelayEstimator().attach(cluster.tracer)

        def caller():
            rpc = client.endpoint.call("s1", "read", {"k": 1}, size_bytes=50)
            yield rpc.wait(timeout_ms=100.0)

        client.runtime.spawn(caller())
        cluster.run(until_ms=200.0)
        assert est.observed("s2", "s1") == 1
        assert est.raw_percentile_ms("s2", "s1") > 0.0


class TestHedgedCall:
    def _racers(self, primary_delay_ms, hedge_delay_ms=0.5):
        """s1 races s2 (primary) against s3 (hedge candidate)."""
        cluster, nodes = make_cluster(3)
        caller, primary, backup = nodes
        register_sleeper(primary, delay_ms=primary_delay_ms)
        register_sleeper(backup, delay_ms=hedge_delay_ms)
        for node in nodes:
            node.start()
        return cluster, caller, primary, backup

    def test_fast_primary_wins_without_hedging(self):
        cluster, caller, primary, backup = self._racers(primary_delay_ms=0.5)
        done = []

        def logic():
            call = HedgedCall(
                caller.endpoint,
                ["s2", "s3"],
                "read",
                payload={"k": 1},
                size_bytes=50,
                policy=HedgePolicy(default_delay_ms=20.0),
            )
            yield call.wait(timeout_ms=100.0)
            done.append(call)

        caller.runtime.spawn(logic())
        cluster.run(until_ms=200.0)
        (call,) = done
        assert call.winner.to_node == "s2"
        assert call.hedges_sent == 0
        assert call.losers_cancelled == 0
        assert backup.endpoint.requests_handled == 0  # never contacted

    def test_hedge_fires_after_delay_and_wins(self):
        cluster, caller, primary, backup = self._racers(primary_delay_ms=100.0)
        done = []

        def logic():
            call = HedgedCall(
                caller.endpoint,
                ["s2", "s3"],
                "read",
                payload={"k": 1},
                size_bytes=50,
                policy=HedgePolicy(default_delay_ms=5.0),
            )
            yield call.wait(timeout_ms=500.0)
            done.append((call, cluster.kernel.now))

        caller.runtime.spawn(logic())
        cluster.run(until_ms=1000.0)
        ((call, decided_at),) = done
        assert call.winner.to_node == "s3"
        assert call.hedges_sent == 1
        # The race was decided by the hedge, not the 100ms straggler.
        assert 5.0 < decided_at < 50.0
        # The slow loser was cancelled (already on the wire -> abort).
        assert call.losers_cancelled == 1
        assert call.reply == {"from": "s3", "value": {"k": 1}}

    def test_loser_still_buffered_is_discarded_not_aborted(self):
        # Choke the s1->s3 link so the hedge copy dies in the send buffer:
        # the cheap cancel path must win and no abort message is needed.
        # The race has to decide while the window is still pinned, so the
        # primary is only mildly slow and the hedge timer is short.
        cluster, caller, primary, backup = self._racers(primary_delay_ms=5.0)
        cluster.network.set_window_bytes(100)
        backup.cpu.set_quota(0.0001)
        caller.endpoint.call("s3", "read", None, size_bytes=90)
        caller.endpoint.call("s3", "read", None, size_bytes=90)
        done = []

        def logic():
            yield caller.runtime.sleep(1.0)  # fillers pin the s3 window
            call = HedgedCall(
                caller.endpoint,
                ["s2", "s3"],
                "read",
                payload={"k": 1},
                size_bytes=200,
                policy=HedgePolicy(default_delay_ms=1.0),
            )
            yield call.wait(timeout_ms=500.0)
            done.append(call)

        caller.runtime.spawn(logic())
        cluster.run(until_ms=1000.0)
        (call,) = done
        assert call.winner.to_node == "s2"  # hedge never escaped the buffer
        assert call.hedges_sent == 1
        assert call.losers_cancelled == 1
        assert cluster.network.connection("s1", "s3").discarded == 1
        assert backup.endpoint.hedges_aborted == 0

    def test_max_hedges_caps_duplicates(self):
        cluster, nodes = make_cluster(4)
        caller = nodes[0]
        for server in nodes[1:]:
            register_sleeper(server, delay_ms=500.0)  # everyone is slow
        for node in nodes:
            node.start()
        calls = []

        def logic():
            call = HedgedCall(
                caller.endpoint,
                ["s2", "s3", "s4"],
                "read",
                policy=HedgePolicy(default_delay_ms=2.0, max_hedges=1),
            )
            calls.append(call)
            yield call.wait(timeout_ms=100.0)

        caller.runtime.spawn(logic())
        cluster.run(until_ms=200.0)
        (call,) = calls
        assert call.hedges_sent == 1
        assert len(call.calls) == 2  # primary + one hedge; s4 never raced

    def test_abort_ack_shape_is_rejected_by_classifier(self):
        # A server that answers with the abort-ack sentinel must read as a
        # rejection, so the race keeps going and the hedge wins.
        cluster, nodes = make_cluster(3)
        caller, liar, honest = nodes

        def abort_shaped(payload, src, _rt=liar.runtime):
            yield _rt.sleep(0.1)
            return dict(HEDGE_ABORTED_REPLY)

        liar.endpoint.register("read", abort_shaped)
        register_sleeper(honest)
        for node in nodes:
            node.start()
        done = []

        def logic():
            call = HedgedCall(
                caller.endpoint,
                ["s2", "s3"],
                "read",
                policy=HedgePolicy(default_delay_ms=5.0),
            )
            yield call.wait(timeout_ms=200.0)
            done.append(call)

        caller.runtime.spawn(logic())
        cluster.run(until_ms=500.0)
        (call,) = done
        assert call.winner.to_node == "s3"
        assert call.event.n_reject == 1

    def test_validates_targets_and_quorum(self):
        cluster, nodes = make_cluster(2)
        with pytest.raises(RpcError):
            HedgedCall(nodes[0].endpoint, [], "read")
        with pytest.raises(RpcError):
            HedgedCall(nodes[0].endpoint, ["s2"], "read", quorum=2)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            HedgePolicy(percentile=0.0)
        with pytest.raises(ValueError):
            HedgePolicy(max_hedges=-1)
        with pytest.raises(ValueError):
            HedgePolicy(min_delay_ms=9.0, max_delay_ms=3.0)


class TestServerSideHedgeHooks:
    def _one_server(self):
        cluster, nodes = make_cluster(2)
        caller, server = nodes
        register_sleeper(server, delay_ms=0.2)
        for node in nodes:
            node.start()
        return cluster, caller, server

    def test_duplicate_group_executes_once_and_replies_twice(self):
        cluster, caller, server = self._one_server()
        group = ("s1", "read", 999_001)
        first = caller.endpoint.call(
            "s2", "read", {"k": 1}, size_bytes=40, hedge_group=group
        )
        second = caller.endpoint.call(
            "s2", "read", {"k": 1}, size_bytes=40, hedge_group=group
        )
        cluster.run(until_ms=100.0)
        assert first.ok and second.ok
        assert server.endpoint.requests_handled == 1  # handler ran once
        assert server.endpoint.hedges_deduped == 1
        assert first.reply == second.reply  # cached reply served verbatim

    def test_aborted_group_answers_with_abort_ack(self):
        cluster, caller, server = self._one_server()
        group = ("s1", "read", 999_002)
        caller.endpoint.abort_hedge_group("s2", group)
        cluster.run(until_ms=10.0)  # abort lands before the copy
        late_copy = caller.endpoint.call(
            "s2", "read", {"k": 1}, size_bytes=40, hedge_group=group
        )
        cluster.run(until_ms=100.0)
        assert late_copy.ok
        assert is_hedge_abort_reply(late_copy.reply)
        assert server.endpoint.hedges_aborted == 1
        assert server.endpoint.requests_handled == 0  # work was saved

    def test_abort_after_execution_is_a_no_op(self):
        cluster, caller, server = self._one_server()
        group = ("s1", "read", 999_003)
        rpc = caller.endpoint.call(
            "s2", "read", {"k": 1}, size_bytes=40, hedge_group=group
        )
        cluster.run(until_ms=100.0)
        assert rpc.ok and not is_hedge_abort_reply(rpc.reply)
        caller.endpoint.abort_hedge_group("s2", group)
        cluster.run(until_ms=200.0)
        # The group already executed: a straggling duplicate still gets
        # the cached real reply, not an abort-ack.
        dup = caller.endpoint.call(
            "s2", "read", {"k": 1}, size_bytes=40, hedge_group=group
        )
        cluster.run(until_ms=300.0)
        assert dup.ok and not is_hedge_abort_reply(dup.reply)
        assert server.endpoint.hedges_deduped == 1


def _deploy_hedged(seed=7, n=3, policy=None):
    cluster = Cluster(seed=seed)
    group = [f"s{i + 1}" for i in range(n)]
    raft = deploy_hedged_raft(
        cluster,
        group,
        config=RaftConfig(
            preferred_leader="s1",
            read_mode="read_index",
            heartbeat_interval_ms=50.0,
            election_timeout_min_ms=300.0,
            election_timeout_max_ms=600.0,
        ),
        policy=policy,
    )
    wait_for_leader(cluster, raft)
    return cluster, raft, group


class TestHedgedRaft:
    def test_steady_leader_serves_speculative_reads_without_rollback(self):
        cluster, raft, group = _deploy_hedged()
        workload = YcsbWorkload(
            cluster.rng.stream("ycsb"),
            record_count=200,
            value_size=100,
            update_fraction=0.3,
        )
        driver = ClosedLoopDriver(
            cluster, group, workload, n_clients=8, think_time_ms=2.0
        )
        driver.start()
        cluster.run(until_ms=4_000.0)
        leader = find_leader(raft)
        assert driver.completed > 100
        assert driver.errors == 0
        assert leader.speculative_reads > 0
        assert leader.speculation_rollbacks == 0

    def test_append_hedges_fire_under_fault_and_followers_dedup(self):
        cluster, raft, group = _deploy_hedged(
            policy=HedgePolicy(default_delay_ms=10.0, max_delay_ms=30.0)
        )
        from repro.faults.injector import FaultInjector

        FaultInjector(cluster).inject("s3", "cpu_slow")
        workload = YcsbWorkload(
            cluster.rng.stream("ycsb"),
            record_count=200,
            value_size=200,
            update_fraction=1.0,
        )
        driver = ClosedLoopDriver(
            cluster, group, workload, n_clients=8, think_time_ms=1.0
        )
        driver.start()
        cluster.run(until_ms=5_000.0)
        leader = find_leader(raft)
        # The fault's queueing pushes append RTTs past the (clamped)
        # estimate, so the replication path hedges. Note the duplicates
        # go to followers with a *live* append stream — a peer that fell
        # into stream repair is deliberately never hedged (the repair
        # coroutine is a dedicated per-peer stream).
        assert leader.append_hedges > 0
        assert sum(leader.hedges_by_peer.values()) == leader.append_hedges
        assert all(peer != leader.id for peer in leader.hedges_by_peer)
        # Every duplicate that reached a follower was answered by the
        # dedup/abort hook, not re-applied: the handler ran once per
        # group, so hedging cannot double-count an ack or double-write
        # the WAL.
        deduped = sum(
            cluster.node(peer).endpoint.hedges_deduped
            + cluster.node(peer).endpoint.hedges_aborted
            for peer in group
        )
        assert deduped > 0

    @pytest.mark.slow
    def test_linearizable_under_flapping_fault_with_sessions(self):
        cluster, raft, group = _deploy_hedged(seed=13)
        nemesis = Nemesis(cluster, raft, majority_guard=True)
        # The detector stress case from the mitigation PR, aimed at the
        # hedging machinery: the follower flaps fail-slow, so hedge
        # timers arm from stale percentiles and duplicates fly exactly
        # when the estimator is most wrong. Sessions + server dedup must
        # keep every mutation applied at most once.
        nemesis.schedule_flapping("s3", "cpu_slow", 800.0, 400.0, 400.0, 4)
        history = HistoryRecorder()
        workload = YcsbWorkload(
            cluster.rng.stream("ycsb"),
            record_count=40,
            value_size=100,
            update_fraction=0.6,
        )
        driver = ClosedLoopDriver(
            cluster,
            group,
            workload,
            n_clients=6,
            think_time_ms=2.0,
            sessions=True,
            history=history,
        )
        driver.start()
        cluster.run(until_ms=7_000.0)
        assert driver.completed > 100
        verdict = check_linearizable(history)
        assert verdict.ok, f"non-linearizable under flapping: {verdict}"
