"""Unit tests for messages, links and send buffers."""

import pytest

from repro.net.buffers import BufferOverflowError, SendBuffer
from repro.net.link import Link
from repro.net.message import HEADER_BYTES, Message
from repro.sim.resources import MemoryResource


class TestMessage:
    def test_size_includes_header(self):
        msg = Message("a", "b", "ping", size_bytes=100)
        assert msg.size_bytes == 100 + HEADER_BYTES

    def test_ids_are_unique(self):
        first = Message("a", "b", "x")
        second = Message("a", "b", "x")
        assert first.msg_id != second.msg_id

    def test_reply_flag(self):
        request = Message("a", "b", "x")
        reply = Message("b", "a", "x:reply", reply_to=request.msg_id)
        assert not request.is_reply
        assert reply.is_reply

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Message("a", "b", "x", size_bytes=-1)


class TestLink:
    def test_transfer_time_scales_with_size(self):
        link = Link(latency_ms=0.5, bandwidth_mbps=1.0)  # 1000 B/ms
        assert link.transfer_ms(2000) == pytest.approx(2.0)
        assert link.propagation_ms() == 0.5

    def test_jitter_needs_rng(self):
        import random

        link = Link(latency_ms=1.0, jitter_ms=2.0, rng=random.Random(1))
        samples = {link.propagation_ms() for _ in range(10)}
        assert all(1.0 <= s <= 3.0 for s in samples)
        assert len(samples) > 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Link(latency_ms=-1)
        with pytest.raises(ValueError):
            Link(bandwidth_mbps=0)
        with pytest.raises(ValueError):
            Link(jitter_ms=-1)


class TestSendBuffer:
    def _msg(self, size=100):
        return Message("a", "b", "x", size_bytes=size)

    def test_fifo_push_pop(self):
        buf = SendBuffer("a", "b")
        first, second = self._msg(), self._msg()
        buf.push(first)
        buf.push(second)
        assert buf.pop() is first
        assert buf.pop() is second
        assert buf.pop() is None

    def test_byte_accounting(self):
        buf = SendBuffer("a", "b")
        msg = self._msg(200)
        buf.push(msg)
        assert buf.bytes_queued == msg.size_bytes
        buf.pop()
        assert buf.bytes_queued == 0

    def test_bounded_buffer_overflows(self):
        buf = SendBuffer("a", "b", max_bytes=300)
        buf.push(self._msg(100))
        with pytest.raises(BufferOverflowError):
            buf.push(self._msg(200))

    def test_unbounded_buffer_grows(self):
        buf = SendBuffer("a", "b", max_bytes=None)
        for _ in range(1000):
            buf.push(self._msg(1000))
        assert len(buf) == 1000
        assert not buf.bounded

    def test_memory_accounting_against_node_memory(self):
        mem = MemoryResource(capacity_bytes=10**9)
        buf = SendBuffer("a", "b", memory=mem)
        msg = self._msg(500)
        buf.push(msg)
        assert mem.used == msg.size_bytes
        buf.pop()
        assert mem.used == 0

    def test_discard_specific_message(self):
        mem = MemoryResource(capacity_bytes=10**9)
        buf = SendBuffer("a", "b", memory=mem)
        keep, drop = self._msg(), self._msg()
        buf.push(keep)
        buf.push(drop)
        assert buf.discard(drop.msg_id)
        assert not buf.discard(drop.msg_id)  # already gone
        assert buf.pop() is keep
        assert mem.used == 0

    def test_drain_all_releases_memory(self):
        mem = MemoryResource(capacity_bytes=10**9)
        buf = SendBuffer("a", "b", memory=mem)
        for _ in range(5):
            buf.push(self._msg())
        assert buf.drain_all() == 5
        assert mem.used == 0
        assert buf.bytes_queued == 0

    def test_peak_gauge_tracks_backlog(self):
        buf = SendBuffer("a", "b")
        for _ in range(3):
            buf.push(self._msg(1000))
        buf.drain_all()
        assert buf.depth_gauge.peak == 3 * (1000 + HEADER_BYTES)
