"""Cross-module integration tests: end-to-end stories and edge cases."""

import pytest

from repro.cluster.cluster import Cluster
from repro.faults.injector import FaultInjector
from repro.raft.config import RaftConfig
from repro.raft.service import deploy_depfast_raft, find_leader, wait_for_leader
from repro.raft.types import Role
from repro.workload.driver import ClosedLoopDriver
from repro.workload.ycsb import YcsbWorkload

GROUP3 = ["s1", "s2", "s3"]
GROUP5 = ["s1", "s2", "s3", "s4", "s5"]


def deploy(group, seed=37, n_clients=16):
    cluster = Cluster(seed=seed)
    raft = deploy_depfast_raft(cluster, group, config=RaftConfig(preferred_leader=group[0]))
    wait_for_leader(cluster, raft)
    workload = YcsbWorkload(cluster.rng.stream("y"), record_count=1000, value_size=1000)
    driver = ClosedLoopDriver(cluster, group, workload, n_clients=n_clients)
    driver.start()
    return cluster, raft, driver


class TestFiveNodeMinority:
    @pytest.mark.slow
    def test_two_slow_followers_tolerated(self):
        cluster, raft, driver = deploy(GROUP5)
        injector = FaultInjector(cluster)
        injector.inject("s4", "cpu_slow")
        injector.inject("s5", "network_slow")
        cluster.run(until_ms=8000.0)
        report = driver.report(2000.0, 8000.0)
        assert report.throughput_ops_s > 1000.0
        assert report.errors == 0
        assert find_leader(raft).id == "s1"

    def test_majority_slow_does_stall(self):
        """Sanity: the quorum property needs a healthy majority."""
        cluster, raft, driver = deploy(GROUP3)
        injector = FaultInjector(cluster)
        injector.inject("s2", "cpu_slow")
        injector.inject("s3", "cpu_slow")
        cluster.run(until_ms=3000.0)
        healthy_like = driver.report(500.0, 3000.0)
        # With BOTH followers slow, commits pace at the slow nodes:
        # throughput must be visibly depressed versus a 16-client healthy
        # run (which does > 3000 ops/s at this operating point).
        assert healthy_like.throughput_ops_s < 3000.0


@pytest.mark.slow
class TestLeaderLocalFaults:
    def test_slow_leader_disk_is_tolerated_by_group_quorum(self):
        """Commit = any majority holds the entry — including the case
        where the two followers outrun the leader's own fsync."""
        cluster, raft, driver = deploy(GROUP3)
        cluster.run(until_ms=2500.0)
        before = driver.report(1000.0, 2500.0)
        FaultInjector(cluster).inject("s1", "disk_slow")  # LEADER disk
        cluster.run(until_ms=6000.0)
        after = driver.report(3000.0, 6000.0)
        assert after.throughput_ops_s > 0.9 * before.throughput_ops_s

    def test_slow_leader_cpu_degrades_without_detector(self):
        cluster, raft, driver = deploy(GROUP3)
        cluster.run(until_ms=2500.0)
        before = driver.report(1000.0, 2500.0)
        FaultInjector(cluster).inject("s1", "cpu_slow")
        cluster.run(until_ms=8000.0)
        after = driver.report(5000.0, 8000.0)
        assert after.throughput_ops_s < 0.5 * before.throughput_ops_s


class TestTransientFaults:
    @pytest.mark.slow
    def test_transient_fault_recovers_fully(self):
        cluster, raft, driver = deploy(GROUP3)
        injector = FaultInjector(cluster)
        injector.inject_transient("s3", "cpu_slow", at_ms=3000.0, duration_ms=2000.0)
        cluster.run(until_ms=10_000.0)
        during = driver.report(3000.0, 5000.0)
        after = driver.report(7000.0, 10_000.0)
        # Tolerated while present, gone afterwards; logs reconverge.
        assert during.errors == 0
        assert after.errors == 0
        # Quiesce the workload before comparing logs: under live load the
        # follower legitimately trails the leader by in-flight entries.
        driver.stop()
        cluster.run(until_ms=cluster.kernel.now + 15_000.0)
        assert raft["s3"].log.last_index() == raft["s1"].log.last_index()

    @pytest.mark.slow
    def test_sequential_faults_on_different_followers(self):
        cluster, raft, driver = deploy(GROUP3)
        injector = FaultInjector(cluster)
        injector.inject_transient("s2", "network_slow", at_ms=2000.0, duration_ms=1500.0)
        injector.inject_transient("s3", "disk_slow", at_ms=5000.0, duration_ms=1500.0)
        cluster.run(until_ms=9000.0)
        report = driver.report(1000.0, 9000.0)
        assert report.errors == 0
        assert not report.crashed


class TestRoleInvariants:
    @pytest.mark.slow
    def test_exactly_one_leader_after_churn(self):
        cluster, raft, driver = deploy(GROUP3)
        leader = find_leader(raft)
        leader.node.crash()
        cluster.run(until_ms=cluster.kernel.now + 8000.0)
        survivors = [r for r in raft.values() if not r.node.crashed]
        leaders = [r for r in survivors if r.role == Role.LEADER]
        assert len(leaders) == 1
        # All survivors agree on the new leader's term.
        assert len({r.term for r in survivors}) == 1

    def test_crashed_majority_halts_progress_without_errors_in_log(self):
        cluster, raft, driver = deploy(GROUP3)
        raft["s2"].node.crash()
        raft["s3"].node.crash()
        commit_before = raft["s1"].commit_index
        cluster.run(until_ms=cluster.kernel.now + 4000.0)
        # No quorum: commits stop advancing beyond what was in flight.
        assert raft["s1"].commit_index <= commit_before + 64


@pytest.mark.slow
class TestDeterminism:
    """Seed determinism of full deploys. The fast lane's determinism
    guard is tests/test_determinism.py's golden trace hashes."""

    def test_same_seed_same_results(self):
        def run(seed):
            cluster, raft, driver = deploy(GROUP3, seed=seed)
            cluster.run(until_ms=4000.0)
            report = driver.report(1000.0, 4000.0)
            return (
                report.throughput_ops_s,
                report.avg_latency_ms,
                raft["s1"].log.last_index(),
            )

        assert run(123) == run(123)

    def test_different_seed_different_trajectory(self):
        def run(seed):
            cluster, raft, driver = deploy(GROUP3, seed=seed)
            cluster.run(until_ms=4000.0)
            return driver.report(1000.0, 4000.0).avg_latency_ms

        assert run(1) != run(2)


@pytest.mark.slow
class TestStaticRuntimeSpgDiff:
    """The static analyzer's SPG approximation must predict what the
    tracer actually observes on the 3-node Raft scenario (>= 95%)."""

    def test_static_predicts_runtime_edges(self):
        from pathlib import Path

        from repro.analysis import build_static_spg, diff_spg, scan_paths

        src = Path(__file__).resolve().parent.parent / "src" / "repro"
        cluster, raft, driver = deploy(GROUP3)
        cluster.run(until_ms=4000.0)

        static = build_static_spg(scan_paths([str(src)]))
        diff = diff_spg(static, cluster.tracer.records, [GROUP3])

        # The workload must have produced real inter-node waits, and at
        # least 95% of the distinct (waiter, source, color) edges must be
        # statically predicted.
        assert len(diff.predicted) + len(diff.runtime_only) >= 3
        assert diff.coverage >= 0.95
        # The replication quorum's green group edges are among them.
        green_group = [
            edge for edge, _site in diff.predicted
            if edge.color == "green" and edge.scope == "group"
        ]
        assert green_group
        # The client->leader boundary wait is predicted as a red edge.
        boundary = [
            edge for edge, _site in diff.predicted
            if edge.scope == "boundary" and edge.color == "red"
        ]
        assert boundary
        assert "coverage" in diff.render()
