"""Tests for tracing, SPG construction, the tolerance checker and analysis."""

import pytest

from repro.events.basic import RpcEvent, ValueEvent
from repro.events.compound import AndEvent, OrEvent, QuorumEvent
from repro.runtime.runtime import Runtime
from repro.sim.kernel import Kernel
from repro.sim.resources import CpuResource
from repro.trace.analysis import (
    mean_wait_ms,
    propagation_ratio,
    slowness_attribution,
    wait_time_by_kind,
)
from repro.trace.spg import build_spg, quorum_edges, render_spg, single_wait_edges
from repro.trace.tracepoints import Tracer, WaitRecord
from repro.trace.verify import check_fail_slow_tolerance


def record(node, kind, edges, waited=10.0, name="e"):
    return WaitRecord(
        coro_name="c",
        node=node,
        event_kind=kind,
        event_name=name,
        edges=edges,
        started_at=0.0,
        ended_at=waited,
        timed_out=False,
    )


class TestTracerIntegration:
    def _traced_runtime(self):
        kernel = Kernel()
        tracer = Tracer(kernel)
        runtime = Runtime(
            kernel, node="s1", cpu=CpuResource(kernel), tracer=tracer
        )
        return kernel, tracer, runtime

    def test_wait_records_capture_quorum_edges(self):
        kernel, tracer, runtime = self._traced_runtime()
        quorum = QuorumEvent(quorum=2, n_total=3, name="repl")
        rpcs = [RpcEvent("ae", to_node=f"s{i}") for i in (2, 3, 4)]
        for rpc in rpcs:
            quorum.add(rpc)
        kernel.schedule(5.0, rpcs[0].complete, "ok")
        kernel.schedule(9.0, rpcs[1].complete, "ok")

        def task():
            yield quorum.wait()

        runtime.spawn(task())
        kernel.run_until_idle()
        (rec,) = [r for r in tracer.records if r.event_kind == "quorum"]
        assert rec.node == "s1"
        assert rec.waited_ms == pytest.approx(9.0)
        assert ("s2", 2, 3) in rec.edges
        assert rec.is_inter_node()

    def test_timeout_recorded(self):
        kernel, tracer, runtime = self._traced_runtime()
        ev = ValueEvent(source="s9")

        def task():
            yield ev.wait(timeout_ms=20.0)

        runtime.spawn(task())
        kernel.run_until_idle()
        (rec,) = tracer.records
        assert rec.timed_out
        assert rec.waited_ms == pytest.approx(20.0)

    def test_spawn_finish_counts(self):
        kernel, tracer, runtime = self._traced_runtime()

        def task():
            yield runtime.sleep(1.0)

        runtime.spawn(task())
        runtime.spawn(task())
        kernel.run_until_idle()
        assert tracer.spawned == 2
        assert tracer.finished == 2

    def test_disabled_tracer_records_nothing(self):
        kernel = Kernel()
        tracer = Tracer(kernel, enabled=False)
        runtime = Runtime(kernel, node="s1", cpu=CpuResource(kernel), tracer=tracer)

        def task():
            yield runtime.sleep(1.0)

        runtime.spawn(task())
        kernel.run_until_idle()
        assert tracer.records == []


class TestSpg:
    def test_quorum_wait_makes_green_edge(self):
        records = [record("s1", "quorum", [("s2", 2, 3), ("s3", 2, 3)])]
        graph = build_spg(records)
        assert graph.edges[("s1", "s2")]["color"] == "green"
        assert graph.edges[("s1", "s2")]["label"] == "2/3"
        assert quorum_edges(graph) == [("s1", "s2"), ("s1", "s3")]

    def test_single_wait_makes_red_edge(self):
        records = [record("c1", "rpc", [("s1", 1, 1)])]
        graph = build_spg(records)
        assert graph.edges[("c1", "s1")]["color"] == "red"
        assert single_wait_edges(graph) == [("c1", "s1")]

    def test_local_waits_do_not_create_edges(self):
        records = [record("s1", "disk", [("s1", 1, 1)])]
        graph = build_spg(records)
        assert graph.number_of_edges() == 0

    def test_red_dominates_on_merge(self):
        records = [
            record("s1", "quorum", [("s2", 2, 3)]),
            record("s1", "rpc", [("s2", 1, 1)]),
        ]
        graph = build_spg(records)
        assert graph.edges[("s1", "s2")]["color"] == "red"
        assert graph.edges[("s1", "s2")]["count"] == 2

    def test_aggregation_counts_and_wait_time(self):
        records = [
            record("s1", "quorum", [("s2", 2, 3)], waited=5.0),
            record("s1", "quorum", [("s2", 2, 3)], waited=7.0),
        ]
        graph = build_spg(records)
        data = graph.edges[("s1", "s2")]
        assert data["count"] == 2
        assert data["total_wait_ms"] == pytest.approx(12.0)

    def test_render_flags_red_edges(self):
        graph = build_spg([record("c1", "rpc", [("s1", 1, 1)])])
        text = render_spg(graph)
        assert "c1 -> s1" in text
        assert "!" in text

    def test_tight_quorum_edge_is_red(self):
        # k == n: nominally a quorum, but every member is on the critical
        # path — the edge must not inherit green from the event kind.
        records = [record("s1", "quorum", [("s2", 3, 3), ("s3", 3, 3)])]
        graph = build_spg(records)
        assert graph.edges[("s1", "s2")]["color"] == "red"
        assert graph.edges[("s1", "s3")]["color"] == "red"

    def test_nested_compound_colors_per_grandchild(self):
        # AndEvent(QuorumEvent(2 of 3), OrEvent(rpc to s5)): the quorum's
        # grandchild edges keep their k<n slack (green), while the Or's
        # only branch pins s5 to the critical path (red) — one record,
        # mixed edge colors.
        quorum = QuorumEvent(quorum=2, n_total=3, name="repl")
        for i in (2, 3, 4):
            quorum.add(RpcEvent("ae", to_node=f"s{i}"))
        fallback = OrEvent(RpcEvent("probe", to_node="s5"))
        combined = AndEvent(quorum, fallback)
        graph = build_spg([record("s1", "and", combined.wait_edges())])
        for peer in ("s2", "s3", "s4"):
            assert graph.edges[("s1", peer)]["color"] == "green"
        assert graph.edges[("s1", "s5")]["color"] == "red"

    def test_or_branches_sharing_a_source_get_no_slack(self):
        # Every Or-branch needs s2, so picking "the other branch" cannot
        # route around s2: its edges must not get the 1-of-n discount.
        shared = OrEvent(
            ValueEvent(name="ack", source="s2"), RpcEvent("probe", to_node="s2")
        )
        edges = shared.wait_edges()
        assert edges == [("s2", 1, 1), ("s2", 1, 1)]
        graph = build_spg([record("s1", "or", edges)])
        assert graph.edges[("s1", "s2")]["color"] == "red"


class TestToleranceChecker:
    GROUPS = [["s1", "s2", "s3"]]

    def test_quorum_only_trace_passes(self):
        records = [record("s1", "quorum", [("s2", 2, 3), ("s3", 2, 3)])]
        report = check_fail_slow_tolerance(records, self.GROUPS)
        assert report.tolerant
        assert report.checked_waits == 2
        assert "PASS" in report.summary()

    def test_single_wait_within_group_fails(self):
        records = [record("s1", "rpc", [("s2", 1, 1)])]
        report = check_fail_slow_tolerance(records, self.GROUPS)
        assert not report.tolerant
        assert "FAIL" in report.summary()
        assert report.violations[0].source == "s2"

    def test_full_quorum_wait_fails(self):
        # Waiting for ALL members tolerates no slow member.
        records = [record("s1", "quorum", [("s2", 3, 3), ("s3", 3, 3)])]
        report = check_fail_slow_tolerance(records, self.GROUPS)
        assert not report.tolerant

    def test_client_to_leader_is_boundary_not_violation(self):
        records = [record("c1", "rpc", [("s1", 1, 1)])]
        report = check_fail_slow_tolerance(records, self.GROUPS)
        assert report.tolerant
        assert report.boundary_waits == [("c1", "s1")]

    def test_node_in_two_groups_rejected(self):
        with pytest.raises(ValueError):
            check_fail_slow_tolerance([], [["s1"], ["s1"]])

    def test_dedicated_wait_on_own_peer_is_exempt(self):
        # A per-peer repair stream waiting on its peer: the slowness it
        # absorbs affects only work done on that peer's behalf.
        rec = record("s1", "rpc", [("s2", 1, 1)])
        rec.dedication = "s2"
        report = check_fail_slow_tolerance([rec], self.GROUPS)
        assert report.tolerant
        assert report.dedicated_waits == 1
        assert "1 dedicated-stream waits" in report.summary()

    def test_dedication_does_not_exempt_other_sources(self):
        # Dedicated to s3, but waiting on s2: not this stream's peer, so
        # the wait is checked (and fails) like any other solo wait.
        rec = record("s1", "rpc", [("s2", 1, 1)])
        rec.dedication = "s3"
        report = check_fail_slow_tolerance([rec], self.GROUPS)
        assert not report.tolerant
        assert report.dedicated_waits == 0

    def test_cross_group_node_wait_reported_not_violated(self):
        # Two replica groups: a wait from one into the other is a boundary
        # wait (reported), not a violation — same rule as client→leader.
        groups = [["s1", "s2", "s3"], ["t1", "t2", "t3"]]
        records = [record("s1", "rpc", [("t1", 1, 1)])]
        report = check_fail_slow_tolerance(records, groups)
        assert report.tolerant
        assert report.boundary_waits == [("s1", "t1")]
        assert report.checked_waits == 1

    def test_quorum_k_boundaries(self):
        # k = n-1 is the largest quorum that still tolerates one slow
        # member; k = n tolerates none and violates.
        ok = record("s1", "quorum", [("s2", 2, 3), ("s3", 2, 3)])
        tight = record("s1", "quorum", [("s2", 3, 3), ("s3", 3, 3)])
        assert check_fail_slow_tolerance([ok], self.GROUPS).tolerant
        report = check_fail_slow_tolerance([tight], self.GROUPS)
        assert len(report.violations) == 2
        assert "requires all members" in report.violations[0].reason

    def test_compound_kinds_keep_nested_slack(self):
        # And/Or records carry their grandchildren's k/n: slack passes,
        # k == n does not.
        assert check_fail_slow_tolerance(
            [record("s1", "and", [("s2", 2, 3)])], self.GROUPS
        ).tolerant
        assert not check_fail_slow_tolerance(
            [record("s1", "or", [("s2", 1, 1)])], self.GROUPS
        ).tolerant

    def test_minimal_quorum_k1_n2(self):
        records = [record("s1", "quorum", [("s2", 1, 2), ("s3", 1, 2)])]
        assert check_fail_slow_tolerance(records, self.GROUPS).tolerant


class TestAnalysis:
    def test_wait_time_by_kind(self):
        records = [
            record("s1", "quorum", [("s2", 2, 3)], waited=5.0),
            record("s1", "disk", [("s1", 1, 1)], waited=3.0),
        ]
        totals = wait_time_by_kind(records)
        assert totals == {"quorum": 5.0, "disk": 3.0}

    def test_attribution_splits_across_sources(self):
        records = [record("s1", "quorum", [("s2", 2, 3), ("s3", 2, 3)], waited=10.0)]
        charges = slowness_attribution(records)
        assert charges == {"s2": 5.0, "s3": 5.0}

    def test_attribution_filters_by_node(self):
        records = [
            record("s1", "rpc", [("s2", 1, 1)], waited=10.0),
            record("s9", "rpc", [("s2", 1, 1)], waited=99.0),
        ]
        assert slowness_attribution(records, node="s1") == {"s2": 10.0}

    def test_propagation_ratio(self):
        records = [
            record("s1", "rpc", [("s2", 1, 1)], waited=30.0),
            record("s1", "rpc", [("s3", 1, 1)], waited=10.0),
        ]
        assert propagation_ratio(records, slow_node="s2", waiter="s1") == pytest.approx(0.75)

    def test_propagation_ratio_empty_is_zero(self):
        assert propagation_ratio([], "s2", "s1") == 0.0

    def test_mean_wait(self):
        records = [
            record("s1", "rpc", [("s2", 1, 1)], waited=10.0),
            record("s1", "quorum", [("s2", 2, 3)], waited=20.0),
        ]
        assert mean_wait_ms(records) == pytest.approx(15.0)
        assert mean_wait_ms(records, kind="rpc") == pytest.approx(10.0)
        assert mean_wait_ms([], kind="rpc") == 0.0
