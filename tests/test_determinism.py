"""Golden-trace determinism harness guarding the hot-path overhaul.

The fixtures in ``tests/fixtures/determinism_golden.json`` were captured
against the pre-overhaul (PR ≤4) simulator: a plain ``heapq`` kernel and
unbatched per-message network delivery. The tests assert that today's
kernel/network/metrics produce *bit-for-bit identical* seeded event
traces — every delivery timestamp, the global delivery order, the final
virtual clock and all client-visible outcomes.

If one of these fails after a change to ``repro.sim``, ``repro.net``,
``repro.events`` or ``repro.runtime``, the change is NOT an optimisation:
it altered simulated behaviour. Only regenerate the goldens
(``python -m repro.bench.determinism --write-golden``) for an intentional
semantic change, and say so loudly in the commit message.
"""

import pytest

from repro.bench.determinism import SCENARIOS, load_golden, run_traced


@pytest.fixture(scope="module")
def golden():
    return load_golden()


def test_golden_covers_all_scenarios(golden):
    assert sorted(golden) == sorted(SCENARIOS)


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_event_trace_matches_pre_refactor_golden(scenario, golden):
    digest = run_traced(scenario, seed=golden[scenario]["seed"])
    expected = golden[scenario]
    # Compare the human-readable fields first so a mismatch says *what*
    # diverged (count/time/ops) before the opaque hash does.
    assert digest.deliveries == expected["deliveries"]
    assert digest.final_time_ms == expected["final_time_ms"]
    assert digest.completed_ops == expected["completed_ops"]
    assert digest.errors == expected["errors"]
    assert digest.trace_hash == expected["trace_hash"]


@pytest.mark.slow
def test_trace_is_reproducible_within_this_build():
    """Same seed twice → identical digest (independent of the goldens)."""
    first = run_traced("raft", seed=7)
    second = run_traced("raft", seed=7)
    assert first == second


@pytest.mark.slow
def test_different_seeds_diverge():
    """The digest actually depends on the seed (the probe isn't inert)."""
    assert run_traced("raft", seed=7).trace_hash != run_traced("raft", seed=8).trace_hash
