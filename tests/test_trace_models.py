"""Tests for the transient fail-slow probability models (§3.3)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events.basic import ValueEvent
from repro.events.compound import QuorumEvent
from repro.sim.kernel import Kernel
from repro.trace.models import (
    expected_quorum_wait,
    impact_radius_table,
    kth_order_statistic_cdf,
    prob_quorum_delayed,
    quorum_wait_percentile,
)


class TestClosedForms:
    def test_single_wait_equals_p(self):
        assert prob_quorum_delayed(1, 1, 0.1) == pytest.approx(0.1)

    def test_all_replica_wait_equals_any_slow(self):
        n, p = 5, 0.1
        assert prob_quorum_delayed(n, n, p) == pytest.approx(1 - (1 - p) ** n)

    def test_majority_quorum_suppresses_transients(self):
        # 2-of-3: delayed only if >= 2 of 3 are simultaneously slow.
        p = 0.1
        expected = 3 * p**2 * (1 - p) + p**3
        assert prob_quorum_delayed(3, 2, p) == pytest.approx(expected)

    def test_boundary_probabilities(self):
        assert prob_quorum_delayed(5, 3, 0.0) == 0.0
        assert prob_quorum_delayed(5, 3, 1.0) == 1.0

    def test_expected_wait_interpolates(self):
        assert expected_quorum_wait(3, 2, 0.0, 10.0, 400.0) == 10.0
        assert expected_quorum_wait(3, 2, 1.0, 10.0, 400.0) == 410.0
        mid = expected_quorum_wait(3, 2, 0.5, 10.0, 400.0)
        assert 10.0 < mid < 410.0

    def test_percentile_two_point(self):
        # p_delayed(3,2,0.1) = 0.028: the 95th percentile is still fast,
        # the 99th percentile... still fast (0.028 > 0.01? no: 1-0.028=0.972 < 0.99)
        assert quorum_wait_percentile(3, 2, 0.1, 10.0, 400.0, 95) == 10.0
        assert quorum_wait_percentile(3, 2, 0.1, 10.0, 400.0, 99) == 410.0
        # A 1/1 wait pays the delay already at the 95th percentile.
        assert quorum_wait_percentile(1, 1, 0.1, 10.0, 400.0, 95) == 410.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            prob_quorum_delayed(3, 0, 0.1)
        with pytest.raises(ValueError):
            prob_quorum_delayed(3, 4, 0.1)
        with pytest.raises(ValueError):
            prob_quorum_delayed(3, 2, 1.5)
        with pytest.raises(ValueError):
            expected_quorum_wait(3, 2, 0.1, -1.0, 1.0)
        with pytest.raises(ValueError):
            quorum_wait_percentile(3, 2, 0.1, 1.0, 1.0, 101)


class TestOrderStatisticCdf:
    def test_homogeneous_matches_binomial(self):
        f = 0.7
        n, k = 5, 3
        expected = sum(
            math.comb(n, j) * f**j * (1 - f) ** (n - j) for j in range(k, n + 1)
        )
        assert kth_order_statistic_cdf([f] * n, k) == pytest.approx(expected)

    def test_heterogeneous_one_dead_replica(self):
        # One replica never responds (CDF 0): a 3-of-3 wait never finishes,
        # a 2-of-3 wait behaves like 2-of-2 over the live ones.
        assert kth_order_statistic_cdf([0.9, 0.9, 0.0], 3) == 0.0
        assert kth_order_statistic_cdf([0.9, 0.9, 0.0], 2) == pytest.approx(0.81)

    def test_certain_response(self):
        assert kth_order_statistic_cdf([1.0, 1.0, 1.0], 3) == pytest.approx(1.0)


class TestImpactRadiusTable:
    def test_table_shape_and_labels(self):
        rows = impact_radius_table(5, 0.1)
        assert len(rows) == 5
        assert rows[0]["label"] == "first response"
        assert rows[2]["label"] == "majority quorum (DepFast)"
        assert rows[4]["label"] == "all replicas (checkpoint/sync wait)"

    def test_monotone_in_k(self):
        rows = impact_radius_table(7, 0.2)
        probs = [row["p_delayed"] for row in rows]
        assert probs == sorted(probs)


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------
@given(
    n=st.integers(min_value=1, max_value=15),
    p=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    data=st.data(),
)
def test_probability_is_monotone_in_k_and_bounded(n, p, data):
    k = data.draw(st.integers(min_value=1, max_value=n))
    value = prob_quorum_delayed(n, k, p)
    assert 0.0 <= value <= 1.0
    if k < n:
        assert value <= prob_quorum_delayed(n, k + 1, p) + 1e-12


@given(
    cdfs=st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=1, max_size=10
    ),
    data=st.data(),
)
def test_order_statistic_cdf_monotone_in_k(cdfs, data):
    k = data.draw(st.integers(min_value=1, max_value=len(cdfs)))
    value = kth_order_statistic_cdf(cdfs, k)
    assert -1e-12 <= value <= 1.0 + 1e-12
    if k < len(cdfs):
        assert kth_order_statistic_cdf(cdfs, k + 1) <= value + 1e-9


# ---------------------------------------------------------------------------
# Model vs simulation
# ---------------------------------------------------------------------------
class TestModelAgainstSimulation:
    @settings(max_examples=10, deadline=None)
    @given(
        p=st.floats(min_value=0.05, max_value=0.5),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_quorum_delay_frequency_matches_binomial(self, p, seed):
        """Monte-Carlo QuorumEvents against the closed form."""
        import random

        rng = random.Random(seed)
        n, k = 5, 3
        base, delay = 1.0, 50.0
        trials = 400
        slow_hits = 0
        for _ in range(trials):
            kernel = Kernel()
            quorum = QuorumEvent(k, n_total=n)
            for _replica in range(n):
                event = ValueEvent()
                latency = base + (delay if rng.random() < p else 0.0)
                kernel.schedule(latency, event.set, 1)
                quorum.add(event)
            done_at = []
            quorum.subscribe(lambda _ev: done_at.append(kernel.now))
            kernel.run_until_idle()
            if done_at[0] > base + 1e-9:
                slow_hits += 1
        predicted = prob_quorum_delayed(n, k, p)
        observed = slow_hits / trials
        assert abs(observed - predicted) < 0.08  # 400-trial tolerance
