"""Unit tests for compound events: And, Or, Quorum, and nesting."""

import pytest

from repro.events.base import Event, EventError
from repro.events.basic import RpcEvent, ValueEvent
from repro.events.compound import AndEvent, OrEvent, QuorumEvent


class TestAndEvent:
    def test_requires_all_children(self):
        a, b, c = Event(), Event(), Event()
        comp = AndEvent(a, b, c)
        a.trigger()
        b.trigger()
        assert not comp.ready()
        c.trigger()
        assert comp.ready()

    def test_already_triggered_children_count(self):
        a = Event()
        a.trigger()
        b = Event()
        comp = AndEvent(a, b)
        assert not comp.ready()
        b.trigger()
        assert comp.ready()

    def test_empty_and_never_ready(self):
        assert not AndEvent().check_ready()

    def test_wait_edges_union_children(self):
        comp = AndEvent(Event(source="s1"), Event(source="s2"))
        assert sorted(comp.wait_edges()) == [("s1", 1, 1), ("s2", 1, 1)]


class TestOrEvent:
    def test_any_child_suffices(self):
        a, b = Event(), Event()
        comp = OrEvent(a, b)
        b.trigger()
        assert comp.ready()
        assert not a.ready()

    def test_branch_inspection_after_trigger(self):
        fast, slow = ValueEvent(name="fast"), ValueEvent(name="slow")
        comp = OrEvent(fast, slow)
        slow.set("slow-path")
        assert comp.ready()
        assert not fast.ready()
        assert slow.ready()


class TestQuorumEvent:
    def _rpc_children(self, n):
        return [RpcEvent("m", to_node=f"s{i}") for i in range(n)]

    def test_triggers_at_quorum(self):
        q = QuorumEvent(quorum=2, n_total=3)
        children = self._rpc_children(3)
        for child in children:
            q.add(child)
        children[0].complete("ok")
        assert not q.ready()
        children[2].complete("ok")
        assert q.ready()
        assert q.n_ok == 2
        assert not children[1].ready()  # the slow straggler is not waited on

    def test_classifier_splits_ok_and_reject(self):
        q = QuorumEvent(quorum=2, n_total=3, classify=lambda e: e.reply == "yes")
        children = self._rpc_children(3)
        for child in children:
            q.add(child)
        children[0].complete("no")
        children[1].complete("yes")
        assert q.n_reject == 1
        assert not q.ready()
        children[2].complete("yes")
        assert q.ready()
        assert q.ok_children == [children[1], children[2]]
        assert q.reject_children == [children[0]]

    def test_definitely_failed_when_quorum_unreachable(self):
        q = QuorumEvent(quorum=3, n_total=4, classify=lambda e: e.reply == "yes")
        children = self._rpc_children(4)
        for child in children:
            q.add(child)
        children[0].complete("no")
        assert not q.definitely_failed()
        children[1].complete("no")
        assert q.definitely_failed()
        assert not q.ready()

    def test_direct_counting_api(self):
        q = QuorumEvent(quorum=2, n_total=3)
        q.add_ok()
        q.add_reject()
        assert not q.ready()
        q.add_ok()
        assert q.ready()
        assert q.n_reject == 1

    def test_outstanding_lists_stragglers(self):
        q = QuorumEvent(quorum=1, n_total=2)
        children = self._rpc_children(2)
        for child in children:
            q.add(child)
        children[0].complete("ok")
        assert q.outstanding() == [children[1]]

    def test_total_defaults_to_child_count(self):
        q = QuorumEvent(quorum=2)
        for child in self._rpc_children(5):
            q.add(child)
        assert q.total() == 5

    def test_wait_edges_carry_quorum_label(self):
        q = QuorumEvent(quorum=2, n_total=3)
        for child in self._rpc_children(3):
            q.add(child)
        assert q.wait_edges() == [("s0", 2, 3), ("s1", 2, 3), ("s2", 2, 3)]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(EventError):
            QuorumEvent(quorum=0)
        with pytest.raises(EventError):
            QuorumEvent(quorum=3, n_total=2)

    def test_cannot_contain_itself(self):
        q = QuorumEvent(quorum=1)
        with pytest.raises(EventError):
            q.add(q)


class TestNesting:
    def test_or_of_quorums_fast_slow_paths(self):
        """The §3.2 fast-path pattern: OrEvent(fast_ok, fast_reject)."""
        replies = [RpcEvent("accept", to_node=f"s{i}") for i in range(3)]
        fast_ok = QuorumEvent(quorum=3, n_total=3, classify=lambda e: e.reply == "ok")
        fast_reject = QuorumEvent(quorum=1, n_total=3, classify=lambda e: e.reply != "ok")
        for r in replies:
            fast_ok.add(r)
            fast_reject.add(r)
        fastpath = OrEvent(fast_ok, fast_reject, name="fastpath")

        replies[0].complete("ok")
        replies[1].complete("nack")
        assert fastpath.ready()
        assert fast_reject.ready()
        assert not fast_ok.ready()

    def test_and_of_quorum_and_disk(self):
        """Raft commit: local durability AND a majority of remote acks."""
        local = Event(name="local-fsync", source="s1")
        quorum = QuorumEvent(quorum=1, n_total=2)
        remote = RpcEvent("AppendEntries", to_node="s2")
        quorum.add(remote)
        commit = AndEvent(local, quorum)
        remote.complete("ok")
        assert not commit.ready()
        local.trigger()
        assert commit.ready()

    def test_deep_nesting_propagates(self):
        leaf = Event()
        inner = OrEvent(leaf)
        middle = AndEvent(inner)
        outer = OrEvent(middle)
        leaf.trigger()
        assert outer.ready()

    def test_quorum_of_quorums(self):
        shard_quorums = []
        leaves = []
        for shard in range(3):
            q = QuorumEvent(quorum=2, n_total=3, name=f"shard{shard}")
            children = [RpcEvent("w", to_node=f"s{shard}{i}") for i in range(3)]
            for child in children:
                q.add(child)
            shard_quorums.append(q)
            leaves.append(children)
        all_shards = AndEvent(*shard_quorums)
        for shard in range(3):
            leaves[shard][0].complete("ok")
            leaves[shard][1].complete("ok")
        assert all_shards.ready()
