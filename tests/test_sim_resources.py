"""Unit tests for resource models: CPU, disk, memory, NIC."""

import pytest

from repro.sim.kernel import Kernel
from repro.sim.resources import (
    CpuResource,
    DiskResource,
    MemoryResource,
    NicResource,
)


def run_all(kernel):
    kernel.run_until_idle()


class TestCpuResource:
    def test_single_job_takes_cost_over_rate(self):
        kernel = Kernel()
        cpu = CpuResource(kernel, base_rate=1.0)
        done_at = []
        cpu.submit(10.0, on_done=lambda: done_at.append(kernel.now))
        run_all(kernel)
        assert done_at == [10.0]

    def test_fifo_queueing(self):
        kernel = Kernel()
        cpu = CpuResource(kernel, base_rate=1.0)
        done = []
        cpu.submit(5.0, on_done=lambda: done.append(("a", kernel.now)))
        cpu.submit(5.0, on_done=lambda: done.append(("b", kernel.now)))
        run_all(kernel)
        assert done == [("a", 5.0), ("b", 10.0)]

    def test_quota_slows_service(self):
        kernel = Kernel()
        cpu = CpuResource(kernel, base_rate=1.0)
        cpu.set_quota(0.05)  # the Table 1 "CPU slow" fault
        done_at = []
        cpu.submit(1.0, on_done=lambda: done_at.append(kernel.now))
        run_all(kernel)
        assert done_at == [pytest.approx(20.0)]

    def test_contender_share_matches_cfs_formula(self):
        kernel = Kernel()
        cpu = CpuResource(kernel, base_rate=1.0)
        cpu.set_contender_share(16.0)  # the Table 1 "CPU contention" fault
        done_at = []
        cpu.submit(1.0, on_done=lambda: done_at.append(kernel.now))
        run_all(kernel)
        assert done_at == [pytest.approx(17.0)]

    def test_rate_change_retimes_inflight_job(self):
        kernel = Kernel()
        cpu = CpuResource(kernel, base_rate=1.0)
        done_at = []
        cpu.submit(10.0, on_done=lambda: done_at.append(kernel.now))
        # After 5 ms, half the work is done; throttle to 50%.
        kernel.schedule(5.0, cpu.set_quota, 0.5)
        run_all(kernel)
        # Remaining 5 cost units at rate 0.5 take 10 ms more.
        assert done_at == [pytest.approx(15.0)]

    def test_fault_clear_speeds_job_back_up(self):
        kernel = Kernel()
        cpu = CpuResource(kernel, base_rate=1.0)
        cpu.set_quota(0.1)
        done_at = []
        cpu.submit(10.0, on_done=lambda: done_at.append(kernel.now))
        kernel.schedule(50.0, cpu.set_quota, 1.0)  # 5 units done by then
        run_all(kernel)
        assert done_at == [pytest.approx(55.0)]

    def test_cancelled_job_never_completes(self):
        kernel = Kernel()
        cpu = CpuResource(kernel, base_rate=1.0)
        done = []
        cpu.submit(5.0, on_done=lambda: done.append("a"))
        job = cpu.submit(5.0, on_done=lambda: done.append("b"))
        job.cancel()
        run_all(kernel)
        assert done == ["a"]

    def test_penalty_multiplies_cost(self):
        kernel = Kernel()
        cpu = CpuResource(kernel, base_rate=1.0)
        cpu.set_penalty(4.0)
        done_at = []
        cpu.submit(1.0, on_done=lambda: done_at.append(kernel.now))
        run_all(kernel)
        assert done_at == [pytest.approx(4.0)]

    def test_invalid_parameters_rejected(self):
        cpu = CpuResource(Kernel())
        with pytest.raises(ValueError):
            cpu.set_quota(0.0)
        with pytest.raises(ValueError):
            cpu.set_quota(1.5)
        with pytest.raises(ValueError):
            cpu.set_contender_share(-1.0)
        with pytest.raises(ValueError):
            cpu.set_penalty(0.5)
        with pytest.raises(ValueError):
            cpu.submit(-1.0)

    def test_queue_depth_tracks_waiting_and_in_service(self):
        kernel = Kernel()
        cpu = CpuResource(kernel, base_rate=1.0)
        cpu.submit(10.0)
        cpu.submit(10.0)
        kernel.run(until_ms=1.0)
        assert cpu.queue_depth() == 2
        kernel.run(until_ms=11.0)
        assert cpu.queue_depth() == 1
        run_all(kernel)
        assert cpu.queue_depth() == 0

    def test_busy_fraction(self):
        kernel = Kernel()
        cpu = CpuResource(kernel, base_rate=1.0)
        cpu.submit(10.0)
        kernel.run(until_ms=20.0)
        assert cpu.busy_fraction() == pytest.approx(0.5)


class TestDiskResource:
    def test_write_latency_includes_setup_and_bandwidth(self):
        kernel = Kernel()
        # 1 MB/s => 1000 bytes per ms.
        disk = DiskResource(kernel, bandwidth_mbps=1.0, op_latency_ms=2.0)
        done_at = []
        disk.submit(5000.0, on_done=lambda: done_at.append(kernel.now))
        run_all(kernel)
        assert done_at == [pytest.approx(7.0)]  # 2 ms setup + 5 ms transfer

    def test_cap_fraction_throttles_bandwidth_not_setup(self):
        kernel = Kernel()
        disk = DiskResource(kernel, bandwidth_mbps=1.0, op_latency_ms=2.0)
        disk.set_cap_fraction(0.5)  # Table 1 "disk slow"
        done_at = []
        disk.submit(5000.0, on_done=lambda: done_at.append(kernel.now))
        run_all(kernel)
        assert done_at == [pytest.approx(12.0)]  # 2 + 10

    def test_contender_load_shares_bandwidth(self):
        kernel = Kernel()
        disk = DiskResource(kernel, bandwidth_mbps=1.0, op_latency_ms=0.0)
        disk.set_contender_load(0.75)  # Table 1 "disk contention"
        done_at = []
        disk.submit(1000.0, on_done=lambda: done_at.append(kernel.now))
        run_all(kernel)
        assert done_at == [pytest.approx(4.0)]

    def test_fifo_ordering(self):
        kernel = Kernel()
        disk = DiskResource(kernel, bandwidth_mbps=1.0, op_latency_ms=1.0)
        done = []
        disk.submit(1000.0, on_done=lambda: done.append("a"))
        disk.submit(1000.0, on_done=lambda: done.append("b"))
        run_all(kernel)
        assert done == ["a", "b"]

    def test_zero_byte_op_costs_setup_only(self):
        kernel = Kernel()
        disk = DiskResource(kernel, bandwidth_mbps=1.0, op_latency_ms=3.0)
        done_at = []
        disk.submit(0.0, on_done=lambda: done_at.append(kernel.now))
        run_all(kernel)
        assert done_at == [pytest.approx(3.0)]

    def test_invalid_parameters_rejected(self):
        disk = DiskResource(Kernel())
        with pytest.raises(ValueError):
            disk.set_cap_fraction(0.0)
        with pytest.raises(ValueError):
            disk.set_contender_load(1.0)
        with pytest.raises(ValueError):
            disk.set_contender_load(-0.1)


class TestMemoryResource:
    def test_allocate_free_accounting(self):
        mem = MemoryResource(capacity_bytes=1000)
        mem.allocate(400, owner="buf")
        assert mem.used == 400
        assert mem.usage_of("buf") == 400
        mem.free(150, owner="buf")
        assert mem.used == 250
        assert mem.peak == 400

    def test_over_free_rejected(self):
        mem = MemoryResource(capacity_bytes=1000)
        mem.allocate(100, owner="a")
        with pytest.raises(ValueError):
            mem.free(200, owner="a")

    def test_oom_callback_fires_once_per_excursion(self):
        mem = MemoryResource(capacity_bytes=1000)
        ooms = []
        mem.on_oom = lambda: ooms.append(mem.used)
        mem.allocate(900)
        mem.allocate(200)  # crosses
        mem.allocate(100)  # still over; no second call
        assert ooms == [1100]
        mem.free(500)
        mem.allocate(600)  # crosses again
        assert len(ooms) == 2

    def test_set_limit_models_memory_contention(self):
        mem = MemoryResource(capacity_bytes=1000)
        mem.allocate(400)
        ooms = []
        mem.on_oom = lambda: ooms.append(True)
        mem.set_limit(300)
        assert ooms == [True]
        assert mem.pressure() > 1.0

    def test_swap_penalty_ramps_above_threshold(self):
        mem = MemoryResource(capacity_bytes=1000, swap_threshold=0.8, max_swap_penalty=5.0)
        mem.allocate(700)
        assert mem.swap_penalty() == 1.0
        mem.allocate(200)  # 90% -> halfway up the ramp
        assert mem.swap_penalty() == pytest.approx(3.0)
        mem.allocate(100)  # 100% -> full penalty
        assert mem.swap_penalty() == pytest.approx(5.0)

    def test_swap_penalty_saturates(self):
        mem = MemoryResource(capacity_bytes=1000, swap_threshold=0.8, max_swap_penalty=5.0)
        mem.allocate(2000)
        assert mem.swap_penalty() == pytest.approx(5.0)

    def test_invalid_sizes_rejected(self):
        mem = MemoryResource(capacity_bytes=1000)
        with pytest.raises(ValueError):
            mem.allocate(-1)
        with pytest.raises(ValueError):
            mem.free(-1)
        with pytest.raises(ValueError):
            MemoryResource(capacity_bytes=0)


class TestNicResource:
    def test_extra_delay_adds_to_base(self):
        nic = NicResource(base_delay_ms=0.25)
        assert nic.delay_ms() == 0.25
        nic.set_extra_delay(400.0)  # Table 1 "network slow"
        assert nic.delay_ms() == 400.25
        nic.set_extra_delay(0.0)
        assert nic.delay_ms() == 0.25

    def test_negative_delays_rejected(self):
        with pytest.raises(ValueError):
            NicResource(base_delay_ms=-1.0)
        with pytest.raises(ValueError):
            NicResource().set_extra_delay(-1.0)
