"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.sim.kernel import Kernel
from repro.sim.resources import CpuResource, DiskResource
from repro.runtime.runtime import Runtime


@pytest.fixture
def kernel() -> Kernel:
    return Kernel()


@pytest.fixture
def runtime(kernel: Kernel) -> Runtime:
    cpu = CpuResource(kernel, base_rate=1.0)
    disk = DiskResource(kernel, bandwidth_mbps=200.0, op_latency_ms=0.1)
    return Runtime(kernel, node="n0", cpu=cpu, disk=disk)


def drain(kernel: Kernel, max_time_ms: float = 1e9) -> None:
    """Run the kernel until it has no more work."""
    kernel.run_until_idle(max_time_ms)
