"""Learner role, conf-change demote/promote, and leadership transfer."""

import pytest

from repro.cluster.cluster import Cluster
from repro.raft.config import RaftConfig
from repro.raft.service import (
    deploy_depfast_raft,
    find_leader,
    restart_raft_node,
    wait_for_leader,
)
from repro.raft.types import CONF_DEMOTE, CONF_PROMOTE, Role
from repro.workload.driver import KvServiceClient

GROUP = ["s1", "s2", "s3"]


def deploy(seed=7, **config_kwargs):
    cluster = Cluster(seed=seed)
    config = RaftConfig(preferred_leader="s1", **config_kwargs)
    raft = deploy_depfast_raft(cluster, GROUP, config=config)
    wait_for_leader(cluster, raft)
    return cluster, raft


def run_client_ops(cluster, ops):
    node = cluster.add_client(f"cx{cluster.kernel.now:.0f}")
    node.start()
    client = KvServiceClient(node, GROUP)
    results = []

    def script():
        for op in ops:
            ok, value = yield from client.execute(op, size_bytes=64)
            results.append((ok, value))

    node.runtime.spawn(script())
    cluster.run(until_ms=cluster.kernel.now + 20_000.0)
    return results


def demote(cluster, raft, member, deadline_ms=5_000.0):
    leader = find_leader(raft)
    done = leader.propose_conf_change(CONF_DEMOTE, member)
    assert done is not None
    cluster.run(cluster.kernel.now + deadline_ms)
    return leader


class TestConfChanges:
    def test_demote_turns_follower_into_learner_everywhere(self):
        cluster, raft = deploy()
        demote(cluster, raft, "s3")
        assert raft["s3"].role == Role.LEARNER
        for node_id in GROUP:
            assert raft[node_id].voting_members == {"s1", "s2"}
            assert raft[node_id].conf_changes_applied == 1
        assert find_leader(raft).majority == 2

    def test_promote_restores_voter(self):
        cluster, raft = deploy()
        demote(cluster, raft, "s3")
        leader = find_leader(raft)
        done = leader.propose_conf_change(CONF_PROMOTE, "s3")
        assert done is not None
        cluster.run(cluster.kernel.now + 5_000.0)
        assert raft["s3"].role == Role.FOLLOWER
        for node_id in GROUP:
            assert raft[node_id].voting_members == set(GROUP)

    def test_learner_still_replicates(self):
        cluster, raft = deploy()
        demote(cluster, raft, "s3")
        results = run_client_ops(
            cluster, [("put", f"k{i}", "v") for i in range(20)]
        )
        assert all(ok for ok, _ in results)
        cluster.run(cluster.kernel.now + 2_000.0)
        # The learner holds the committed data despite never voting.
        assert raft["s3"].kv.get("k19") == "v"
        assert raft["s3"].role == Role.LEARNER

    def test_demoted_learner_never_campaigns(self):
        cluster, raft = deploy()
        demote(cluster, raft, "s3")
        term_before = raft["s3"].term
        # Kill both voters: the group correctly loses its quorum, and the
        # learner must NOT step up to fill the vacuum.
        cluster.node("s1").crash(reason="test")
        cluster.node("s2").crash(reason="test")
        cluster.run(cluster.kernel.now + 10_000.0)
        assert raft["s3"].role == Role.LEARNER
        assert raft["s3"].term == term_before
        assert find_leader(raft) is None

    def test_voters_reject_votes_from_non_members_without_term_bump(self):
        cluster, raft = deploy()
        demote(cluster, raft, "s3")
        voter = raft["s2"]
        term_before = voter.term
        handler = voter._on_request_vote(
            {
                "term": term_before + 10,
                "candidate": "s3",
                "last_term": term_before,
                "last_index": 10_000,
            },
            "s3",
        )
        # The rejection happens before the handler's first yield, so the
        # generator finishes immediately with the reply as its value.
        with pytest.raises(StopIteration) as stop:
            next(handler)
        assert stop.value.value == {"term": term_before, "granted": False}
        # The guard fires before term observation: a rejoining demoted
        # node must not depose a healthy leader by term inflation.
        assert voter.term == term_before

    def test_propose_guards(self):
        cluster, raft = deploy()
        leader = find_leader(raft)
        follower = next(raft[n] for n in GROUP if raft[n] is not leader)
        assert follower.propose_conf_change(CONF_DEMOTE, "s3") is None
        assert leader.propose_conf_change(CONF_DEMOTE, leader.id) is None
        assert leader.propose_conf_change(CONF_PROMOTE, "s2") is None
        assert leader.propose_conf_change(CONF_DEMOTE, "nope") is None
        with pytest.raises(ValueError):
            leader.propose_conf_change("evict", "s3")
        demote(cluster, raft, "s3")
        assert find_leader(raft).propose_conf_change(CONF_DEMOTE, "s3") is None

    def test_demotion_survives_crash_recovery_via_log_replay(self):
        cluster, raft = deploy()
        demote(cluster, raft, "s3")
        cluster.node("s3").crash(reason="test")
        cluster.run(cluster.kernel.now + 1_000.0)
        recovered = restart_raft_node(cluster, raft, "s3")
        # Fresh traffic makes the leader re-verify the recovered log and
        # advance its commit index past the replayed demote entry.
        run_client_ops(cluster, [("put", "after", "restart")])
        cluster.run(cluster.kernel.now + 2_000.0)
        # Applying the replayed conf change tells the node it is a
        # learner, not a voter.
        assert recovered.role == Role.LEARNER
        assert recovered.voting_members == {"s1", "s2"}


class TestInitialVoters:
    def test_unlisted_member_starts_as_learner(self):
        cluster = Cluster(seed=7)
        config = RaftConfig(preferred_leader="s1", initial_voters=["s1", "s2"])
        raft = deploy_depfast_raft(cluster, GROUP, config=config)
        leader = wait_for_leader(cluster, raft)
        assert leader.id in ("s1", "s2")
        assert raft["s3"].role == Role.LEARNER
        assert leader.majority == 2

    def test_empty_initial_voters_rejected(self):
        with pytest.raises(ValueError):
            RaftConfig(initial_voters=[])


class TestLeadershipTransfer:
    def test_transfer_moves_leadership_to_target(self):
        cluster, raft = deploy()
        old = find_leader(raft)
        assert old.id == "s1"
        assert old.transfer_leadership("s2")
        cluster.run(cluster.kernel.now + 3_000.0)
        new = find_leader(raft)
        assert new is not None
        assert new.id == "s2"
        assert raft["s1"].role == Role.FOLLOWER
        assert old.leadership_transfers == 1

    def test_transfer_guards(self):
        cluster, raft = deploy()
        leader = find_leader(raft)
        follower = next(raft[n] for n in GROUP if raft[n] is not leader)
        assert not follower.transfer_leadership("s1")
        assert not leader.transfer_leadership(leader.id)
        assert not leader.transfer_leadership("nope")
        demote(cluster, raft, "s3")
        assert not find_leader(raft).transfer_leadership("s3")
