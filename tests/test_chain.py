"""Tests for chain replication and its fail-slow propagation property."""

import pytest

from repro.chain import deploy_chain
from repro.cluster.cluster import Cluster
from repro.faults.injector import FaultInjector
from repro.trace.spg import build_spg, single_wait_edges
from repro.trace.verify import check_fail_slow_tolerance
from repro.workload.driver import ClosedLoopDriver, KvServiceClient
from repro.workload.ycsb import YcsbWorkload

CHAIN = ["s1", "s2", "s3"]


def deploy(seed=29):
    cluster = Cluster(seed=seed)
    nodes = deploy_chain(cluster, CHAIN)
    return cluster, nodes


def run_ops(cluster, ops, servers=None):
    node = cluster.add_client(f"cx{cluster.kernel.now:.0f}")
    node.start()
    client = KvServiceClient(node, servers or CHAIN)
    results = []

    def script():
        for op in ops:
            ok, value = yield from client.execute(op, size_bytes=64)
            results.append((ok, value))

    node.runtime.spawn(script())
    cluster.run(until_ms=cluster.kernel.now + 20_000.0)
    return results


class TestChainBasics:
    def test_write_then_read_through_chain(self):
        cluster, nodes = deploy()
        results = run_ops(cluster, [("put", "k", "v"), ("get", "k")])
        assert results == [(True, None), (True, "v")]

    def test_all_nodes_hold_acked_writes(self):
        cluster, nodes = deploy()
        results = run_ops(cluster, [("put", f"k{i}", f"v{i}") for i in range(20)])
        assert all(ok for ok, _ in results)
        cluster.run(until_ms=cluster.kernel.now + 1000.0)
        checksums = {n.kv.checksum() for n in nodes.values()}
        assert len(checksums) == 1

    def test_reads_served_by_tail(self):
        cluster, nodes = deploy()
        run_ops(cluster, [("put", "k", "v")])
        node = cluster.add_client("creader")
        node.start()
        client = KvServiceClient(node, ["s1", "s2", "s3"])  # starts at head
        results = []

        def script():
            ok, value = yield from client.execute(("get", "k"), size_bytes=32)
            results.append((ok, value))

        node.runtime.spawn(script())
        cluster.run(until_ms=cluster.kernel.now + 5000.0)
        assert results == [(True, "v")]
        assert client.redirects >= 1  # bounced from head to tail

    def test_chain_needs_two_nodes(self):
        with pytest.raises(ValueError):
            deploy_chain(Cluster(), ["solo"])


class TestChainFailSlowPropagation:
    def _throughput(self, fault):
        cluster, nodes = deploy()
        if fault:
            FaultInjector(cluster).inject("s2", fault)  # slow MIDDLE node
        workload = YcsbWorkload(cluster.rng.stream("y"), record_count=1000, value_size=1000)
        driver = ClosedLoopDriver(cluster, CHAIN, workload, n_clients=16)
        driver.start()
        cluster.run(until_ms=6000.0)
        return driver.report(2000.0, 6000.0)

    @pytest.mark.slow
    def test_one_slow_middle_node_throttles_the_chain(self):
        healthy = self._throughput(None)
        slowed = self._throughput("cpu_slow")
        # Chain replication cannot route around the slow node: writes
        # collapse to the slow node's pace.
        assert slowed.throughput_ops_s < 0.5 * healthy.throughput_ops_s

    def test_checker_fails_the_chain(self):
        cluster, nodes = deploy()
        run_ops(cluster, [("put", f"k{i}", "v") for i in range(10)])
        report = check_fail_slow_tolerance(cluster.tracer.records, [CHAIN])
        assert not report.tolerant
        assert any(v.source == "s3" for v in report.violations)  # head waits tail

    def test_spg_shows_red_head_to_tail_edge(self):
        cluster, nodes = deploy()
        run_ops(cluster, [("put", f"k{i}", "v") for i in range(10)])
        graph = build_spg(cluster.tracer.records)
        assert ("s1", "s3") in single_wait_edges(graph)
