"""RPC integration tests on a real mini-cluster."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.node import NodeSpec
from repro.net.rpc import QuorumCall, RpcError


def make_cluster(n=3, **spec_kwargs):
    cluster = Cluster(seed=1)
    nodes = []
    for i in range(n):
        node = cluster.add_node(f"s{i+1}", spec=NodeSpec(**spec_kwargs))
        nodes.append(node)
    return cluster, nodes


def echo_handler(runtime):
    def handler(payload, src):
        yield runtime.compute(0.05)
        return {"echo": payload, "from": runtime.node}

    return handler


class TestRpcRoundtrip:
    def test_call_and_reply(self):
        cluster, nodes = make_cluster(2)
        server, client = nodes
        server.endpoint.register("echo", echo_handler(server.runtime))
        for node in nodes:
            node.start()
        results = []

        def caller():
            event = client.endpoint.call("s1", "echo", {"x": 1}, size_bytes=100)
            yield event.wait()
            results.append((event.ok, event.reply, cluster.kernel.now))

        client.runtime.spawn(caller())
        cluster.run(until_ms=1000.0)
        ((ok, reply, at),) = results
        assert ok
        assert reply == {"echo": {"x": 1}, "from": "s1"}
        assert 0 < at < 100.0

    def test_rpc_latency_reflects_network_and_cpu(self):
        cluster, nodes = make_cluster(2)
        server, client = nodes
        server.endpoint.register("echo", echo_handler(server.runtime))
        for node in nodes:
            node.start()
        server.nic.set_extra_delay(400.0)
        latencies = []

        def caller():
            event = client.endpoint.call("s1", "echo", None, size_bytes=10)
            yield event.wait()
            latencies.append(event.latency_ms())

        client.runtime.spawn(caller())
        cluster.run(until_ms=3000.0)
        assert latencies[0] > 800.0  # 400ms each way through the slow NIC

    def test_unknown_method_raises_loudly(self):
        cluster, nodes = make_cluster(2)
        server, client = nodes
        for node in nodes:
            node.start()

        def caller():
            client.endpoint.call("s1", "nope", None)
            yield client.runtime.sleep(1.0)

        client.runtime.spawn(caller())
        with pytest.raises(RpcError):
            cluster.run(until_ms=1000.0)

    def test_duplicate_handler_rejected(self):
        cluster, nodes = make_cluster(1)
        nodes[0].endpoint.register("m", echo_handler(nodes[0].runtime))
        with pytest.raises(RpcError):
            nodes[0].endpoint.register("m", echo_handler(nodes[0].runtime))

    def test_call_to_crashed_node_times_out(self):
        cluster, nodes = make_cluster(2)
        server, client = nodes
        server.endpoint.register("echo", echo_handler(server.runtime))
        for node in nodes:
            node.start()
        server.crash()
        outcomes = []

        def caller():
            event = client.endpoint.call("s1", "echo", None)
            result = yield event.wait(timeout_ms=100.0)
            outcomes.append((result.timed_out, event.ok))

        client.runtime.spawn(caller())
        cluster.run(until_ms=1000.0)
        assert outcomes == [(True, False)]

    def test_notify_is_one_way(self):
        cluster, nodes = make_cluster(2)
        server, client = nodes
        seen = []

        def handler(payload, src):
            seen.append((payload, src))
            return None
            yield  # pragma: no cover - marks this as a generator

        server.endpoint.register("hint", handler)
        for node in nodes:
            node.start()
        client.endpoint.notify("s1", "hint", "data", size_bytes=10)
        cluster.run(until_ms=100.0)
        assert seen == [("data", "s2")]


class TestQuorumCall:
    def _setup(self, n=4, handler_delay=None):
        """Node s1 calls s2..sn; handler on si sleeps handler_delay[i]."""
        cluster, nodes = make_cluster(n)
        caller, servers = nodes[0], nodes[1:]
        for idx, server in enumerate(servers):
            delay = (handler_delay or {}).get(server.node_id, 0.1)

            def handler(payload, src, _delay=delay, _rt=server.runtime):
                yield _rt.sleep(_delay)
                return {"ok": True, "from": _rt.node}

            server.endpoint.register("vote", handler)
        for node in nodes:
            node.start()
        return cluster, caller, servers

    def test_quorum_completes_without_straggler(self):
        cluster, caller, servers = self._setup(
            n=4, handler_delay={"s2": 1.0, "s3": 2.0, "s4": 5000.0}
        )
        done = []

        def logic():
            call = QuorumCall(
                caller.endpoint, ["s2", "s3", "s4"], "vote", quorum=2
            )
            yield call.wait()
            done.append((cluster.kernel.now, len(call.replies())))

        caller.runtime.spawn(logic())
        cluster.run(until_ms=10_000.0)
        ((at, n_replies),) = done
        assert at < 100.0  # did not wait for the 5s straggler
        assert n_replies == 2

    def test_classifier_filters_rejections(self):
        cluster, nodes = make_cluster(3)
        caller, servers = nodes[0], nodes[1:]
        for server, verdict in zip(servers, (False, True)):
            def handler(payload, src, _v=verdict, _rt=server.runtime):
                yield _rt.compute(0.01)
                return {"granted": _v}

            server.endpoint.register("vote", handler)
        for node in nodes:
            node.start()
        outcome = []

        def logic():
            call = QuorumCall(
                caller.endpoint,
                ["s2", "s3"],
                "vote",
                quorum=1,
                classify=lambda ev: ev.reply["granted"],
            )
            yield call.wait(timeout_ms=1000.0)
            outcome.append((call.event.n_ok, call.event.n_reject))

        caller.runtime.spawn(logic())
        cluster.run(until_ms=2000.0)
        assert outcome == [(1, 1)]

    def test_quorum_larger_than_targets_rejected(self):
        cluster, nodes = make_cluster(2)
        with pytest.raises(RpcError):
            QuorumCall(nodes[0].endpoint, ["s2"], "vote", quorum=2)

    def test_discard_on_quorum_drops_buffered_sends(self):
        # Choke the connection to s4 so the quorum-call message stays in
        # s1's send buffer, then verify the quorum-aware framework discards
        # it once s2+s3 reply.
        cluster, caller, servers = self._setup(n=4)
        cluster.network.set_window_bytes(100)  # tiny windows
        conn = cluster.network.connection("s1", "s4")
        # s4's dispatcher is CPU-starved: after the first filler is taken,
        # the second sits un-acked in the inbox, pinning the window.
        cluster.node("s4").cpu.set_quota(0.0001)
        caller.endpoint.call("s4", "vote", None, size_bytes=90)
        caller.endpoint.call("s4", "vote", None, size_bytes=90)
        done = []

        def logic():
            yield caller.runtime.sleep(1.0)  # let the fillers pin the window
            call = QuorumCall(
                caller.endpoint,
                ["s2", "s3", "s4"],
                "vote",
                payload=None,
                size_bytes=200,
                quorum=2,
                discard_on_quorum=True,
            )
            yield call.wait()
            done.append(conn.discarded)

        caller.runtime.spawn(logic())
        cluster.run(until_ms=200.0)
        assert done == [1]  # the buffered s4 message was discarded


class TestCancelSendIdempotence:
    """Regressions for the straggler-discard edge cases.

    ``cancel_send`` can be invoked from several places for the same RPC
    (a QuorumCall's straggler discard, a batcher's outstanding-discard
    and a HedgedCall's loser cancellation), and a reply can land on the
    same tick the quorum fires. The handle must do the buffer scan once,
    memoize the outcome, and retire the caller's pending-reply entry on
    a successful discard.
    """

    def _choked_call(self):
        """One RPC to a choked peer that will sit in s1's send buffer."""
        cluster, nodes = make_cluster(2)
        caller, server = nodes

        def handler(payload, src):
            yield server.runtime.sleep(0.1)
            return {"ok": True}

        server.endpoint.register("vote", handler)
        for node in nodes:
            node.start()
        cluster.network.set_window_bytes(100)
        server.cpu.set_quota(0.0001)
        caller.endpoint.call("s2", "vote", None, size_bytes=90)
        caller.endpoint.call("s2", "vote", None, size_bytes=90)
        cluster.run(until_ms=1.0)  # fillers pin the window
        event = caller.endpoint.call("s2", "vote", None, size_bytes=200)
        return cluster, caller, event

    def test_double_cancel_discards_once(self):
        cluster, caller, event = self._choked_call()
        conn = cluster.network.connection("s1", "s2")
        before = conn.discarded
        assert event.cancel_send() is True
        assert conn.discarded == before + 1
        # Second (and third) cancel: memoized outcome, no rescan, no
        # double-count of the discard.
        assert event.cancel_send() is True
        assert event.cancel_send() is True
        assert conn.discarded == before + 1

    def test_successful_discard_retires_pending_entry(self):
        _cluster, caller, event = self._choked_call()
        pending_before = len(caller.endpoint._pending)
        assert event.cancel_send() is True
        # The request died in the send buffer: no reply will ever arrive,
        # so keeping the pending entry would leak it for the whole run.
        assert len(caller.endpoint._pending) == pending_before - 1

    def test_cancel_after_transmit_is_a_stable_no(self):
        cluster, nodes = make_cluster(2)
        caller, server = nodes
        server.endpoint.register("vote", echo_handler(server.runtime))
        for node in nodes:
            node.start()
        event = caller.endpoint.call("s2", "vote", None, size_bytes=10)
        cluster.run(until_ms=50.0)  # delivered and answered
        assert event.ok
        assert event.cancel_send() is False
        assert event.cancel_send() is False

    def test_reply_arriving_with_quorum_is_not_cancelled(self):
        # s2 and s3 answer at exactly the same virtual time: the quorum
        # (quorum=1) fires on one child while the other's reply is being
        # delivered on the same tick. The straggler discard must treat
        # the tied reply as arrived (nothing left to cancel) — both
        # events complete ok and the connection discards nothing.
        cluster, nodes = make_cluster(3)
        caller, servers = nodes[0], nodes[1:]
        for server in servers:
            def handler(payload, src, _rt=server.runtime):
                yield _rt.sleep(5.0)
                return {"ok": True, "from": _rt.node}

            server.endpoint.register("vote", handler)
        for node in nodes:
            node.start()
        done = []

        def logic():
            call = QuorumCall(
                caller.endpoint,
                ["s2", "s3"],
                "vote",
                quorum=1,
                discard_on_quorum=True,
            )
            yield call.wait(timeout_ms=1000.0)
            done.append(call)

        caller.runtime.spawn(logic())
        cluster.run(until_ms=2000.0)
        (call,) = done
        assert [event.ok for event in call.calls] == [True, True]
        assert cluster.network.connection("s1", "s2").discarded == 0
        assert cluster.network.connection("s1", "s3").discarded == 0
        # And a late manual cancel on either is an idempotent no-op.
        for event in call.calls:
            assert event.cancel_send() is False
            assert event.cancel_send() is False
