"""Tests for wait breakdowns and trace-point peer-slowness detection (§5)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.detector.peer_monitor import analyze_peer_slowness
from repro.faults.injector import FaultInjector
from repro.raft.config import RaftConfig
from repro.raft.service import deploy_depfast_raft, wait_for_leader
from repro.trace.breakdown import busiest_waits, node_wait_breakdown, render_breakdown
from repro.trace.tracepoints import WaitRecord
from repro.workload.driver import ClosedLoopDriver
from repro.workload.ycsb import YcsbWorkload

GROUP = ["s1", "s2", "s3"]


def record(node, kind, name, waited):
    return WaitRecord(
        coro_name="c",
        node=node,
        event_kind=kind,
        event_name=name,
        edges=[],
        started_at=0.0,
        ended_at=waited,
        timed_out=False,
    )


class TestBreakdownUnits:
    RECORDS = [
        record("s1", "quorum", "repl", 60.0),
        record("s1", "quorum", "repl", 20.0),
        record("s1", "disk", "fsync", 20.0),
        record("s2", "cpu", "apply", 99.0),  # other node: excluded
    ]

    def test_breakdown_shares_sum_to_one(self):
        breakdown = node_wait_breakdown(self.RECORDS, "s1")
        assert breakdown["quorum"] == (80.0, pytest.approx(0.8))
        assert breakdown["disk"] == (20.0, pytest.approx(0.2))
        assert sum(share for _total, share in breakdown.values()) == pytest.approx(1.0)

    def test_empty_node_breakdown(self):
        assert node_wait_breakdown(self.RECORDS, "ghost") == {}

    def test_busiest_waits_ranked_by_total(self):
        ranked = busiest_waits(self.RECORDS, "s1")
        assert ranked[0] == ("repl", 2, 80.0)
        assert ranked[1] == ("fsync", 1, 20.0)

    def test_render_contains_rows(self):
        text = render_breakdown(self.RECORDS, "s1")
        assert "quorum" in text and "80.0" in text
        assert "(no recorded waits)" in render_breakdown(self.RECORDS, "ghost")


@pytest.mark.slow
class TestPeerSlownessDetection:
    def _traced_cluster(self, fault=None, victim="s3"):
        cluster = Cluster(seed=47)
        raft = deploy_depfast_raft(cluster, GROUP, config=RaftConfig(preferred_leader="s1"))
        wait_for_leader(cluster, raft)
        if fault:
            FaultInjector(cluster).inject(victim, fault)
        workload = YcsbWorkload(cluster.rng.stream("y"), record_count=1000, value_size=1000)
        driver = ClosedLoopDriver(cluster, GROUP, workload, n_clients=16)
        driver.start()
        cluster.run(until_ms=6000.0)
        return cluster

    def test_healthy_cluster_has_no_suspects(self):
        cluster = self._traced_cluster()
        report = analyze_peer_slowness(cluster.tracer, node="s1")
        assert report.suspects == []
        assert len(report.profiles) >= 2

    @pytest.mark.parametrize("fault", ["cpu_slow", "network_slow", "disk_slow"])
    def test_fail_slow_follower_is_flagged(self, fault):
        cluster = self._traced_cluster(fault=fault)
        report = analyze_peer_slowness(cluster.tracer, node="s1", since_ms=1000.0)
        assert report.suspects == ["s3"], report.summary()

    def test_summary_marks_the_suspect(self):
        cluster = self._traced_cluster(fault="network_slow")
        report = analyze_peer_slowness(cluster.tracer, node="s1", since_ms=1000.0)
        assert "FAIL-SLOW" in report.summary()

    def test_rpc_trace_points_cover_stragglers(self):
        """Even the tolerated slow follower's replies are traced."""
        cluster = self._traced_cluster(fault="network_slow")
        peers = {peer for _n, peer, _m, _l, _t in cluster.tracer.rpc_latencies}
        assert "s3" in peers

    def test_factor_validation(self):
        cluster = Cluster()
        with pytest.raises(ValueError):
            analyze_peer_slowness(cluster.tracer, factor=1.0)

    def test_wait_profile_of_live_leader(self):
        cluster = self._traced_cluster()
        breakdown = node_wait_breakdown(cluster.tracer.records, "s1")
        # The leader's waits include replication quorums and local values.
        assert "quorum" in breakdown
        text = render_breakdown(cluster.tracer.records, "s1")
        assert "quorum" in text
