"""Tests for linearizable read modes and log compaction/snapshots."""

import pytest

from repro.cluster.cluster import Cluster
from repro.faults.injector import FaultInjector
from repro.raft.config import RaftConfig
from repro.raft.log import RaftLog
from repro.raft.service import deploy_depfast_raft, wait_for_leader
from repro.raft.types import LogEntry
from repro.workload.driver import ClosedLoopDriver, KvServiceClient
from repro.workload.ycsb import YcsbWorkload

GROUP = ["s1", "s2", "s3"]


def deploy(seed=41, **config_kwargs):
    cluster = Cluster(seed=seed)
    config = RaftConfig(preferred_leader="s1", **config_kwargs)
    raft = deploy_depfast_raft(cluster, GROUP, config=config)
    wait_for_leader(cluster, raft)
    return cluster, raft


def run_ops(cluster, ops):
    node = cluster.add_client(f"cx{cluster.kernel.now:.0f}")
    node.start()
    client = KvServiceClient(node, GROUP)
    results = []

    def script():
        for op in ops:
            ok, value = yield from client.execute(op, size_bytes=64)
            results.append((ok, value))

    node.runtime.spawn(script())
    cluster.run(until_ms=cluster.kernel.now + 20_000.0)
    return results


# ---------------------------------------------------------------------------
# Read modes
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["log", "read_index", "lease"])
class TestReadModes:
    def test_read_your_writes(self, mode):
        cluster, raft = deploy(read_mode=mode)
        results = run_ops(
            cluster, [("put", "k", "v1"), ("get", "k"), ("put", "k", "v2"), ("get", "k")]
        )
        assert results == [(True, None), (True, "v1"), (True, None), (True, "v2")]

    def test_reads_tolerate_fail_slow_follower(self, mode):
        cluster, raft = deploy(read_mode=mode)
        run_ops(cluster, [("put", "k", "v")])
        FaultInjector(cluster).inject("s3", "cpu_slow")
        results = run_ops(cluster, [("get", "k")] * 5)
        assert results == [(True, "v")] * 5


class TestReadModeMechanics:
    def test_read_index_skips_the_log(self):
        cluster, raft = deploy(read_mode="read_index")
        run_ops(cluster, [("put", "k", "v")])
        log_before = raft["s1"].log.last_index()
        run_ops(cluster, [("get", "k")] * 10)
        assert raft["s1"].log.last_index() == log_before  # no entries for reads
        assert raft["s1"].read_probes >= 10

    def test_lease_mode_avoids_per_read_probes(self):
        cluster, raft = deploy(read_mode="lease")
        run_ops(cluster, [("put", "k", "v")])
        cluster.run(until_ms=cluster.kernel.now + 1000.0)  # lease established
        probes_before = raft["s1"].read_probes
        run_ops(cluster, [("get", "k")] * 10)
        # Reads under a live lease need no per-read probe round.
        assert raft["s1"].read_probes == probes_before
        assert raft["s1"].reads_served >= 10

    def test_log_mode_appends_reads(self):
        cluster, raft = deploy(read_mode="log")
        run_ops(cluster, [("put", "k", "v")])
        log_before = raft["s1"].log.last_index()
        run_ops(cluster, [("get", "k")] * 5)
        assert raft["s1"].log.last_index() == log_before + 5

    def test_invalid_read_mode_rejected(self):
        with pytest.raises(ValueError):
            RaftConfig(read_mode="psychic")


# ---------------------------------------------------------------------------
# RaftLog compaction unit tests
# ---------------------------------------------------------------------------
def entry(term, index):
    return LogEntry.sized(term, index, ("put", f"k{index}", "v"))


class TestLogCompaction:
    def _filled(self, n=20):
        log = RaftLog()
        for i in range(1, n + 1):
            log.append(entry(1, i))
        return log

    def test_truncate_prefix_moves_base(self):
        log = self._filled(20)
        dropped = log.truncate_prefix(12)
        assert dropped == 12
        assert log.base_index == 12
        assert log.base_term == 1
        assert log.last_index() == 20
        assert log.live_entries() == 8
        assert log.entry_at(13).index == 13

    def test_compacted_entries_unreachable(self):
        log = self._filled(20)
        log.truncate_prefix(12)
        with pytest.raises(IndexError):
            log.entry_at(12)
        assert log.term_at(12) == 1      # the base itself keeps its term
        assert log.term_at(5) is None    # below the base: gone

    def test_append_continues_after_compaction(self):
        log = self._filled(10)
        log.truncate_prefix(10)
        assert log.live_entries() == 0
        log.append(entry(2, 11))
        assert log.last_index() == 11
        assert log.last_term() == 2

    def test_matches_below_base_is_true(self):
        log = self._filled(10)
        log.truncate_prefix(8)
        assert log.matches(5, 1)      # compacted: covered by the snapshot
        assert log.matches(8, 1)      # the base, term checked
        assert not log.matches(8, 9)  # wrong base term

    def test_append_or_overwrite_skips_snapshotted_entries(self):
        log = self._filled(10)
        log.truncate_prefix(8)
        changed = log.append_or_overwrite([entry(1, i) for i in range(5, 13)])
        assert changed == 2  # only 11 and 12 are new
        assert log.last_index() == 12

    def test_slice_clamps_to_live_range(self):
        log = self._filled(10)
        log.truncate_prefix(6)
        assert [e.index for e in log.slice(1, 8)] == [7, 8]
        assert log.slice(2, 5) == []

    def test_reset_to_snapshot(self):
        log = self._filled(5)
        log.reset_to_snapshot(100, 7)
        assert log.base_index == 100
        assert log.last_index() == 100
        assert log.last_term() == 7
        assert log.live_entries() == 0

    def test_invalid_compaction_rejected(self):
        log = self._filled(10)
        with pytest.raises(ValueError):
            log.truncate_prefix(11)
        log.truncate_prefix(5)
        assert log.truncate_prefix(3) == 0  # backwards: no-op
        with pytest.raises(ValueError):
            log.truncate_from(4)  # inside the snapshot


# ---------------------------------------------------------------------------
# End-to-end compaction + snapshot install
# ---------------------------------------------------------------------------
class TestSnapshotInstall:
    @pytest.mark.slow
    def test_compaction_bounds_live_log(self):
        cluster, raft = deploy(
            snapshot_threshold_entries=400, compaction_keep_entries=100
        )
        workload = YcsbWorkload(cluster.rng.stream("y"), record_count=500, value_size=100)
        driver = ClosedLoopDriver(cluster, GROUP, workload, n_clients=16)
        driver.start()
        cluster.run(until_ms=4000.0)
        leader = raft["s1"]
        assert leader.snapshots_taken >= 1
        assert leader.log.live_entries() <= 500 + 64  # base window + one batch

    @pytest.mark.slow
    def test_far_behind_follower_repaired_via_snapshot(self):
        cluster, raft = deploy(
            snapshot_threshold_entries=400, compaction_keep_entries=100
        )
        injector = FaultInjector(cluster)
        injector.inject("s3", "cpu_slow")  # s3 falls far behind
        # Heavy values: the bounded send buffer toward s3 overflows, the
        # direct stream breaks, and by the time repair runs the leader has
        # compacted past s3's acked index — forcing the snapshot path.
        workload = YcsbWorkload(cluster.rng.stream("y"), record_count=500, value_size=1000)
        driver = ClosedLoopDriver(cluster, GROUP, workload, n_clients=32)
        driver.start()
        cluster.run(until_ms=8000.0)
        injector.clear("s3")
        cluster.run(until_ms=30_000.0)
        assert raft["s1"].snapshots_taken >= 1
        assert raft["s3"].snapshots_installed >= 1
        # Caught up to within one in-flight batch (clients keep writing).
        lag = raft["s1"].log.last_index() - raft["s3"].log.last_index()
        assert 0 <= lag <= 64

    def test_snapshot_then_new_writes_still_converge(self):
        cluster, raft = deploy(
            snapshot_threshold_entries=300, compaction_keep_entries=50
        )
        ops = [("put", f"k{i % 40}", f"v{i}") for i in range(600)]
        results = run_ops(cluster, ops)
        assert all(ok for ok, _ in results)
        cluster.run(until_ms=cluster.kernel.now + 3000.0)
        checksums = {r.kv.checksum() for r in raft.values()}
        assert len(checksums) == 1
