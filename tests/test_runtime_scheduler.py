"""Unit tests for coroutines, the scheduler and the runtime instance."""

import pytest

from repro.events.base import YIELD
from repro.events.basic import NeverEvent, ValueEvent
from repro.events.compound import QuorumEvent
from repro.runtime.coroutine import CoroutineState
from repro.runtime.runtime import Runtime
from repro.sim.kernel import Kernel
from repro.sim.resources import CpuResource, DiskResource


def make_runtime(kernel=None):
    kernel = kernel or Kernel()
    cpu = CpuResource(kernel, base_rate=1.0)
    disk = DiskResource(kernel, bandwidth_mbps=100.0, op_latency_ms=0.5)
    return Runtime(kernel, node="n0", cpu=cpu, disk=disk)


class TestBasicExecution:
    def test_coroutine_runs_to_completion(self):
        rt = make_runtime()
        log = []

        def task():
            log.append("start")
            yield rt.sleep(10.0)
            log.append(rt.now)
            return "done"

        coro = rt.spawn(task(), name="t")
        rt.kernel.run_until_idle()
        assert log == ["start", 10.0]
        assert coro.state == CoroutineState.FINISHED
        assert coro.result == "done"

    def test_spawn_requires_generator(self):
        rt = make_runtime()

        def not_a_gen():
            return 42

        with pytest.raises(Exception):
            rt.spawn(not_a_gen)  # passed the function, not a generator

    def test_multiple_coroutines_interleave(self):
        rt = make_runtime()
        log = []

        def task(name, delay):
            yield rt.sleep(delay)
            log.append((name, rt.now))

        rt.spawn(task("slow", 20.0))
        rt.spawn(task("fast", 5.0))
        rt.kernel.run_until_idle()
        assert log == [("fast", 5.0), ("slow", 20.0)]

    def test_yield_sentinel_reschedules_same_time(self):
        rt = make_runtime()
        log = []

        def task():
            log.append("a")
            yield YIELD
            log.append(("b", rt.now))

        rt.spawn(task())
        rt.kernel.run_until_idle()
        assert log == ["a", ("b", 0.0)]

    def test_wait_on_already_ready_event_resumes_immediately(self):
        rt = make_runtime()
        ev = ValueEvent()
        ev.set("early")
        got = []

        def task():
            result = yield ev.wait()
            got.append((result.ready, rt.now))

        rt.spawn(task())
        rt.kernel.run_until_idle()
        assert got == [(True, 0.0)]


class TestWaitsAndTimeouts:
    def test_wait_returns_result_with_waited_time(self):
        rt = make_runtime()
        ev = ValueEvent()
        rt.kernel.schedule(30.0, ev.set, "x")
        results = []

        def task():
            result = yield ev.wait()
            results.append(result)

        rt.spawn(task())
        rt.kernel.run_until_idle()
        (result,) = results
        assert result.ready
        assert not result.timed_out
        assert result.waited_ms == pytest.approx(30.0)

    def test_timeout_resumes_without_trigger(self):
        rt = make_runtime()
        ev = NeverEvent()
        results = []

        def task():
            result = yield ev.wait(timeout_ms=50.0)
            results.append((result.timed_out, ev.timed_out, rt.now))

        rt.spawn(task())
        rt.kernel.run_until_idle()
        assert results == [(True, True, 50.0)]

    def test_trigger_before_timeout_cancels_timer(self):
        rt = make_runtime()
        ev = ValueEvent()
        rt.kernel.schedule(10.0, ev.set, "x")
        results = []

        def task():
            result = yield ev.wait(timeout_ms=1000.0)
            results.append((result.timed_out, rt.now))

        rt.spawn(task())
        rt.kernel.run_until_idle()
        assert results == [(False, 10.0)]
        assert not ev.timed_out

    def test_quorum_wait_ignores_straggler(self):
        rt = make_runtime()
        quorum = QuorumEvent(quorum=2, n_total=3)
        fast1, fast2, slow = ValueEvent(), ValueEvent(), ValueEvent()
        for child in (fast1, fast2, slow):
            quorum.add(child)
        rt.kernel.schedule(5.0, fast1.set, 1)
        rt.kernel.schedule(8.0, fast2.set, 1)
        rt.kernel.schedule(10_000.0, slow.set, 1)  # the fail-slow child
        done_at = []

        def task():
            yield quorum.wait()
            done_at.append(rt.now)

        rt.spawn(task())
        rt.kernel.run_until_idle()
        assert done_at == [8.0]  # unaffected by the 10s straggler

    def test_cpu_compute_charges_virtual_time(self):
        rt = make_runtime()
        rt.cpu.set_quota(0.5)
        done_at = []

        def task():
            yield rt.compute(10.0)
            done_at.append(rt.now)

        rt.spawn(task())
        rt.kernel.run_until_idle()
        assert done_at == [pytest.approx(20.0)]

    def test_io_helper_fsync(self):
        rt = make_runtime()
        done = []

        def task():
            ev = rt.io.fsync(pending_bytes=100_000)
            yield ev.wait()
            done.append(rt.now)

        rt.spawn(task())
        rt.kernel.run_until_idle()
        assert done and done[0] > 0.0
        assert rt.io.completed == 1
        assert rt.io.inflight == 0


class TestFailuresAndCrash:
    def test_task_exception_propagates_by_default(self):
        rt = make_runtime()

        def task():
            yield rt.sleep(1.0)
            raise ValueError("boom")

        rt.spawn(task())
        with pytest.raises(ValueError, match="boom"):
            rt.kernel.run_until_idle()

    def test_on_error_hook_captures_failure(self):
        rt = make_runtime()
        failures = []
        rt.scheduler.on_error = failures.append

        def task():
            yield rt.sleep(1.0)
            raise ValueError("boom")

        coro = rt.spawn(task())
        rt.kernel.run_until_idle()
        assert failures == [coro]
        assert coro.state == CoroutineState.FAILED
        assert isinstance(coro.exception, ValueError)

    def test_crash_kills_waiting_coroutines(self):
        rt = make_runtime()
        cleanup = []

        def task():
            try:
                yield NeverEvent().wait()
            finally:
                cleanup.append("closed")

        coro = rt.spawn(task())
        rt.kernel.run(until_ms=5.0)
        rt.crash()
        assert coro.state == CoroutineState.KILLED
        assert cleanup == ["closed"]
        assert rt.crashed

    def test_crashed_runtime_rejects_spawn(self):
        rt = make_runtime()
        rt.crash()

        def task():
            yield rt.sleep(1.0)

        with pytest.raises(Exception):
            rt.spawn(task())

    def test_killed_coroutine_not_resumed_by_late_trigger(self):
        rt = make_runtime()
        ev = ValueEvent()
        resumed = []

        def task():
            yield ev.wait()
            resumed.append(True)

        rt.spawn(task())
        rt.kernel.run(until_ms=1.0)
        rt.crash()
        ev.set("late")
        rt.kernel.run_until_idle()
        assert resumed == []


class TestAccounting:
    def test_wait_statistics_accumulate(self):
        rt = make_runtime()

        def task():
            yield rt.sleep(10.0)
            yield rt.sleep(15.0)

        coro = rt.spawn(task())
        rt.kernel.run_until_idle()
        assert coro.wait_count == 2
        assert coro.total_wait_ms == pytest.approx(25.0)

    def test_live_count(self):
        rt = make_runtime()

        def forever():
            yield NeverEvent().wait()

        def quick():
            yield rt.sleep(1.0)

        rt.spawn(forever())
        rt.spawn(quick())
        rt.kernel.run(until_ms=10.0)
        assert rt.scheduler.live_count() == 1
