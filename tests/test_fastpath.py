"""Tests for the §3.2 fast-path/slow-path nested-event consensus round."""

import pytest

from repro.cluster.cluster import Cluster
from repro.raft.fastpath import (
    FastPathAcceptor,
    FastPathCoordinator,
    fast_quorum_size,
    majority_size,
)


def make_world(n_acceptors=4, seed=3):
    cluster = Cluster(seed=seed)
    coordinator_node = cluster.add_node("coord")
    acceptors = {}
    for i in range(n_acceptors):
        node = cluster.add_node(f"a{i+1}")
        acceptors[node.node_id] = FastPathAcceptor(node)
        node.start()
    coordinator_node.start()
    coordinator = FastPathCoordinator(
        coordinator_node, sorted(acceptors), timeout_ms=500.0
    )
    return cluster, coordinator_node, coordinator, acceptors


def propose(cluster, node, coordinator, decree, value):
    outcomes = []

    def script():
        outcome = yield from coordinator.propose(decree, value)
        outcomes.append(outcome)

    node.runtime.spawn(script())
    cluster.run(until_ms=cluster.kernel.now + 5000.0)
    assert outcomes, "proposal did not finish"
    return outcomes[0]


def test_quorum_sizes():
    assert fast_quorum_size(4) == 3
    assert fast_quorum_size(5) == 4
    assert fast_quorum_size(3) == 3
    assert majority_size(5) == 3


def test_unanimous_accept_takes_fast_path():
    cluster, node, coordinator, acceptors = make_world()
    outcome = propose(cluster, node, coordinator, decree=1, value="X")
    assert outcome.path == "fast"
    assert outcome.value == "X"
    assert outcome.fast_ok >= fast_quorum_size(4)


def test_conflicts_push_to_slow_path():
    cluster, node, coordinator, acceptors = make_world()
    # Two acceptors already accepted a rival value: the fast quorum (3/4)
    # is unreachable, "minority-plus-one-reject" (2) trips immediately.
    acceptors["a1"].preseed(1, "RIVAL")
    acceptors["a2"].preseed(1, "RIVAL")
    outcome = propose(cluster, node, coordinator, decree=1, value="X")
    assert outcome.path == "slow"
    assert outcome.value == "X"
    assert outcome.fast_reject >= 2


def test_single_conflict_still_fast_with_4_acceptors():
    cluster, node, coordinator, acceptors = make_world()
    acceptors["a1"].preseed(1, "RIVAL")
    outcome = propose(cluster, node, coordinator, decree=1, value="X")
    assert outcome.path == "fast"  # 3 of 4 accepted: fast quorum met


def test_fail_slow_acceptor_forces_timeout_then_slow_path():
    cluster, node, coordinator, acceptors = make_world()
    coordinator.timeout_ms = 100.0
    # Two acceptors so slow they cannot answer within the fast window:
    # neither fast_ok (needs 3) nor fast_reject (needs 2 rejects) fires.
    cluster.node("a1").cpu.set_quota(0.0001)
    cluster.node("a2").cpu.set_quota(0.0001)
    outcome = propose(cluster, node, coordinator, decree=1, value="X")
    # The slow path needs only a majority (3), which the two healthy
    # acceptors cannot provide alone — but the slow round's longer wait
    # lets the slow acceptors answer eventually.
    assert outcome.path in ("slow", "retry", "disconnect")


def test_decrees_are_independent():
    cluster, node, coordinator, acceptors = make_world()
    acceptors["a1"].preseed(1, "RIVAL")
    acceptors["a2"].preseed(1, "RIVAL")
    first = propose(cluster, node, coordinator, decree=1, value="X")
    second = propose(cluster, node, coordinator, decree=2, value="Y")
    assert first.path == "slow"
    assert second.path == "fast"


def test_coordinator_requires_acceptors():
    cluster = Cluster()
    node = cluster.add_node("coord")
    with pytest.raises(ValueError):
        FastPathCoordinator(node, [])
